//! The Client Streamlet Pool (§3.4.2).
//!
//! "The function of the Client Streamlet Pool is quite similar to that of
//! the Streamlet Directory at the server side. The difference is that here
//! the system maintains *peer* streamlets … In addition, the Client
//! Streamlet Pool is also responsible for creating and destroying client
//! streamlet instances to service the incoming messages."

use mobigate_core::{CoreError, StreamletLogic};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

type Factory = Arc<dyn Fn() -> Box<dyn StreamletLogic> + Send + Sync>;

#[derive(Default)]
struct Inner {
    factories: HashMap<String, Factory>,
    idle: HashMap<String, Vec<Box<dyn StreamletLogic>>>,
}

/// Peer-streamlet registry plus idle-instance reuse.
#[derive(Default)]
pub struct ClientStreamletPool {
    inner: Mutex<Inner>,
    /// Max idle instances retained per peer id.
    max_idle: usize,
}

impl ClientStreamletPool {
    /// An empty pool retaining up to 8 idle instances per peer.
    pub fn new() -> Self {
        ClientStreamletPool {
            inner: Mutex::new(Inner::default()),
            max_idle: 8,
        }
    }

    /// Registers the peer streamlet servicing `peer_id` (the identifier
    /// server streamlets push onto the `X-MobiGATE-Peer` chain).
    pub fn register_peer<F>(&self, peer_id: &str, factory: F)
    where
        F: Fn() -> Box<dyn StreamletLogic> + Send + Sync + 'static,
    {
        self.inner
            .lock()
            .factories
            .insert(peer_id.to_string(), Arc::new(factory));
    }

    /// True when a peer id resolves.
    pub fn contains(&self, peer_id: &str) -> bool {
        self.inner.lock().factories.contains_key(peer_id)
    }

    /// Registered peer ids, sorted.
    pub fn peers(&self) -> Vec<String> {
        let mut p: Vec<String> = self.inner.lock().factories.keys().cloned().collect();
        p.sort();
        p
    }

    /// Obtains an instance for `peer_id` (idle-reused or fresh).
    pub fn checkout(&self, peer_id: &str) -> Result<Box<dyn StreamletLogic>, CoreError> {
        let mut inner = self.inner.lock();
        if let Some(instance) = inner.idle.get_mut(peer_id).and_then(Vec::pop) {
            return Ok(instance);
        }
        let factory = inner
            .factories
            .get(peer_id)
            .cloned()
            .ok_or_else(|| CoreError::UnknownLibrary(peer_id.to_string()))?;
        drop(inner);
        Ok(factory())
    }

    /// Returns an instance after servicing a message; surplus instances are
    /// destroyed.
    pub fn checkin(&self, peer_id: &str, mut instance: Box<dyn StreamletLogic>) {
        instance.reset();
        let mut inner = self.inner.lock();
        let slot = inner.idle.entry(peer_id.to_string()).or_default();
        if slot.len() < self.max_idle {
            slot.push(instance);
        }
    }

    /// Idle instances held for a peer.
    pub fn idle_count(&self, peer_id: &str) -> usize {
        self.inner.lock().idle.get(peer_id).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_core::{Emitter, StreamletCtx};
    use mobigate_mime::MimeMessage;

    struct Echo;
    impl StreamletLogic for Echo {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            ctx.emit("po", m);
            Ok(())
        }
    }

    #[test]
    fn register_checkout_checkin_cycle() {
        let pool = ClientStreamletPool::new();
        pool.register_peer("echo", || Box::new(Echo));
        assert!(pool.contains("echo"));
        assert_eq!(pool.peers(), vec!["echo"]);
        let inst = pool.checkout("echo").unwrap();
        assert_eq!(pool.idle_count("echo"), 0);
        pool.checkin("echo", inst);
        assert_eq!(pool.idle_count("echo"), 1);
        let _reused = pool.checkout("echo").unwrap();
        assert_eq!(pool.idle_count("echo"), 0);
    }

    #[test]
    fn unknown_peer_errors() {
        let pool = ClientStreamletPool::new();
        match pool.checkout("missing") {
            Err(CoreError::UnknownLibrary(p)) => assert_eq!(p, "missing"),
            _ => panic!("expected UnknownLibrary"),
        }
    }

    #[test]
    fn idle_cap_destroys_surplus() {
        let pool = ClientStreamletPool::new();
        pool.register_peer("echo", || Box::new(Echo));
        for _ in 0..20 {
            pool.checkin("echo", Box::new(Echo));
        }
        assert_eq!(pool.idle_count("echo"), 8);
    }
}
