//! The MobiGATE client (§3.4) — a thin client with **no** coordination
//! logic.
//!
//! "All the composition information is already recorded in the incoming
//! message header. The system at the client side needs simply to read the
//! message header and distribute the message to corresponding client
//! streamlets for reverse processing."
//!
//! * [`distributor::MobiGateClient`] — the multi-threaded Message
//!   Distributor (§3.4.1): parses incoming MIME frames, pops the
//!   `X-MobiGATE-Peer` chain, and routes each message through the matching
//!   peer streamlets in reverse order (§6.5). Worker threads grow on
//!   demand, mirroring the paper's servlet-like threading ("if this fails,
//!   the system creates a new thread").
//! * [`pool::ClientStreamletPool`] — the Client Streamlet Pool (§3.4.2):
//!   peer-streamlet factories plus idle-instance reuse.

pub mod distributor;
pub mod pool;

pub use distributor::{ClientStats, MobiGateClient};
pub use pool::ClientStreamletPool;
