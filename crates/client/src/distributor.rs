//! The Message Distributor (§3.4.1) and the client facade.
//!
//! Each incoming wire frame is parsed as a MIME message, then reverse-
//! processed: the distributor pops peer identifiers off the
//! `X-MobiGATE-Peer` stack (most recently applied first) and runs the
//! matching peer streamlets from the [`ClientStreamletPool`] (§6.5: "once a
//! message has been processed by all necessary peer streamlets, it is
//! delivered to the application"). `multipart/mixed` messages are split
//! and each part reverse-processed and delivered individually.
//!
//! Threading follows the paper's servlet model: "whenever a new message
//! arrives, the system tries to find an available Message Distributor
//! thread … If this fails, the system creates a new thread", up to a cap.

use crate::pool::ClientStreamletPool;
use mobigate_core::{EventKind, StreamletCtx, StreamletLogic};
use mobigate_mime::{multipart, MimeMessage};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Client-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Frames accepted by [`MobiGateClient::submit_wire`].
    pub received: u64,
    /// Messages fully reverse-processed and delivered upward.
    pub delivered: u64,
    /// Individual peer-streamlet invocations.
    pub reversals: u64,
    /// Frames that failed to parse as MIME.
    pub parse_errors: u64,
    /// Peer identifiers with no registered streamlet.
    pub unknown_peers: u64,
    /// Peer streamlets whose `process` failed.
    pub peer_errors: u64,
    /// Distributor threads spawned so far.
    pub threads: u64,
}

struct Shared {
    pool: ClientStreamletPool,
    inbox: Mutex<VecDeque<Vec<u8>>>,
    inbox_cv: Condvar,
    outbox: Mutex<VecDeque<MimeMessage>>,
    outbox_cv: Condvar,
    stop: AtomicBool,
    idle_workers: AtomicUsize,
    received: AtomicU64,
    delivered: AtomicU64,
    reversals: AtomicU64,
    parse_errors: AtomicU64,
    unknown_peers: AtomicU64,
    peer_errors: AtomicU64,
    threads: AtomicU64,
}

/// Carries client context reports (LOW_ENERGY, LOW_GRAYS, …) back to the
/// gateway — the uplink half of Figure 3-1 ("these messages can originate
/// from local operating system services and remote clients", §3.1).
pub type ContextReporter = dyn Fn(EventKind) + Send + Sync;

/// The MobiGATE client runtime.
pub struct MobiGateClient {
    shared: Arc<Shared>,
    max_threads: usize,
    workers: Mutex<Vec<JoinHandle<()>>>,
    reporter: Mutex<Option<Box<ContextReporter>>>,
}

impl MobiGateClient {
    /// A client with a peer pool and a worker cap. One distributor thread
    /// is started eagerly; more appear under load.
    pub fn new(pool: ClientStreamletPool, max_threads: usize) -> Arc<Self> {
        let shared = Arc::new(Shared {
            pool,
            inbox: Mutex::new(VecDeque::new()),
            inbox_cv: Condvar::new(),
            outbox: Mutex::new(VecDeque::new()),
            outbox_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            idle_workers: AtomicUsize::new(0),
            received: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            reversals: AtomicU64::new(0),
            parse_errors: AtomicU64::new(0),
            unknown_peers: AtomicU64::new(0),
            peer_errors: AtomicU64::new(0),
            threads: AtomicU64::new(0),
        });
        let client = Arc::new(MobiGateClient {
            shared,
            max_threads: max_threads.max(1),
            workers: Mutex::new(Vec::new()),
            reporter: Mutex::new(None),
        });
        client.spawn_worker();
        client
    }

    /// The peer pool (to register more peers after construction).
    pub fn pool(&self) -> &ClientStreamletPool {
        &self.shared.pool
    }

    /// Installs the uplink used by [`MobiGateClient::report_context`]
    /// (typically a closure raising the event on the gateway's Event
    /// Manager).
    pub fn set_context_reporter<F>(&self, reporter: F)
    where
        F: Fn(EventKind) + Send + Sync + 'static,
    {
        *self.reporter.lock() = Some(Box::new(reporter));
    }

    /// Reports a client-side context variation (shallow display, low
    /// battery, …) to the gateway. Returns false when no uplink is
    /// installed.
    pub fn report_context(&self, event: EventKind) -> bool {
        match self.reporter.lock().as_ref() {
            Some(r) => {
                r(event);
                true
            }
            None => false,
        }
    }

    /// Submits a raw wire frame from the link.
    pub fn submit_wire(&self, frame: Vec<u8>) {
        if self.shared.stop.load(Ordering::Acquire) {
            return;
        }
        self.shared.received.fetch_add(1, Ordering::Relaxed);
        // Servlet-style elasticity: grow a worker when none is idle.
        if self.shared.idle_workers.load(Ordering::Acquire) == 0
            && (self.shared.threads.load(Ordering::Relaxed) as usize) < self.max_threads
        {
            self.spawn_worker();
        }
        self.shared.inbox.lock().push_back(frame);
        self.shared.inbox_cv.notify_one();
    }

    /// Submits an already-parsed message (in-process testing shortcut).
    pub fn submit(&self, msg: &MimeMessage) {
        self.submit_wire(msg.to_wire().to_vec());
    }

    /// Receives the next fully reverse-processed message, waiting up to
    /// `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<MimeMessage> {
        let deadline = Instant::now() + timeout;
        let mut out = self.shared.outbox.lock();
        loop {
            if let Some(m) = out.pop_front() {
                return Some(m);
            }
            if self.shared.stop.load(Ordering::Acquire) {
                return None;
            }
            if self
                .shared
                .outbox_cv
                .wait_until(&mut out, deadline)
                .timed_out()
            {
                return out.pop_front();
            }
        }
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> ClientStats {
        ClientStats {
            received: self.shared.received.load(Ordering::Relaxed),
            delivered: self.shared.delivered.load(Ordering::Relaxed),
            reversals: self.shared.reversals.load(Ordering::Relaxed),
            parse_errors: self.shared.parse_errors.load(Ordering::Relaxed),
            unknown_peers: self.shared.unknown_peers.load(Ordering::Relaxed),
            peer_errors: self.shared.peer_errors.load(Ordering::Relaxed),
            threads: self.shared.threads.load(Ordering::Relaxed),
        }
    }

    /// Stops the distributor threads.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::Release);
        self.shared.inbox_cv.notify_all();
        self.shared.outbox_cv.notify_all();
        for h in self.workers.lock().drain(..) {
            let _ = h.join();
        }
    }

    fn spawn_worker(&self) {
        let shared = self.shared.clone();
        let n = self.shared.threads.fetch_add(1, Ordering::Relaxed);
        let handle = std::thread::Builder::new()
            .name(format!("mg-distributor-{n}"))
            .spawn(move || distributor_loop(shared))
            .expect("spawn distributor");
        self.workers.lock().push(handle);
    }
}

impl Drop for MobiGateClient {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn distributor_loop(shared: Arc<Shared>) {
    loop {
        let frame = {
            let mut inbox = shared.inbox.lock();
            loop {
                if shared.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(f) = inbox.pop_front() {
                    break f;
                }
                shared.idle_workers.fetch_add(1, Ordering::AcqRel);
                shared
                    .inbox_cv
                    .wait_for(&mut inbox, Duration::from_millis(50));
                shared.idle_workers.fetch_sub(1, Ordering::AcqRel);
            }
        };

        let Ok(msg) = MimeMessage::from_wire(&frame) else {
            shared.parse_errors.fetch_add(1, Ordering::Relaxed);
            continue;
        };

        // Multipart bodies *without* a peer chain are distributed per part
        // (§3.4.1 "parse the incoming MIME messages and distribute them");
        // a multipart with a chain is handled by its peers (e.g. the
        // disaggregate peer of the aggregate streamlet).
        let parts = if msg.content_type().top == "multipart" && msg.peer_chain().is_empty() {
            match multipart::split(&msg) {
                Ok(parts) => parts,
                Err(_) => {
                    shared.parse_errors.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
            }
        } else {
            vec![msg]
        };

        for part in parts {
            for done in reverse_process(&shared, part) {
                shared.delivered.fetch_add(1, Ordering::Relaxed);
                shared.outbox.lock().push_back(done);
                shared.outbox_cv.notify_all();
            }
        }
    }
}

/// Pops the peer chain and applies each peer streamlet (most recent
/// first). A peer may emit several messages (disaggregation); each emission
/// then continues with its *own* remaining chain.
fn reverse_process(shared: &Shared, mut msg: MimeMessage) -> Vec<MimeMessage> {
    while let Some(peer_id) = msg.pop_peer() {
        let mut logic: Box<dyn StreamletLogic> = match shared.pool.checkout(&peer_id) {
            Ok(l) => l,
            Err(_) => {
                // Unknown peer: deliver what we have rather than losing the
                // message; the application sees the partially-reversed form.
                shared.unknown_peers.fetch_add(1, Ordering::Relaxed);
                return vec![msg];
            }
        };
        let session = msg.session();
        let mut ctx = StreamletCtx::new(&peer_id, session.as_ref());
        let result = logic.process(msg.clone(), &mut ctx);
        shared.pool.checkin(&peer_id, logic);
        match result {
            Ok(()) => {
                shared.reversals.fetch_add(1, Ordering::Relaxed);
                let mut outs = ctx.into_outputs();
                match outs.len() {
                    1 => msg = outs.pop().expect("len checked").1,
                    0 => return Vec::new(), // peer consumed the message
                    _ => {
                        // Fan-out (e.g. disaggregation): each emission
                        // carries its own remaining chain.
                        return outs
                            .into_iter()
                            .flat_map(|(_, m)| reverse_process(shared, m))
                            .collect();
                    }
                }
            }
            Err(_) => {
                shared.peer_errors.fetch_add(1, Ordering::Relaxed);
                return Vec::new();
            }
        }
    }
    vec![msg]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_core::{CoreError, Emitter};
    use mobigate_mime::MimeType;

    /// Reverses the body (self-inverse, so double application restores).
    struct RevBytes;
    impl StreamletLogic for RevBytes {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let mut b = m.body.to_vec();
            b.reverse();
            let mut out = m.clone();
            out.set_body(b);
            ctx.emit("po", out);
            Ok(())
        }
    }

    /// XORs with 0x5A (also self-inverse).
    struct XorA5;
    impl StreamletLogic for XorA5 {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let b: Vec<u8> = m.body.iter().map(|x| x ^ 0x5A).collect();
            let mut out = m.clone();
            out.set_body(b);
            ctx.emit("po", out);
            Ok(())
        }
    }

    struct Failing;
    impl StreamletLogic for Failing {
        fn process(&mut self, _: MimeMessage, _: &mut StreamletCtx) -> Result<(), CoreError> {
            Err(CoreError::Process {
                streamlet: "f".into(),
                message: "nope".into(),
            })
        }
    }

    fn client() -> Arc<MobiGateClient> {
        let pool = ClientStreamletPool::new();
        pool.register_peer("rev", || Box::new(RevBytes));
        pool.register_peer("xor", || Box::new(XorA5));
        pool.register_peer("fail", || Box::new(Failing));
        MobiGateClient::new(pool, 4)
    }

    #[test]
    fn single_peer_reversal() {
        let c = client();
        // Server applied `rev` (body reversed, peer pushed).
        let mut msg = MimeMessage::text("cba");
        msg.push_peer("rev");
        c.submit(&msg);
        let out = c.recv(Duration::from_secs(2)).expect("delivered");
        assert_eq!(&out.body[..], b"abc");
        assert!(out.peer_chain().is_empty());
        assert_eq!(c.stats().reversals, 1);
    }

    #[test]
    fn chain_is_reversed_in_lifo_order() {
        let c = client();
        // Server order: rev then xor → chain [rev, xor]; client must apply
        // xor first, then rev.
        let original = b"payload".to_vec();
        let mut body = original.clone();
        body.reverse(); // rev applied first on the server
        let body: Vec<u8> = body.iter().map(|x| x ^ 0x5A).collect(); // then xor
        let mut msg = MimeMessage::new(&MimeType::new("text", "plain"), body);
        msg.push_peer("rev");
        msg.push_peer("xor");
        c.submit(&msg);
        let out = c.recv(Duration::from_secs(2)).expect("delivered");
        assert_eq!(out.body.to_vec(), original);
        assert_eq!(c.stats().reversals, 2);
    }

    #[test]
    fn no_peers_delivers_as_is() {
        let c = client();
        c.submit(&MimeMessage::text("plain pass"));
        let out = c.recv(Duration::from_secs(2)).expect("delivered");
        assert_eq!(&out.body[..], b"plain pass");
        assert_eq!(c.stats().reversals, 0);
    }

    #[test]
    fn unknown_peer_counts_and_still_delivers() {
        let c = client();
        let mut msg = MimeMessage::text("x");
        msg.push_peer("martian");
        c.submit(&msg);
        let out = c.recv(Duration::from_secs(2)).expect("delivered");
        assert_eq!(&out.body[..], b"x");
        assert_eq!(c.stats().unknown_peers, 1);
    }

    #[test]
    fn failing_peer_drops_message() {
        let c = client();
        let mut msg = MimeMessage::text("x");
        msg.push_peer("fail");
        c.submit(&msg);
        assert!(c.recv(Duration::from_millis(200)).is_none());
        assert_eq!(c.stats().peer_errors, 1);
        assert_eq!(c.stats().delivered, 0);
    }

    #[test]
    fn parse_errors_counted() {
        let c = client();
        c.submit_wire(b"complete garbage, no header separator".to_vec());
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(c.stats().parse_errors, 1);
    }

    #[test]
    fn multipart_is_split_and_each_part_reversed() {
        let c = client();
        let mut p1 = MimeMessage::text("cba");
        p1.push_peer("rev");
        let p2 = MimeMessage::text("untouched");
        let combined = multipart::compose(&[p1, p2], "bdy");
        c.submit(&combined);
        let a = c.recv(Duration::from_secs(2)).expect("part 1");
        let b = c.recv(Duration::from_secs(2)).expect("part 2");
        assert_eq!(&a.body[..], b"abc");
        assert_eq!(&b.body[..], b"untouched");
        assert_eq!(c.stats().delivered, 2);
    }

    #[test]
    fn worker_pool_grows_under_load() {
        let c = client();
        for i in 0..200 {
            let mut m = MimeMessage::text(format!("m{i}"));
            m.push_peer("rev");
            c.submit(&m);
        }
        let mut got = 0;
        while got < 200 {
            match c.recv(Duration::from_secs(5)) {
                Some(_) => got += 1,
                None => break,
            }
        }
        assert_eq!(got, 200);
        let stats = c.stats();
        assert!(
            stats.threads >= 1 && stats.threads <= 4,
            "threads {}",
            stats.threads
        );
        assert_eq!(stats.delivered, 200);
    }

    #[test]
    fn context_reports_reach_the_uplink() {
        let c = client();
        assert!(!c.report_context(EventKind::LowGrays), "no uplink yet");
        let seen = Arc::new(Mutex::new(Vec::new()));
        let seen2 = seen.clone();
        c.set_context_reporter(move |e| seen2.lock().push(e));
        assert!(c.report_context(EventKind::LowGrays));
        assert!(c.report_context(EventKind::LowEnergy));
        assert_eq!(
            *seen.lock(),
            vec![EventKind::LowGrays, EventKind::LowEnergy]
        );
    }

    #[test]
    fn shutdown_is_idempotent_and_stops_recv() {
        let c = client();
        c.shutdown();
        c.shutdown();
        assert!(c.recv(Duration::from_millis(50)).is_none());
        // Submissions after shutdown are ignored.
        c.submit(&MimeMessage::text("late"));
        assert_eq!(c.stats().received, 0);
    }
}
