//! Property tests on the compiler: whatever it accepts must satisfy the
//! §5.1 formal model and the §5.2 acyclicity analysis; structural facts
//! (exports, channel counts) must match the script.

use mobigate_mcl::analysis::StreamGraph;
use mobigate_mcl::compile::compile;
use mobigate_mcl::model::verify_program;
use mobigate_mime::TypeRegistry;
use proptest::prelude::*;
use std::fmt::Write as _;

/// Builds a linear-pipeline script: `k` streamlets of a shared type chained
/// in order, optionally with explicit channels every other hop.
fn pipeline_script(k: usize, ty: &str, explicit_channels: bool) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "streamlet node {{ port {{ in pi : {ty}; out po : {ty}; }} }}"
    );
    if explicit_channels {
        let _ = writeln!(
            s,
            "channel pipe {{ port {{ in ci : {ty}; out co : {ty}; }} \
             attribute {{ type = ASYNC; category = BK; buffer = 64; }} }}"
        );
    }
    let _ = writeln!(s, "main stream pipeline {{");
    for i in 0..k {
        let _ = writeln!(s, "streamlet n{i} = new-streamlet (node);");
    }
    if explicit_channels {
        for i in 1..k {
            let _ = writeln!(s, "channel ch{i} = new-channel (pipe);");
        }
    }
    for i in 1..k {
        if explicit_channels {
            let _ = writeln!(s, "connect (n{}.po, n{}.pi, ch{i});", i - 1, i);
        } else {
            let _ = writeln!(s, "connect (n{}.po, n{}.pi);", i - 1, i);
        }
    }
    s.push('}');
    s
}

/// A fan-out/fan-in diamond of the given width.
fn diamond_script(width: usize) -> String {
    let mut s = String::from(
        "streamlet node { port { in pi : */*; out po : */*; } }\n\
         main stream diamond {\n\
         streamlet src = new-streamlet (node);\n\
         streamlet dst = new-streamlet (node);\n",
    );
    for i in 0..width {
        let _ = writeln!(s, "streamlet mid{i} = new-streamlet (node);");
        let _ = writeln!(s, "connect (src.po, mid{i}.pi);");
        let _ = writeln!(s, "connect (mid{i}.po, dst.pi);");
    }
    s.push('}');
    s
}

fn type_pool() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("text/plain"),
        Just("text"),
        Just("image/gif"),
        Just("application/octet-stream"),
        Just("*/*"),
    ]
}

proptest! {
    /// Pipelines of any homogeneous type compile, satisfy the formal model,
    /// are acyclic, and export exactly head-input + tail-output.
    #[test]
    fn pipelines_compile_clean(
        k in 1usize..30,
        ty in type_pool(),
        explicit in any::<bool>(),
    ) {
        let script = pipeline_script(k, ty, explicit);
        let program = compile(&script).expect("pipeline compiles");
        prop_assert!(verify_program(&program, &TypeRegistry::standard()).is_empty());

        let table = program.main().expect("main");
        prop_assert_eq!(table.streamlets.len(), k);
        prop_assert_eq!(table.connections.len(), k - 1);
        prop_assert_eq!(table.exported_inputs.len(), 1);
        prop_assert_eq!(table.exported_outputs.len(), 1);
        prop_assert_eq!(table.exported_inputs[0].0.as_str(), "n0");
        prop_assert_eq!(table.exported_outputs[0].0.as_str(), format!("n{}", k - 1));

        let graph = StreamGraph::from_table(table, &program);
        prop_assert!(graph.is_acyclic());
        // n0 reaches the tail through the whole chain.
        if k > 1 {
            let tail = format!("n{}", k - 1);
            prop_assert!(graph.reaches("n0", &tail));
        }
    }

    /// Diamonds (fan-out + fan-in) compile clean and remain acyclic.
    #[test]
    fn diamonds_compile_clean(width in 1usize..12) {
        let script = diamond_script(width);
        let program = compile(&script).expect("diamond compiles");
        prop_assert!(verify_program(&program, &TypeRegistry::standard()).is_empty());
        let table = program.main().unwrap();
        prop_assert_eq!(table.connections.len(), 2 * width);
        let graph = StreamGraph::from_table(table, &program);
        prop_assert!(graph.is_acyclic());
        prop_assert!(graph.reaches("src", "dst"));
        prop_assert!(!graph.reaches("dst", "src"));
    }

    /// Closing any pipeline into a ring is always detected as a feedback
    /// loop by the analysis.
    #[test]
    fn rings_are_always_detected(k in 2usize..20) {
        let mut script = pipeline_script(k, "*/*", false);
        // Replace the closing brace with the back edge.
        script.pop();
        let back = format!("connect (n{}.po, n0.pi);\n}}", k - 1);
        script.push_str(&back);
        let program = compile(&script).expect("ring compiles (loop is a semantic error)");
        let table = program.main().unwrap();
        let graph = StreamGraph::from_table(table, &program);
        let loops = graph.feedback_loops();
        prop_assert_eq!(loops.len(), 1);
        prop_assert_eq!(loops[0].len(), k);
    }

    /// Composite expansion preserves the model: wrapping a pipeline as a
    /// streamlet inside an outer stream stays clean.
    #[test]
    fn composites_compile_clean(k in 1usize..10) {
        let mut script = String::new();
        let _ = writeln!(script, "streamlet node {{ port {{ in pi : */*; out po : */*; }} }}");
        let _ = writeln!(script, "stream innerline {{");
        for i in 0..k {
            let _ = writeln!(script, "streamlet n{i} = new-streamlet (node);");
        }
        for i in 1..k {
            let _ = writeln!(script, "connect (n{}.po, n{}.pi);", i - 1, i);
        }
        let _ = writeln!(script, "}}");
        let _ = writeln!(
            script,
            "main stream outer {{\n\
             streamlet w = new-streamlet (innerline);\n\
             streamlet tail = new-streamlet (node);\n\
             connect (w.po, tail.pi);\n}}"
        );
        let program = compile(&script).expect("composite compiles");
        prop_assert!(verify_program(&program, &TypeRegistry::standard()).is_empty());
        let table = program.main().unwrap();
        // k inner instances + the tail.
        prop_assert_eq!(table.streamlets.len(), k + 1);
        let last = format!("w/n{}", k - 1);
        prop_assert!(table.instance(&last).is_some());
    }
}
