//! Chain-fusion planning: the static half of the fusion/fission engine.
//!
//! Figure 7-2 attributes most per-streamlet overhead to channel crossings
//! — queue admission, pool reference handoff, wakeup — which a run of
//! simple stateless transforms pays at every hop. This module analyzes a
//! compiled [`ConfigTable`] and finds **maximal runs of fusable
//! streamlets** whose interior channels can be collapsed away: the runtime
//! (`mobigate-core::fusion`) then drives each run as one execution unit,
//! handing every emission directly to the next member.
//!
//! A streamlet instance is *fusable* when all of the following hold:
//!
//! 1. it is part of the **initial** topology (not declared inside `when`);
//! 2. its definition has **exactly one input and one output port**
//!    (a pipeline stage — fan-in/fan-out stays on real channels);
//! 3. it is **stateless** (pooling-eligible, §3.3.4) — stateful logics may
//!    observe the missing channel boundary;
//! 4. its logic opts in (`StreamletLogic::fusable`, probed by the caller
//!    through the directory — the planner itself never instantiates);
//! 5. it is **not referenced by any `when (EVENT)` rule**: an instance a
//!    reconfiguration may rewire must stay individually addressable.
//!    (The runtime can still fission a fused unit on demand; excluding
//!    statically known targets just avoids predictable churn.)
//!
//! An interior channel collapses only when it is a plain point-to-point
//! asynchronous link: carried by exactly one connection, joining two
//! fusable instances port-to-port with MIME-compatible types, not
//! exported, and not referenced by any `when` rule. Synchronous channels
//! rendezvous — removing one changes observable blocking behavior — so
//! they never fuse. Content-Session sharing attaches extra consumers to a
//! channel as additional connection rows, which fails the single-use test,
//! so shared segments are structurally excluded.

use crate::ast::ChannelKind;
use crate::config::{ConfigTable, ReconfigAction, StreamletSpec};
use mobigate_mime::TypeRegistry;
use std::collections::{BTreeMap, HashMap, HashSet};

/// One maximal fusable run, upstream → downstream.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedRun {
    /// Member instance names in pipeline order (always ≥ 2).
    pub members: Vec<String>,
    /// Interior channel names collapsed away (always `members.len() - 1`,
    /// in pipeline order: `interior_channels[i]` joined `members[i]` to
    /// `members[i + 1]`).
    pub interior_channels: Vec<String>,
}

/// The full fusion plan for one stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FusionPlan {
    /// Disjoint maximal runs (an instance appears in at most one).
    pub runs: Vec<FusedRun>,
}

impl FusionPlan {
    /// True when nothing fuses.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// The run containing `instance`, if any.
    pub fn run_of(&self, instance: &str) -> Option<&FusedRun> {
        self.runs
            .iter()
            .find(|r| r.members.iter().any(|m| m == instance))
    }
}

/// Every instance name a reconfiguration action can touch. The runtime's
/// fission pre-pass uses the same relation to decide which fused units an
/// incoming action forces back into discrete form.
pub fn action_instances(action: &ReconfigAction) -> Vec<&str> {
    match action {
        ReconfigAction::NewStreamlet { name, .. } => vec![name],
        ReconfigAction::RemoveStreamlet { name } => vec![name],
        ReconfigAction::NewChannel { .. } | ReconfigAction::RemoveChannel { .. } => vec![],
        ReconfigAction::Connect { from, to, .. } => vec![&from.0, &to.0],
        ReconfigAction::Disconnect { from, to } => vec![&from.0, &to.0],
        ReconfigAction::DisconnectAll { instance } => vec![instance],
        ReconfigAction::Insert { from, to, instance } => vec![&from.0, &to.0, instance],
        ReconfigAction::Replace { old, new } => vec![old, new],
    }
}

/// Every channel name a reconfiguration action can touch.
pub fn action_channels(action: &ReconfigAction) -> Vec<&str> {
    match action {
        ReconfigAction::NewChannel { name, .. } => vec![name],
        ReconfigAction::RemoveChannel { name } => vec![name],
        ReconfigAction::Connect { channel, .. } => vec![channel],
        _ => vec![],
    }
}

/// Computes the fusion plan for `table`. `fusable` answers rule 4 for a
/// definition — the core runtime probes the streamlet directory/pool with
/// it; analyses that only care about the graph shape can pass `|_| true`.
pub fn plan(
    table: &ConfigTable,
    defs: &BTreeMap<String, StreamletSpec>,
    registry: &TypeRegistry,
    fusable: &dyn Fn(&StreamletSpec) -> bool,
) -> FusionPlan {
    let when_instances: HashSet<&str> = table
        .when_rules
        .iter()
        .flat_map(|r| r.actions.iter())
        .flat_map(action_instances)
        .collect();
    let when_channels: HashSet<&str> = table
        .when_rules
        .iter()
        .flat_map(|r| r.actions.iter())
        .flat_map(action_channels)
        .collect();

    // Rules 1–5 per instance.
    let mut eligible: HashSet<&str> = HashSet::new();
    for row in table.initial_instances() {
        let Some(def) = defs.get(&row.def) else {
            continue;
        };
        if def.inputs.len() == 1
            && def.outputs.len() == 1
            && !def.stateful
            && !when_instances.contains(row.name.as_str())
            && fusable(def)
        {
            eligible.insert(&row.name);
        }
    }

    // Channel usage and per-instance degree counts over the initial
    // connection rows.
    let mut channel_uses: HashMap<&str, usize> = HashMap::new();
    let mut out_degree: HashMap<&str, usize> = HashMap::new();
    let mut in_degree: HashMap<&str, usize> = HashMap::new();
    for c in &table.connections {
        *channel_uses.entry(c.channel.as_str()).or_default() += 1;
        *out_degree.entry(c.from.0.as_str()).or_default() += 1;
        *in_degree.entry(c.to.0.as_str()).or_default() += 1;
    }
    let exported_in: HashSet<(&str, &str)> = table
        .exported_inputs
        .iter()
        .map(|(i, p, _)| (i.as_str(), p.as_str()))
        .collect();
    let exported_out: HashSet<(&str, &str)> = table
        .exported_outputs
        .iter()
        .map(|(i, p, _)| (i.as_str(), p.as_str()))
        .collect();

    // Fusable edges: next/prev are functions (degree checks make each
    // endpoint's pipeline neighborhood unique).
    let mut next: HashMap<&str, (&str, &str)> = HashMap::new(); // from → (to, channel)
    let mut prev: HashMap<&str, &str> = HashMap::new();
    for c in &table.connections {
        let (from, from_port) = (&c.from.0, &c.from.1);
        let (to, to_port) = (&c.to.0, &c.to.1);
        if !eligible.contains(from.as_str()) || !eligible.contains(to.as_str()) || from == to {
            continue;
        }
        if out_degree.get(from.as_str()) != Some(&1) || in_degree.get(to.as_str()) != Some(&1) {
            continue;
        }
        if channel_uses.get(c.channel.as_str()) != Some(&1)
            || when_channels.contains(c.channel.as_str())
        {
            continue;
        }
        let Some(ch) = table.channel(&c.channel) else {
            continue;
        };
        if ch.spec.kind != ChannelKind::Async {
            continue;
        }
        // The collapsed boundary's ports must not be the stream's own
        // surface.
        if exported_out.contains(&(from.as_str(), from_port.as_str()))
            || exported_in.contains(&(to.as_str(), to_port.as_str()))
        {
            continue;
        }
        // MIME compatibility across the vanishing boundary (§4.4.1's check,
        // re-asserted because the fused unit bypasses the runtime check the
        // channel would have applied).
        let (Some(fd), Some(td)) = (
            table.instance(from).and_then(|r| defs.get(&r.def)),
            table.instance(to).and_then(|r| defs.get(&r.def)),
        ) else {
            continue;
        };
        let (Some(out_ty), Some(in_ty)) = (fd.port_type(from_port), td.port_type(to_port)) else {
            continue;
        };
        if !registry.connectable(out_ty, in_ty) {
            continue;
        }
        next.insert(from, (to, &c.channel));
        prev.insert(to, from);
    }

    // Walk maximal paths. Heads are nodes with a successor but no fusable
    // predecessor; a pure cycle (feedback loop) has no head and is left
    // unfused — the analyses reject loops anyway.
    let mut runs = Vec::new();
    let mut heads: Vec<&str> = next
        .keys()
        .filter(|n| !prev.contains_key(*n))
        .copied()
        .collect();
    heads.sort_unstable();
    for head in heads {
        let mut members = vec![head.to_string()];
        let mut interior = Vec::new();
        let mut cur = head;
        while let Some((to, ch)) = next.get(cur) {
            members.push((*to).to_string());
            interior.push((*ch).to_string());
            cur = to;
            if cur == head {
                break; // cycle guard; unreachable for analyzed programs
            }
        }
        if members.len() >= 2 {
            runs.push(FusedRun {
                members,
                interior_channels: interior,
            });
        }
    }
    FusionPlan { runs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    fn chain_source(extra: &str) -> String {
        format!(
            "streamlet tag {{\n\
             port {{ in pi : text/plain; out po : text/plain; }}\n\
             attribute {{ type = STATELESS; library = \"builtin/tag\"; }}\n}}\n\
             main stream s {{\n\
             streamlet a = new-streamlet (tag);\n\
             streamlet b = new-streamlet (tag);\n\
             streamlet c = new-streamlet (tag);\n\
             connect (a.po, b.pi);\n\
             connect (b.po, c.pi);\n\
             {extra}\n}}"
        )
    }

    fn plan_for(source: &str) -> FusionPlan {
        let program = compile(source).expect("compiles");
        let table = program.main().expect("main stream");
        plan(
            table,
            &program.streamlet_defs,
            &TypeRegistry::standard(),
            &|_| true,
        )
    }

    #[test]
    fn whole_chain_fuses_into_one_run() {
        let p = plan_for(&chain_source(""));
        assert_eq!(p.runs.len(), 1);
        assert_eq!(p.runs[0].members, vec!["a", "b", "c"]);
        assert_eq!(p.runs[0].interior_channels.len(), 2);
        assert!(p.run_of("b").is_some());
        assert!(p.run_of("zz").is_none());
    }

    #[test]
    fn when_referenced_instances_break_the_run() {
        // `b` is an insert target: it must stay discrete, so only nothing
        // fuses (a→b and b→c both touch b; a run of one never forms).
        let p = plan_for(&chain_source(
            "when (LOW_BANDWIDTH) { streamlet x = new-streamlet (tag); insert (a.po, b.pi, x); }",
        ));
        assert!(
            p.run_of("b").is_none(),
            "insert target must stay discrete: {p:?}"
        );
        assert!(p.run_of("a").is_none(), "a's only fusable edge died: {p:?}");
    }

    #[test]
    fn fusable_predicate_vetoes() {
        let program = compile(&chain_source("")).expect("compiles");
        let table = program.main().expect("main stream");
        let p = plan(
            table,
            &program.streamlet_defs,
            &TypeRegistry::standard(),
            &|_| false,
        );
        assert!(p.is_empty());
    }

    #[test]
    fn stateful_instances_never_fuse() {
        let source = "streamlet tag {\n\
             port { in pi : text/plain; out po : text/plain; }\n\
             attribute { type = STATELESS; library = \"builtin/tag\"; }\n}\n\
             streamlet keeper {\n\
             port { in pi : text/plain; out po : text/plain; }\n\
             attribute { type = STATEFUL; library = \"builtin/keeper\"; }\n}\n\
             main stream s {\n\
             streamlet a = new-streamlet (tag);\n\
             streamlet k = new-streamlet (keeper);\n\
             streamlet c = new-streamlet (tag);\n\
             connect (a.po, k.pi);\n\
             connect (k.po, c.pi);\n}";
        let p = plan_for(source);
        assert!(p.is_empty(), "a stateful middle leaves runs of one: {p:?}");
    }

    #[test]
    fn fan_out_keeps_real_channels() {
        let source = "streamlet tag {\n\
             port { in pi : text/plain; out po : text/plain; }\n\
             attribute { type = STATELESS; library = \"builtin/tag\"; }\n}\n\
             main stream s {\n\
             streamlet a = new-streamlet (tag);\n\
             streamlet b = new-streamlet (tag);\n\
             streamlet c = new-streamlet (tag);\n\
             connect (a.po, b.pi);\n\
             connect (a.po, c.pi);\n}";
        let p = plan_for(source);
        assert!(p.is_empty(), "fan-out must not fuse: {p:?}");
    }

    #[test]
    fn partial_runs_fuse_around_blockers() {
        // a→b fuse; c is when-referenced so b→c stays a real channel.
        let p = plan_for(&chain_source("when (LOW_BANDWIDTH) { disconnectall (c); }"));
        assert_eq!(p.runs.len(), 1);
        assert_eq!(p.runs[0].members, vec!["a", "b"]);
    }
}
