//! The MobiGATE event vocabulary (Table 6-1).
//!
//! "All the client variations have been classified into four different
//! categories: System Command, Network Variation, Hardware Variation, and
//! Software Variation" (§6.4). Events are **not parameterized** and carry no
//! data; they exist purely to trigger the evolution of coordinated
//! streamlets (§4.2.3).
//!
//! The thesis names PAUSE / RESUME / END (System Command), LOW_BANDWIDTH
//! (Network), LOW_ENERGY and LOW_GRAYS (Hardware). The remaining members of
//! each category are reconstructed from the client-variation axes listed in
//! §6.4 (screen size, color depth, bandwidth, processing power, data-format
//! ability).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// The four event categories of Table 6-1; subscription is per-category
/// (`EventManager.subscribeEvt(categoryID, stream)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventCategory {
    /// Operator/system commands addressed at streams.
    SystemCommand,
    /// Wireless link condition changes.
    NetworkVariation,
    /// Client device hardware constraints.
    HardwareVariation,
    /// Client software capability constraints.
    SoftwareVariation,
    /// Proxy-side execution-plane faults (streamlet panics, quarantines).
    /// An extension beyond Table 6-1: the supervision layer reports
    /// execution-plane failure as a context event so `when (...)` rules can
    /// degrade or bypass a faulted streamlet.
    RuntimeFault,
    /// Proxy-side load conditions measured by the telemetry plane (queue
    /// high-water, drop rate, fault rate, byte budgets). Another extension
    /// beyond Table 6-1: the metrics→event bridge publishes these so
    /// `when (...)` rules react to *measured* runtime state rather than
    /// injected test events.
    LoadVariation,
}

impl EventCategory {
    /// All categories, in stable `categoryID` order.
    pub const ALL: [EventCategory; 6] = [
        EventCategory::SystemCommand,
        EventCategory::NetworkVariation,
        EventCategory::HardwareVariation,
        EventCategory::SoftwareVariation,
        EventCategory::RuntimeFault,
        EventCategory::LoadVariation,
    ];

    /// The numeric `categoryID` used to index subscriber lists (Figure 6-7).
    pub fn id(self) -> usize {
        match self {
            EventCategory::SystemCommand => 0,
            EventCategory::NetworkVariation => 1,
            EventCategory::HardwareVariation => 2,
            EventCategory::SoftwareVariation => 3,
            EventCategory::RuntimeFault => 4,
            EventCategory::LoadVariation => 5,
        }
    }

    /// Number of categories (sizes the subscriber-list array).
    pub const COUNT: usize = 6;
}

impl fmt::Display for EventCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            EventCategory::SystemCommand => "System Command",
            EventCategory::NetworkVariation => "Network Variation",
            EventCategory::HardwareVariation => "Hardware Variation",
            EventCategory::SoftwareVariation => "Software Variation",
            EventCategory::RuntimeFault => "Runtime Fault",
            EventCategory::LoadVariation => "Load Variation",
        };
        f.write_str(s)
    }
}

/// The predefined MobiGATE events (Table 6-1 plus the §4.2.3 list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventKind {
    // --- System Command ---
    /// Suspend stream processing.
    Pause,
    /// Resume a paused stream.
    Resume,
    /// End of application (§4.2.3 `END`).
    End,
    // --- Network Variation ---
    /// Poor network bandwidth (§4.2.3 `LOW_BANDWIDTH`).
    LowBandwidth,
    /// Bandwidth recovered above threshold.
    HighBandwidth,
    /// High wireless bit-error rate.
    HighErrorRate,
    /// Link lost entirely.
    Disconnection,
    // --- Hardware Variation ---
    /// Client device running out of power (§4.2.3 `LOW_ENERGY`).
    LowEnergy,
    /// Client supports only shallow grayscale (§4.2.3 `LOW_GRAYS`).
    LowGrays,
    /// Client display is small.
    SmallScreen,
    /// Client memory pressure.
    LowMemory,
    // --- Software Variation ---
    /// Client lacks a decoder for the current format.
    DecoderUnavailable,
    /// Client cannot render the current data format.
    FormatUnsupported,
    // --- Runtime Fault ---
    /// A streamlet instance faulted (panicked) in the execution plane; the
    /// supervisor raises it so streams can reconfigure around the failure.
    StreamletFault,
    /// A streamlet instance's circuit breaker tripped open after crossing
    /// its fault-rate threshold; the supervisor stops restarting it and
    /// `when (STREAMLET_FAULT)` bypass rules route around it.
    BreakerOpen,
    /// A tripped breaker entered its half-open probe window (one restart
    /// attempted to test recovery).
    BreakerHalfOpen,
    /// A half-open breaker observed enough quiet probes and closed again.
    BreakerClose,
    // --- Load Variation (metrics→event bridge) ---
    /// A stream's queued bytes crossed the configured high-water mark.
    ChannelCongested,
    /// A stream's drop rate crossed the configured threshold.
    HighDropRate,
    /// A stream's fault rate crossed the configured threshold.
    HighFaultRate,
    /// A session consumed more ingress bytes than its configured budget.
    ByteBudgetExceeded,
    /// Admission control is actively rejecting ingress for a stream (the
    /// gateway is saturated beyond its token-bucket refill rate).
    Overload,
}

impl EventKind {
    /// Every predefined event.
    pub const ALL: [EventKind; 22] = [
        EventKind::Pause,
        EventKind::Resume,
        EventKind::End,
        EventKind::LowBandwidth,
        EventKind::HighBandwidth,
        EventKind::HighErrorRate,
        EventKind::Disconnection,
        EventKind::LowEnergy,
        EventKind::LowGrays,
        EventKind::SmallScreen,
        EventKind::LowMemory,
        EventKind::DecoderUnavailable,
        EventKind::FormatUnsupported,
        EventKind::StreamletFault,
        EventKind::BreakerOpen,
        EventKind::BreakerHalfOpen,
        EventKind::BreakerClose,
        EventKind::ChannelCongested,
        EventKind::HighDropRate,
        EventKind::HighFaultRate,
        EventKind::ByteBudgetExceeded,
        EventKind::Overload,
    ];

    /// The category the event belongs to (Table 6-1 column 1).
    pub fn category(self) -> EventCategory {
        match self {
            EventKind::Pause | EventKind::Resume | EventKind::End => EventCategory::SystemCommand,
            EventKind::LowBandwidth
            | EventKind::HighBandwidth
            | EventKind::HighErrorRate
            | EventKind::Disconnection => EventCategory::NetworkVariation,
            EventKind::LowEnergy
            | EventKind::LowGrays
            | EventKind::SmallScreen
            | EventKind::LowMemory => EventCategory::HardwareVariation,
            EventKind::DecoderUnavailable | EventKind::FormatUnsupported => {
                EventCategory::SoftwareVariation
            }
            EventKind::StreamletFault
            | EventKind::BreakerOpen
            | EventKind::BreakerHalfOpen
            | EventKind::BreakerClose => EventCategory::RuntimeFault,
            EventKind::ChannelCongested
            | EventKind::HighDropRate
            | EventKind::HighFaultRate
            | EventKind::ByteBudgetExceeded
            | EventKind::Overload => EventCategory::LoadVariation,
        }
    }

    /// The MCL spelling (`when (LOW_ENERGY) { … }`).
    pub fn mcl_name(self) -> &'static str {
        match self {
            EventKind::Pause => "PAUSE",
            EventKind::Resume => "RESUME",
            EventKind::End => "END",
            EventKind::LowBandwidth => "LOW_BANDWIDTH",
            EventKind::HighBandwidth => "HIGH_BANDWIDTH",
            EventKind::HighErrorRate => "HIGH_ERROR_RATE",
            EventKind::Disconnection => "DISCONNECTION",
            EventKind::LowEnergy => "LOW_ENERGY",
            EventKind::LowGrays => "LOW_GRAYS",
            EventKind::SmallScreen => "SMALL_SCREEN",
            EventKind::LowMemory => "LOW_MEMORY",
            EventKind::DecoderUnavailable => "DECODER_UNAVAILABLE",
            EventKind::FormatUnsupported => "FORMAT_UNSUPPORTED",
            EventKind::StreamletFault => "STREAMLET_FAULT",
            EventKind::BreakerOpen => "BREAKER_OPEN",
            EventKind::BreakerHalfOpen => "BREAKER_HALF_OPEN",
            EventKind::BreakerClose => "BREAKER_CLOSE",
            EventKind::ChannelCongested => "CHANNEL_CONGESTED",
            EventKind::HighDropRate => "HIGH_DROP_RATE",
            EventKind::HighFaultRate => "HIGH_FAULT_RATE",
            EventKind::ByteBudgetExceeded => "BYTE_BUDGET_EXCEEDED",
            EventKind::Overload => "OVERLOAD",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mcl_name())
    }
}

impl FromStr for EventKind {
    type Err = String;

    /// Parses the MCL spelling. `LOW_GRAY` is accepted as an alias of
    /// `LOW_GRAYS` (the thesis uses both spellings, Fig 4-8 vs §4.2.3).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let upper = s.to_ascii_uppercase();
        if upper == "LOW_GRAY" {
            return Ok(EventKind::LowGrays);
        }
        EventKind::ALL
            .iter()
            .copied()
            .find(|e| e.mcl_name() == upper)
            .ok_or_else(|| format!("unknown event `{s}`"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_event_round_trips_by_name() {
        for e in EventKind::ALL {
            assert_eq!(e.mcl_name().parse::<EventKind>().unwrap(), e);
        }
    }

    #[test]
    fn low_gray_alias() {
        assert_eq!(
            "LOW_GRAY".parse::<EventKind>().unwrap(),
            EventKind::LowGrays
        );
        assert_eq!(
            "low_gray".parse::<EventKind>().unwrap(),
            EventKind::LowGrays
        );
    }

    #[test]
    fn unknown_event_is_error() {
        assert!("NO_SUCH_EVENT".parse::<EventKind>().is_err());
    }

    #[test]
    fn categories_partition_events() {
        // Every event has exactly one category and every category is
        // non-empty — Table 6-1's shape.
        for cat in EventCategory::ALL {
            assert!(EventKind::ALL.iter().any(|e| e.category() == cat));
        }
        // The paper's named events land in the right categories.
        assert_eq!(EventKind::End.category(), EventCategory::SystemCommand);
        assert_eq!(
            EventKind::LowBandwidth.category(),
            EventCategory::NetworkVariation
        );
        assert_eq!(
            EventKind::LowEnergy.category(),
            EventCategory::HardwareVariation
        );
        assert_eq!(
            EventKind::LowGrays.category(),
            EventCategory::HardwareVariation
        );
        assert_eq!(
            EventKind::StreamletFault.category(),
            EventCategory::RuntimeFault
        );
        assert_eq!(
            EventKind::ChannelCongested.category(),
            EventCategory::LoadVariation
        );
    }

    #[test]
    fn category_ids_are_dense() {
        let mut ids: Vec<usize> = EventCategory::ALL.iter().map(|c| c.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(EventCategory::COUNT, 6);
    }
}
