//! Stream templates — one compiled stream stamped out per session.
//!
//! The paper's deployment story is per-user: "the system automatically
//! generates a unique session ID for each instance of a stream" (§4.4.3),
//! and §3.3.4 pooling exists so instantiating a chain for every mobile
//! user stays cheap. A [`StreamTemplate`] captures the expensive half of
//! that pipeline — compilation and the Chapter-5 semantic analyses — once,
//! and then `instantiate` is a pure table rewrite: clone the configuration
//! table and rename it to a per-session identity. Everything downstream
//! keys off that name: the runtime stamps `Content-Session` from it, the
//! Event Manager matches `evtSource` against it, and supervision labels
//! faults with it, so one rename at instantiation time gives every session
//! its own routing row, event identity, and fault domain.

use crate::analysis;
use crate::config::{ConfigTable, Program, StreamletSpec};
use crate::error::{MclError, Span};
use std::collections::BTreeMap;

/// A validated, reusable stream blueprint.
///
/// Construction runs the Chapter-5 consistency gate exactly once;
/// [`StreamTemplate::instantiate`] afterwards is O(table size) with no
/// re-compilation and no re-analysis, which is what makes stamping out
/// thousands of sessions from one script tractable.
#[derive(Debug, Clone)]
pub struct StreamTemplate {
    base: ConfigTable,
    defs: BTreeMap<String, StreamletSpec>,
}

impl StreamTemplate {
    /// Captures `stream` of a compiled program as a template, running the
    /// Chapter-5 semantic analyses as a one-time admission gate.
    pub fn from_program(program: &Program, stream: &str) -> Result<Self, MclError> {
        let table = program
            .streams
            .get(stream)
            .ok_or_else(|| MclError::Undefined {
                span: Span::default(),
                kind: "stream",
                name: stream.to_string(),
            })?;
        if let Some(report) = analysis::analyze(program, stream) {
            if !report.is_consistent() {
                return Err(MclError::Semantic {
                    message: format!(
                        "stream `{stream}` composition inconsistent:\n{}",
                        report.summary()
                    ),
                });
            }
        }
        Ok(StreamTemplate {
            base: table.clone(),
            defs: program.streamlet_defs.clone(),
        })
    }

    /// Captures the program's `main` stream as a template.
    pub fn from_main(program: &Program) -> Result<Self, MclError> {
        let name = program.main_stream.clone().ok_or(MclError::Undefined {
            span: Span::default(),
            kind: "stream",
            name: "main".into(),
        })?;
        Self::from_program(program, &name)
    }

    /// The template's base stream name (the MCL stream identifier).
    pub fn base_name(&self) -> &str {
        &self.base.name
    }

    /// The streamlet definitions instances resolve against.
    pub fn defs(&self) -> &BTreeMap<String, StreamletSpec> {
        &self.defs
    }

    /// The unmodified base table (deploying this is equivalent to the
    /// pre-template single-stream path).
    pub fn base_table(&self) -> &ConfigTable {
        &self.base
    }

    /// The per-session stream name for `seq` (`<stream>#<seq>`). `#` never
    /// appears in MCL identifiers, so instantiated names cannot collide
    /// with a hand-deployed stream.
    pub fn session_name(&self, seq: u64) -> String {
        format!("{}#{}", self.base.name, seq)
    }

    /// Stamps out one per-session configuration table: a clone of the base
    /// table renamed to `session_name`. Only the table *name* is rewritten
    /// — instance rows, channels, connections, and `when` rules are scoped
    /// to the table they live in, so they need no renaming; the session
    /// identity flows from the name into `Content-Session` stamping and
    /// `evtSource` matching at deploy time.
    pub fn instantiate(&self, session_name: &str) -> ConfigTable {
        let mut table = self.base.clone();
        table.name = session_name.to_string();
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    const SRC: &str = r#"
        streamlet echo { port { in pi : */*; out po : */*; } }
        main stream app {
            streamlet e = new-streamlet (echo);
            when (LOW_BANDWIDTH) { }
        }
    "#;

    #[test]
    fn instantiate_rewrites_only_the_name() {
        let program = compile(SRC).unwrap();
        let t = StreamTemplate::from_main(&program).unwrap();
        assert_eq!(t.base_name(), "app");
        let inst = t.instantiate(&t.session_name(7));
        assert_eq!(inst.name, "app#7");
        assert_eq!(inst.streamlets, t.base_table().streamlets);
        assert_eq!(inst.connections, t.base_table().connections);
        assert_eq!(inst.when_rules, t.base_table().when_rules);
    }

    #[test]
    fn session_names_are_disjoint_from_mcl_identifiers() {
        let program = compile(SRC).unwrap();
        let t = StreamTemplate::from_main(&program).unwrap();
        // `#` cannot be lexed as part of an identifier, so no stream
        // declared in a script can collide with an instantiated name.
        assert!(t.session_name(0).contains('#'));
        assert!(compile("main stream app#0 { }").is_err());
    }

    #[test]
    fn unknown_stream_is_rejected() {
        let program = compile(SRC).unwrap();
        assert!(StreamTemplate::from_program(&program, "ghost").is_err());
    }

    #[test]
    fn inconsistent_composition_is_rejected_once_at_template_time() {
        let cyclic = r#"
            streamlet echo { port { in pi : */*; out po : */*; } }
            main stream app {
                streamlet a = new-streamlet (echo);
                streamlet b = new-streamlet (echo);
                connect (a.po, b.pi);
                connect (b.po, a.pi);
            }
        "#;
        let program = compile(cyclic).unwrap();
        let err = StreamTemplate::from_main(&program).unwrap_err();
        assert!(err.to_string().contains("feedback loop"), "{err}");
    }

    #[test]
    fn missing_main_is_rejected() {
        let program = compile("stream s { }").unwrap();
        assert!(StreamTemplate::from_main(&program).is_err());
    }
}
