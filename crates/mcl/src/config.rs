//! Configuration tables — the compiler's output and the Coordination
//! Manager's input.
//!
//! "The Coordination Manager maintains a configuration table for each
//! instance of streamlet composition. The configuration table serves to
//! contain meta-information on the composition of streamlets, message type
//! constraints, port connections, and routing constraints. The table is
//! derived from the compilation of the MCL script" (§3.3).

use crate::ast::{ChannelCategory, ChannelKind, ConstraintKind};
use crate::events::EventKind;
use mobigate_mime::MimeType;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A fully compiled MCL program: streamlet/channel definitions plus one
/// configuration table per stream.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Streamlet definitions by name (composites already expanded away).
    pub streamlet_defs: BTreeMap<String, StreamletSpec>,
    /// Channel definitions by name.
    pub channel_defs: BTreeMap<String, ChannelSpec>,
    /// One configuration table per declared stream, keyed by stream name.
    pub streams: BTreeMap<String, ConfigTable>,
    /// The name of the `main` stream, if one was declared.
    pub main_stream: Option<String>,
    /// Architectural constraints, applied by the analyses.
    pub constraints: Vec<(ConstraintKind, String, String)>,
}

impl Program {
    /// The configuration table of the `main` stream.
    pub fn main(&self) -> Option<&ConfigTable> {
        self.main_stream.as_ref().and_then(|n| self.streams.get(n))
    }
}

/// A resolved streamlet definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamletSpec {
    /// Definition name.
    pub name: String,
    /// Input ports with their MIME types.
    pub inputs: Vec<(String, MimeType)>,
    /// Output ports with their MIME types.
    pub outputs: Vec<(String, MimeType)>,
    /// Stateless streamlets are poolable (§3.3.4).
    pub stateful: bool,
    /// Directory key of the implementing component.
    pub library: String,
    /// Free-text description.
    pub description: String,
}

impl StreamletSpec {
    /// Looks up the type of a port in either direction.
    pub fn port_type(&self, port: &str) -> Option<&MimeType> {
        self.inputs
            .iter()
            .chain(self.outputs.iter())
            .find(|(n, _)| n == port)
            .map(|(_, t)| t)
    }

    /// True if `port` is an input port.
    pub fn is_input(&self, port: &str) -> bool {
        self.inputs.iter().any(|(n, _)| n == port)
    }

    /// True if `port` is an output port.
    pub fn is_output(&self, port: &str) -> bool {
        self.outputs.iter().any(|(n, _)| n == port)
    }
}

/// A resolved channel definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelSpec {
    /// Definition name.
    pub name: String,
    /// Synchrony: sync channels rendezvous, async channels buffer.
    pub kind: ChannelKind,
    /// Disconnection category (S/BB/BK/KB/KK).
    pub category: ChannelCategory,
    /// Buffer capacity in kilobytes.
    pub buffer_kb: u64,
    /// The message type the channel carries (its `in` port type).
    pub ty: MimeType,
}

impl ChannelSpec {
    /// The default auto-created channel of §4.2.3: "an asynchronous BK type
    /// with 100 Kbytes of buffer", adopting the source port's type.
    pub fn default_for(ty: MimeType) -> Self {
        ChannelSpec {
            name: "<default>".into(),
            kind: ChannelKind::Async,
            category: ChannelCategory::BK,
            buffer_kb: 100,
            ty,
        }
    }
}

/// A streamlet instance row in a configuration table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceRow {
    /// Instance name (hierarchical for expanded composites: `outer/inner`).
    pub name: String,
    /// Name of the defining [`StreamletSpec`].
    pub def: String,
    /// Whether the instance was declared inside a `when` block (and so is
    /// created lazily at reconfiguration time) or in the initial topology.
    pub initial: bool,
}

/// A channel instance row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelRow {
    /// Instance name.
    pub name: String,
    /// The resolved channel spec (definitions are inlined so the runtime
    /// needs no second lookup).
    pub spec: ChannelSpec,
}

/// One directed connection: `from` (instance, out-port) → `to` (instance,
/// in-port) through `channel`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectionRow {
    /// Producer endpoint.
    pub from: (String, String),
    /// Consumer endpoint.
    pub to: (String, String),
    /// Channel instance carrying the flow (`None` never occurs after
    /// compilation — default channels are materialized with generated
    /// names — but reconfiguration actions may reference it).
    pub channel: String,
}

/// A reconfiguration action compiled from a `when` body (§4.2.3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ReconfigAction {
    /// Instantiate a streamlet (instance name, definition name).
    NewStreamlet { name: String, def: String },
    /// Instantiate a channel.
    NewChannel { name: String, spec: ChannelSpec },
    /// Remove a streamlet instance (after the Fig 6-8 safety conditions).
    RemoveStreamlet { name: String },
    /// Remove a channel instance.
    RemoveChannel { name: String },
    /// Connect two ports through a channel.
    Connect {
        from: (String, String),
        to: (String, String),
        channel: String,
    },
    /// Break a connection.
    Disconnect {
        from: (String, String),
        to: (String, String),
    },
    /// Break every connection of an instance.
    DisconnectAll { instance: String },
    /// Splice `instance` into the `from`→`to` connection (Fig 7-4 steps).
    Insert {
        from: (String, String),
        to: (String, String),
        instance: String,
    },
    /// Swap an instance for another of a compatible definition.
    Replace { old: String, new: String },
}

/// An event-triggered rule: when `event` fires, run `actions` in order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhenRule {
    /// Triggering event.
    pub event: EventKind,
    /// Ordered actions.
    pub actions: Vec<ReconfigAction>,
}

/// The configuration table of one stream (§3.3.1: "the configuration table
/// acts as the routing table").
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ConfigTable {
    /// Stream name.
    pub name: String,
    /// Streamlet instances (composites expanded, hierarchical names).
    pub streamlets: Vec<InstanceRow>,
    /// Channel instances.
    pub channels: Vec<ChannelRow>,
    /// Initial connections.
    pub connections: Vec<ConnectionRow>,
    /// Event-triggered reconfiguration rules.
    pub when_rules: Vec<WhenRule>,
    /// Exported input ports: unsatisfied `in` ports of inner streamlets
    /// (instance, port, type) — the stream's own inputs (§5.1.4).
    pub exported_inputs: Vec<(String, String, MimeType)>,
    /// Exported output ports (the stream's own outputs).
    pub exported_outputs: Vec<(String, String, MimeType)>,
}

impl ConfigTable {
    /// Looks up an instance row by name.
    pub fn instance(&self, name: &str) -> Option<&InstanceRow> {
        self.streamlets.iter().find(|r| r.name == name)
    }

    /// Looks up a channel row by name.
    pub fn channel(&self, name: &str) -> Option<&ChannelRow> {
        self.channels.iter().find(|r| r.name == name)
    }

    /// Instances declared in the initial topology (not inside `when`).
    pub fn initial_instances(&self) -> impl Iterator<Item = &InstanceRow> {
        self.streamlets.iter().filter(|r| r.initial)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_channel_matches_paper() {
        let c = ChannelSpec::default_for(MimeType::any());
        assert_eq!(c.kind, ChannelKind::Async);
        assert_eq!(c.category, ChannelCategory::BK);
        assert_eq!(c.buffer_kb, 100);
    }

    #[test]
    fn spec_port_lookup() {
        let s = StreamletSpec {
            name: "x".into(),
            inputs: vec![("pi".into(), MimeType::top_level("text"))],
            outputs: vec![("po".into(), MimeType::new("text", "plain"))],
            stateful: false,
            library: String::new(),
            description: String::new(),
        };
        assert!(s.is_input("pi"));
        assert!(s.is_output("po"));
        assert!(!s.is_input("po"));
        assert_eq!(s.port_type("po"), Some(&MimeType::new("text", "plain")));
        assert_eq!(s.port_type("nope"), None);
    }

    #[test]
    fn table_lookups() {
        let t = ConfigTable {
            name: "s".into(),
            streamlets: vec![
                InstanceRow {
                    name: "a".into(),
                    def: "d".into(),
                    initial: true,
                },
                InstanceRow {
                    name: "b".into(),
                    def: "d".into(),
                    initial: false,
                },
            ],
            ..Default::default()
        };
        assert!(t.instance("a").is_some());
        assert!(t.instance("zz").is_none());
        assert_eq!(t.initial_instances().count(), 1);
    }
}
