//! Abstract syntax of MCL (Figures 4-2 through 4-5, plus the constraint
//! extension the thesis lists as future work in §8.2.2).

use crate::error::Span;
use mobigate_mime::MimeType;
use serde::{Deserialize, Serialize};

/// A whole MCL compilation unit.
#[derive(Debug, Clone, Default)]
pub struct Script {
    /// `type a/b <: c/d;` lattice declarations.
    pub type_decls: Vec<TypeDecl>,
    /// Streamlet definitions (Figure 4-3).
    pub streamlets: Vec<StreamletDef>,
    /// Channel definitions (Figure 4-4).
    pub channels: Vec<ChannelDef>,
    /// Stream definitions (Figure 4-5).
    pub streams: Vec<StreamDef>,
    /// Architectural constraints for the Ch.5 analyses.
    pub constraints: Vec<ConstraintDecl>,
}

/// `type <child> <: <parent> ;` — extends the MIME lattice (§4.1: "it is not
/// difficult to introduce a new message type into the system").
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// The specializing type.
    pub child: MimeType,
    /// The generalizing type.
    pub parent: MimeType,
    /// Source location.
    pub span: Span,
}

/// Direction of a port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortDir {
    /// `in` — the component consumes messages here.
    In,
    /// `out` — the component produces messages here.
    Out,
}

/// One `in|out name : mime/type ;` declaration.
#[derive(Debug, Clone)]
pub struct PortDecl {
    /// Direction.
    pub dir: PortDir,
    /// Port name (unique within the component).
    pub name: String,
    /// Declared MIME type.
    pub ty: MimeType,
    /// Source location.
    pub span: Span,
}

/// Whether a streamlet keeps per-stream state (§3.3.4); stateless streamlets
/// are eligible for streamlet pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Statefulness {
    /// No per-stream state; instances may be pooled and shared.
    #[default]
    Stateless,
    /// Keeps state; one instance per stream.
    Stateful,
}

/// Figure 4-3: a streamlet definition.
#[derive(Debug, Clone)]
pub struct StreamletDef {
    /// Definition name.
    pub name: String,
    /// Declared ports.
    pub ports: Vec<PortDecl>,
    /// `type = STATELESS|STATEFUL`.
    pub statefulness: Statefulness,
    /// `library = "..."` — the code-level component implementing the
    /// streamlet (resolved against the Streamlet Directory at runtime).
    pub library: String,
    /// `description = "..."`.
    pub description: String,
    /// Source location.
    pub span: Span,
}

/// Channel synchrony (Figure 4-4): synchronous channels are zero-length
/// buffers; asynchronous channels are (large) FIFO buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChannelKind {
    /// Zero-length rendezvous buffer.
    Sync,
    /// Bounded FIFO buffer (the paper's "unbounded" simulated by a large
    /// bound).
    #[default]
    Async,
}

/// Channel disconnection category (Figure 4-4): what happens to pending
/// units when one side detaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ChannelCategory {
    /// Never any pending units.
    S,
    /// Break-break: disconnecting one side disconnects the other.
    BB,
    /// Break-keep: keeps its target side when the source detaches.
    #[default]
    BK,
    /// Keep-break: keeps its source side when the target detaches.
    KB,
    /// Keep-keep: cannot be disconnected at either side.
    KK,
}

impl ChannelCategory {
    /// Parses the MCL attribute value.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_uppercase().as_str() {
            "S" => Some(ChannelCategory::S),
            "BB" => Some(ChannelCategory::BB),
            "BK" => Some(ChannelCategory::BK),
            "KB" => Some(ChannelCategory::KB),
            "KK" => Some(ChannelCategory::KK),
            _ => None,
        }
    }
}

/// Figure 4-4: a channel definition.
#[derive(Debug, Clone)]
pub struct ChannelDef {
    /// Definition name.
    pub name: String,
    /// Declared ports (an `in` and an `out`).
    pub ports: Vec<PortDecl>,
    /// Synchrony.
    pub kind: ChannelKind,
    /// Disconnection category.
    pub category: ChannelCategory,
    /// Buffer size in **kilobytes** (Figure 4-4: "specified in units of
    /// Kbytes").
    pub buffer_kb: u64,
    /// `description = "..."`.
    pub description: String,
    /// Source location.
    pub span: Span,
}

/// A `p.i` reference to port `i` of instance `p` (§4.2.1 notation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortRef {
    /// Instance name.
    pub instance: String,
    /// Port name.
    pub port: String,
    /// Source location.
    pub span: Span,
}

impl std::fmt::Display for PortRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}.{}", self.instance, self.port)
    }
}

/// Statements allowed inside a `stream` body and inside `when` blocks
/// (§4.2.3 primitives).
#[derive(Debug, Clone)]
pub enum StreamStmt {
    /// `streamlet a, b = new-streamlet (def);`
    NewStreamlet {
        names: Vec<String>,
        def: String,
        span: Span,
    },
    /// `channel c1, c2 = new-channel (def);`
    NewChannel {
        names: Vec<String>,
        def: String,
        span: Span,
    },
    /// `remove-streamlet (a);`
    RemoveStreamlet { name: String, span: Span },
    /// `remove-channel (c);`
    RemoveChannel { name: String, span: Span },
    /// `connect (p.o, q.i [, c]);`
    Connect {
        from: PortRef,
        to: PortRef,
        channel: Option<String>,
        span: Span,
    },
    /// `disconnect (p.o, q.i);`
    Disconnect {
        from: PortRef,
        to: PortRef,
        span: Span,
    },
    /// `disconnectall (p);`
    DisconnectAll { instance: String, span: Span },
    /// `insert (p.o, q.i, n);` — convenience reconfiguration primitive
    /// (mirrors `Stream.insert` in Figure 6-4): splice instance `n` into the
    /// existing connection between two ports.
    Insert {
        from: PortRef,
        to: PortRef,
        instance: String,
        span: Span,
    },
    /// `replace (old, new);` (Figure 6-4 composition primitive).
    Replace {
        old: String,
        new: String,
        span: Span,
    },
    /// `when (EVENT) { ... }` — event-triggered reconfiguration (§4.2.3).
    When {
        event: String,
        body: Vec<StreamStmt>,
        span: Span,
    },
}

impl StreamStmt {
    /// Source location of the statement.
    pub fn span(&self) -> Span {
        match self {
            StreamStmt::NewStreamlet { span, .. }
            | StreamStmt::NewChannel { span, .. }
            | StreamStmt::RemoveStreamlet { span, .. }
            | StreamStmt::RemoveChannel { span, .. }
            | StreamStmt::Connect { span, .. }
            | StreamStmt::Disconnect { span, .. }
            | StreamStmt::DisconnectAll { span, .. }
            | StreamStmt::Insert { span, .. }
            | StreamStmt::Replace { span, .. }
            | StreamStmt::When { span, .. } => *span,
        }
    }
}

/// Figure 4-5: a stream definition. `main` marks the top-level stream the
/// system starts executing (§4.4.2).
#[derive(Debug, Clone)]
pub struct StreamDef {
    /// Stream name.
    pub name: String,
    /// True when declared `main stream`.
    pub is_main: bool,
    /// Body statements in order.
    pub body: Vec<StreamStmt>,
    /// Source location.
    pub span: Span,
}

/// Kinds of architectural constraints analyzable by the semantic model
/// (§5.2.3–§5.2.5). Syntax: `constraint exclude(a, b);` etc. — an MCL
/// extension implementing the thesis's "systematic expression of
/// architectural assumptions" future-work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// `exclude(a, b)` — a and b are mutually exclusive (§5.2.3).
    Exclude,
    /// `depend(a, b)` — deploying a requires deploying b (§5.2.4).
    Depend,
    /// `preorder(a, b)` — a must precede b on every flow path (§5.2.5).
    Preorder,
}

/// A parsed constraint declaration. Names refer to streamlet *definitions*;
/// the analyses apply them to every instance of those definitions.
#[derive(Debug, Clone)]
pub struct ConstraintDecl {
    /// Which relation.
    pub kind: ConstraintKind,
    /// First definition name.
    pub a: String,
    /// Second definition name.
    pub b: String,
    /// Source location.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_category_parses_all_variants() {
        assert_eq!(ChannelCategory::parse("S"), Some(ChannelCategory::S));
        assert_eq!(ChannelCategory::parse("bb"), Some(ChannelCategory::BB));
        assert_eq!(ChannelCategory::parse("Bk"), Some(ChannelCategory::BK));
        assert_eq!(ChannelCategory::parse("KB"), Some(ChannelCategory::KB));
        assert_eq!(ChannelCategory::parse("kk"), Some(ChannelCategory::KK));
        assert_eq!(ChannelCategory::parse("XX"), None);
    }

    #[test]
    fn port_ref_displays_dotted() {
        let p = PortRef {
            instance: "s1".into(),
            port: "po".into(),
            span: Span::default(),
        };
        assert_eq!(p.to_string(), "s1.po");
    }

    #[test]
    fn defaults_match_paper() {
        // §4.2.3: the auto-created channel is "an asynchronous BK type".
        assert_eq!(ChannelKind::default(), ChannelKind::Async);
        assert_eq!(ChannelCategory::default(), ChannelCategory::BK);
        assert_eq!(Statefulness::default(), Statefulness::Stateless);
    }
}
