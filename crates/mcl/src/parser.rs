//! Recursive-descent parser for MCL.
//!
//! Grammar (reconstructed from Figures 4-2..4-5 and the examples in §4.3 and
//! §4.4.2):
//!
//! ```text
//! script        := { type_decl | streamlet_def | channel_def | stream_def
//!                  | constraint_decl }
//! type_decl     := "type" mime "<:" mime ";"
//! streamlet_def := "streamlet" IDENT "{" port_block [attr_block] "}"
//! channel_def   := "channel" IDENT "{" port_block [attr_block] "}"
//! port_block    := "port" "{" { ("in"|"out") IDENT ":" mime ";" } "}"
//! attr_block    := "attribute" "{" { IDENT "=" value ";" } "}"
//! stream_def    := ["main"] "stream" IDENT "{" { stream_stmt } "}"
//! stream_stmt   := "streamlet" names "=" ("new-streamlet"|"new" "streamlet")
//!                      "(" IDENT ")" ";"
//!                | "channel" names "=" ("new-channel"|"new" "channel")
//!                      "(" IDENT ")" ";"
//!                | "connect" "(" portref "," portref ["," IDENT] ")" ";"
//!                | "disconnect" "(" portref "," portref ")" ";"
//!                | "disconnectall" "(" IDENT ")" ";"
//!                | "insert" "(" portref "," portref "," IDENT ")" ";"
//!                | "replace" "(" IDENT "," IDENT ")" ";"
//!                | "remove-streamlet" "(" IDENT ")" ";"
//!                | "remove-channel" "(" IDENT ")" ";"
//!                | "when" "(" IDENT ")" "{" { stream_stmt } "}"
//! constraint_decl := "constraint" ("exclude"|"depend"|"preorder")
//!                      "(" IDENT "," IDENT ")" ";"
//! portref       := IDENT "." IDENT
//! mime          := IDENT [ "/" (IDENT|"*") ] | "*" "/" "*"
//! names         := IDENT { "," IDENT }
//! ```
//!
//! `new channel (x)` — with a space, as written in Figure 4-8 — is accepted
//! alongside the canonical `new-channel (x)`.

use crate::ast::*;
use crate::error::{MclError, Span};
use crate::lexer::{lex, Token, TokenKind};
use mobigate_mime::MimeType;

/// Parses an MCL source string into a [`Script`].
pub fn parse(source: &str) -> Result<Script, MclError> {
    let tokens = lex(source)?;
    Parser { tokens, pos: 0 }.script()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn peek_kind(&self) -> &TokenKind {
        &self.peek().kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek_kind(), TokenKind::Ident(s) if s == word)
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if self.at_ident(word) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, MclError> {
        if *self.peek_kind() == kind {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek_kind())))
        }
    }

    fn expect_word(&mut self, word: &str) -> Result<Token, MclError> {
        if self.at_ident(word) {
            Ok(self.bump())
        } else {
            Err(self.error(format!("expected `{word}`, found {}", self.peek_kind())))
        }
    }

    fn ident(&mut self) -> Result<(String, Span), MclError> {
        match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                let t = self.bump();
                Ok((s, t.span))
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    fn error(&self, message: String) -> MclError {
        MclError::Parse {
            span: self.peek().span,
            message,
        }
    }

    // --- grammar productions -------------------------------------------

    fn script(mut self) -> Result<Script, MclError> {
        let mut script = Script::default();
        loop {
            match self.peek_kind().clone() {
                TokenKind::Eof => return Ok(script),
                TokenKind::Ident(word) => match word.as_str() {
                    "type" => script.type_decls.push(self.type_decl()?),
                    "streamlet" => script.streamlets.push(self.streamlet_def()?),
                    "channel" => script.channels.push(self.channel_def()?),
                    "stream" | "main" => script.streams.push(self.stream_def()?),
                    "constraint" => script.constraints.push(self.constraint_decl()?),
                    other => {
                        return Err(self.error(format!(
                            "expected a top-level declaration \
                             (type/streamlet/channel/stream/constraint), found `{other}`"
                        )));
                    }
                },
                other => {
                    return Err(
                        self.error(format!("expected a top-level declaration, found {other}"))
                    );
                }
            }
        }
    }

    /// `type <child> under <parent> ;` — the concrete spelling of the
    /// thesis's lattice-extension facility (`under` reads as ⊑ and avoids
    /// adding `<:` to the token set).
    fn type_decl(&mut self) -> Result<TypeDecl, MclError> {
        let start = self.expect_word("type")?.span;
        let child = self.mime_type()?;
        self.expect_word("under")?;
        let parent = self.mime_type()?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(TypeDecl {
            child,
            parent,
            span: start.merge(end),
        })
    }

    /// Parses `top` | `top/sub` | `*/*` | `top/*`. Components may contain
    /// hyphens and dots (`application/octet-stream`, `vnd.ms-excel`), which
    /// the lexer emits as separate tokens; adjacent segments are rejoined
    /// here by span adjacency.
    fn mime_type(&mut self) -> Result<MimeType, MclError> {
        let top = self.mime_component("MIME type")?;
        if *self.peek_kind() == TokenKind::Slash {
            self.bump();
            let sub = self.mime_component("MIME subtype")?;
            Ok(MimeType::new(top, sub))
        } else {
            // Bare top-level name means the wildcard subtype (§4.4.1).
            Ok(MimeType::top_level(top))
        }
    }

    /// One component: `*` or `ident((-|.)ident)*` with no interior spaces.
    fn mime_component(&mut self, what: &str) -> Result<String, MclError> {
        let mut out = match self.peek_kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                s
            }
            TokenKind::Star => {
                self.bump();
                return Ok("*".to_string());
            }
            other => return Err(self.error(format!("expected {what}, found {other}"))),
        };
        let mut last_end = self.tokens[self.pos - 1].span.end;
        loop {
            let sep = match self.peek_kind() {
                TokenKind::Dash => '-',
                TokenKind::Dot => '.',
                _ => break,
            };
            // Only join when the separator and next ident are adjacent.
            if self.peek().span.start != last_end {
                break;
            }
            let sep_end = self.peek().span.end;
            let next_is_adjacent_ident = matches!(
                self.tokens.get(self.pos + 1).map(|t| (&t.kind, t.span.start)),
                Some((TokenKind::Ident(_), start)) if start == sep_end
            );
            if !next_is_adjacent_ident {
                break;
            }
            self.bump(); // separator
            if let TokenKind::Ident(part) = self.bump().kind {
                out.push(sep);
                out.push_str(&part);
            }
            last_end = self.tokens[self.pos - 1].span.end;
        }
        Ok(out)
    }

    fn port_block(&mut self) -> Result<Vec<PortDecl>, MclError> {
        self.expect_word("port")?;
        self.expect(TokenKind::LBrace)?;
        let mut ports = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::RBrace) {
            let (dir_word, dspan) = self.ident()?;
            let dir = match dir_word.as_str() {
                "in" => PortDir::In,
                "out" => PortDir::Out,
                other => {
                    return Err(MclError::Parse {
                        span: dspan,
                        message: format!("expected `in` or `out`, found `{other}`"),
                    });
                }
            };
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let ty = self.mime_type()?;
            let end = self.expect(TokenKind::Semi)?.span;
            ports.push(PortDecl {
                dir,
                name,
                ty,
                span: dspan.merge(end),
            });
        }
        self.expect(TokenKind::RBrace)?;
        Ok(ports)
    }

    /// Parses an `attribute { k = v; … }` block into raw pairs.
    fn attr_block(&mut self) -> Result<Vec<(String, AttrValue, Span)>, MclError> {
        self.expect_word("attribute")?;
        self.expect(TokenKind::LBrace)?;
        let mut attrs = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::RBrace) {
            let (key, kspan) = self.ident()?;
            self.expect(TokenKind::Eq)?;
            let value = match self.peek_kind().clone() {
                TokenKind::Str(s) => {
                    self.bump();
                    AttrValue::Str(s)
                }
                TokenKind::Int(n) => {
                    self.bump();
                    AttrValue::Int(n)
                }
                TokenKind::Ident(s) => {
                    self.bump();
                    AttrValue::Word(s)
                }
                other => return Err(self.error(format!("expected attribute value, found {other}"))),
            };
            let end = self.expect(TokenKind::Semi)?.span;
            attrs.push((key, value, kspan.merge(end)));
        }
        self.expect(TokenKind::RBrace)?;
        Ok(attrs)
    }

    fn streamlet_def(&mut self) -> Result<StreamletDef, MclError> {
        let start = self.expect_word("streamlet")?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let ports = self.port_block()?;
        let mut def = StreamletDef {
            name,
            ports,
            statefulness: Statefulness::default(),
            library: String::new(),
            description: String::new(),
            span: start,
        };
        if self.at_ident("attribute") {
            for (key, value, span) in self.attr_block()? {
                match (key.as_str(), &value) {
                    ("type", AttrValue::Word(w)) => {
                        def.statefulness = match w.to_ascii_uppercase().as_str() {
                            "STATELESS" => Statefulness::Stateless,
                            "STATEFUL" => Statefulness::Stateful,
                            other => {
                                return Err(MclError::Attribute {
                                    span,
                                    message: format!(
                                        "streamlet type must be STATELESS or STATEFUL, got `{other}`"
                                    ),
                                });
                            }
                        };
                    }
                    ("library", AttrValue::Str(s)) => def.library = s.clone(),
                    ("description", AttrValue::Str(s)) => def.description = s.clone(),
                    (k, _) => {
                        return Err(MclError::Attribute {
                            span,
                            message: format!("unknown or mistyped streamlet attribute `{k}`"),
                        });
                    }
                }
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        def.span = start.merge(end);
        Ok(def)
    }

    fn channel_def(&mut self) -> Result<ChannelDef, MclError> {
        let start = self.expect_word("channel")?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let ports = self.port_block()?;
        let mut def = ChannelDef {
            name,
            ports,
            kind: ChannelKind::default(),
            category: ChannelCategory::default(),
            buffer_kb: 100, // §4.2.3 default: 100 Kbytes
            description: String::new(),
            span: start,
        };
        if self.at_ident("attribute") {
            for (key, value, span) in self.attr_block()? {
                match (key.as_str(), &value) {
                    ("type", AttrValue::Word(w)) => {
                        def.kind = match w.to_ascii_uppercase().as_str() {
                            "SYNC" | "SYNCHRONOUS" => ChannelKind::Sync,
                            "ASYNC" | "ASYNCHRONOUS" => ChannelKind::Async,
                            other => {
                                return Err(MclError::Attribute {
                                    span,
                                    message: format!(
                                        "channel type must be SYNC or ASYNC, got `{other}`"
                                    ),
                                });
                            }
                        };
                    }
                    ("category", AttrValue::Word(w)) => {
                        def.category = ChannelCategory::parse(w).ok_or(MclError::Attribute {
                            span,
                            message: format!(
                                "channel category must be one of S/BB/BK/KB/KK, got `{w}`"
                            ),
                        })?;
                    }
                    ("buffer", AttrValue::Int(n)) => def.buffer_kb = *n,
                    ("description", AttrValue::Str(s)) => def.description = s.clone(),
                    (k, _) => {
                        return Err(MclError::Attribute {
                            span,
                            message: format!("unknown or mistyped channel attribute `{k}`"),
                        });
                    }
                }
            }
        }
        let end = self.expect(TokenKind::RBrace)?.span;
        def.span = start.merge(end);
        Ok(def)
    }

    fn stream_def(&mut self) -> Result<StreamDef, MclError> {
        let is_main = self.eat_ident("main");
        let start = self.expect_word("stream")?.span;
        let (name, _) = self.ident()?;
        self.expect(TokenKind::LBrace)?;
        let body = self.stream_body()?;
        let end = self.expect(TokenKind::RBrace)?.span;
        Ok(StreamDef {
            name,
            is_main,
            body,
            span: start.merge(end),
        })
    }

    fn stream_body(&mut self) -> Result<Vec<StreamStmt>, MclError> {
        let mut body = Vec::new();
        while !matches!(self.peek_kind(), TokenKind::RBrace | TokenKind::Eof) {
            body.push(self.stream_stmt()?);
        }
        Ok(body)
    }

    fn stream_stmt(&mut self) -> Result<StreamStmt, MclError> {
        let (word, span) = match self.peek_kind().clone() {
            TokenKind::Ident(s) => (s, self.peek().span),
            other => return Err(self.error(format!("expected a statement, found {other}"))),
        };
        match word.as_str() {
            "streamlet" => self.decl_stmt(true),
            "channel" => self.decl_stmt(false),
            "connect" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let from = self.port_ref()?;
                self.expect(TokenKind::Comma)?;
                let to = self.port_ref()?;
                let channel = if *self.peek_kind() == TokenKind::Comma {
                    self.bump();
                    Some(self.ident()?.0)
                } else {
                    None
                };
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::Connect {
                    from,
                    to,
                    channel,
                    span: span.merge(end),
                })
            }
            "disconnect" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let from = self.port_ref()?;
                self.expect(TokenKind::Comma)?;
                let to = self.port_ref()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::Disconnect {
                    from,
                    to,
                    span: span.merge(end),
                })
            }
            "disconnectall" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (instance, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::DisconnectAll {
                    instance,
                    span: span.merge(end),
                })
            }
            "insert" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let from = self.port_ref()?;
                self.expect(TokenKind::Comma)?;
                let to = self.port_ref()?;
                self.expect(TokenKind::Comma)?;
                let (instance, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::Insert {
                    from,
                    to,
                    instance,
                    span: span.merge(end),
                })
            }
            "replace" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (old, _) = self.ident()?;
                self.expect(TokenKind::Comma)?;
                let (new, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::Replace {
                    old,
                    new,
                    span: span.merge(end),
                })
            }
            "remove-streamlet" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (name, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::RemoveStreamlet {
                    name,
                    span: span.merge(end),
                })
            }
            "remove-channel" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (name, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                let end = self.expect(TokenKind::Semi)?.span;
                Ok(StreamStmt::RemoveChannel {
                    name,
                    span: span.merge(end),
                })
            }
            "when" => {
                self.bump();
                self.expect(TokenKind::LParen)?;
                let (event, _) = self.ident()?;
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::LBrace)?;
                let body = self.stream_body()?;
                let end = self.expect(TokenKind::RBrace)?.span;
                Ok(StreamStmt::When {
                    event,
                    body,
                    span: span.merge(end),
                })
            }
            other => Err(self.error(format!("unknown statement `{other}`"))),
        }
    }

    /// `streamlet a, b = new-streamlet (def);` (or the channel twin).
    fn decl_stmt(&mut self, is_streamlet: bool) -> Result<StreamStmt, MclError> {
        let start = self.bump().span; // `streamlet` / `channel`
        let mut names = vec![self.ident()?.0];
        while *self.peek_kind() == TokenKind::Comma {
            self.bump();
            names.push(self.ident()?.0);
        }
        self.expect(TokenKind::Eq)?;
        // Accept `new-streamlet`, `new streamlet`, `new-channel`, `new channel`.
        let expected_hyphen = if is_streamlet {
            "new-streamlet"
        } else {
            "new-channel"
        };
        let expected_word = if is_streamlet { "streamlet" } else { "channel" };
        if self.eat_ident(expected_hyphen) {
            // canonical form
        } else if self.eat_ident("new") {
            self.expect_word(expected_word)?;
        } else {
            return Err(self.error(format!("expected `{expected_hyphen}`")));
        }
        self.expect(TokenKind::LParen)?;
        let (def, _) = self.ident()?;
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semi)?.span;
        let span = start.merge(end);
        Ok(if is_streamlet {
            StreamStmt::NewStreamlet { names, def, span }
        } else {
            StreamStmt::NewChannel { names, def, span }
        })
    }

    fn port_ref(&mut self) -> Result<PortRef, MclError> {
        let (instance, ispan) = self.ident()?;
        self.expect(TokenKind::Dot)?;
        let (port, pspan) = self.ident()?;
        Ok(PortRef {
            instance,
            port,
            span: ispan.merge(pspan),
        })
    }

    fn constraint_decl(&mut self) -> Result<ConstraintDecl, MclError> {
        let start = self.expect_word("constraint")?.span;
        let (kind_word, kspan) = self.ident()?;
        let kind = match kind_word.as_str() {
            "exclude" => ConstraintKind::Exclude,
            "depend" => ConstraintKind::Depend,
            "preorder" => ConstraintKind::Preorder,
            other => {
                return Err(MclError::Parse {
                    span: kspan,
                    message: format!(
                        "expected exclude/depend/preorder constraint, found `{other}`"
                    ),
                });
            }
        };
        self.expect(TokenKind::LParen)?;
        let (a, _) = self.ident()?;
        self.expect(TokenKind::Comma)?;
        let (b, _) = self.ident()?;
        self.expect(TokenKind::RParen)?;
        let end = self.expect(TokenKind::Semi)?.span;
        Ok(ConstraintDecl {
            kind,
            a,
            b,
            span: start.merge(end),
        })
    }
}

/// Raw attribute value as parsed.
#[derive(Debug, Clone, PartialEq)]
enum AttrValue {
    Str(String),
    Int(u64),
    Word(String),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_streamlet_def() {
        let s = parse(
            r#"
            streamlet text_compress {
                port {
                    in pi : text;
                    out po : text/compressed;
                }
                attribute {
                    type = STATELESS;
                    library = "builtin/text_compress";
                    description = "a generic text compressor";
                }
            }
            "#,
        )
        .unwrap();
        assert_eq!(s.streamlets.len(), 1);
        let def = &s.streamlets[0];
        assert_eq!(def.name, "text_compress");
        assert_eq!(def.ports.len(), 2);
        assert_eq!(def.ports[0].dir, PortDir::In);
        assert_eq!(def.ports[0].ty, MimeType::top_level("text"));
        assert_eq!(def.ports[1].ty, MimeType::new("text", "compressed"));
        assert_eq!(def.statefulness, Statefulness::Stateless);
        assert_eq!(def.library, "builtin/text_compress");
    }

    #[test]
    fn parses_channel_def_with_attrs() {
        let s = parse(
            r#"
            channel largeBufferChan {
                port { in ci : image; out co : image; }
                attribute { type = ASYNC; category = BK; buffer = 1024; }
            }
            "#,
        )
        .unwrap();
        let c = &s.channels[0];
        assert_eq!(c.kind, ChannelKind::Async);
        assert_eq!(c.category, ChannelCategory::BK);
        assert_eq!(c.buffer_kb, 1024);
    }

    #[test]
    fn channel_buffer_defaults_to_100kb() {
        let s = parse("channel c { port { in i : */*; out o : */*; } }").unwrap();
        assert_eq!(s.channels[0].buffer_kb, 100);
    }

    #[test]
    fn parses_figure_4_8_stream() {
        // The streamApp composition script of Figure 4-8 (declarations of
        // the streamlet definitions elided — resolution is the compiler's
        // job, not the parser's).
        let s = parse(
            r#"
            stream streamApp {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                channel c1, c2, c3 = new channel (largeBufferChan);
                connect (s1.po1, s2.pi, c1);
                connect (s1.po2, s2.pi);
                when (LOW_ENERGY) {
                    connect (s2.po, s1.pi);
                }
                when (LOW_GRAY) {
                    disconnect (s2.po, s1.pi1);
                    connect (s2.po, s1.pi, c2);
                }
            }
            "#,
        )
        .unwrap();
        let st = &s.streams[0];
        assert_eq!(st.name, "streamApp");
        assert!(!st.is_main);
        assert_eq!(st.body.len(), 7);
        match &st.body[2] {
            StreamStmt::NewChannel { names, def, .. } => {
                assert_eq!(names, &["c1", "c2", "c3"]);
                assert_eq!(def, "largeBufferChan");
            }
            other => panic!("expected NewChannel, got {other:?}"),
        }
        match &st.body[5] {
            StreamStmt::When { event, body, .. } => {
                assert_eq!(event, "LOW_ENERGY");
                assert_eq!(body.len(), 1);
            }
            other => panic!("expected When, got {other:?}"),
        }
    }

    #[test]
    fn parses_main_marker() {
        let s = parse("main stream m { }").unwrap();
        assert!(s.streams[0].is_main);
    }

    #[test]
    fn parses_connect_with_explicit_channel() {
        let s = parse("stream x { connect (a.o, b.i, ch); }").unwrap();
        match &s.streams[0].body[0] {
            StreamStmt::Connect { channel, .. } => assert_eq!(channel.as_deref(), Some("ch")),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_reconfig_primitives() {
        let s = parse(
            "stream x { insert (a.o, b.i, n); replace (old1, new1); \
             remove-streamlet (a); remove-channel (c); disconnectall (b); }",
        )
        .unwrap();
        assert_eq!(s.streams[0].body.len(), 5);
    }

    #[test]
    fn parses_constraints() {
        let s =
            parse("constraint exclude(a, b); constraint depend(c, d); constraint preorder(e, f);")
                .unwrap();
        assert_eq!(s.constraints.len(), 3);
        assert_eq!(s.constraints[0].kind, ConstraintKind::Exclude);
        assert_eq!(s.constraints[1].kind, ConstraintKind::Depend);
        assert_eq!(s.constraints[2].kind, ConstraintKind::Preorder);
    }

    #[test]
    fn parses_type_lattice_decl() {
        let s = parse("type text/richtext under text/plain;").unwrap();
        assert_eq!(s.type_decls[0].child, MimeType::new("text", "richtext"));
        assert_eq!(s.type_decls[0].parent, MimeType::new("text", "plain"));
    }

    #[test]
    fn parses_wildcard_types() {
        let s = parse("streamlet a { port { in i : */*; out o : image/*; } }").unwrap();
        assert!(s.streamlets[0].ports[0].ty.is_any());
        assert_eq!(s.streamlets[0].ports[1].ty, MimeType::top_level("image"));
    }

    #[test]
    fn parses_hyphenated_and_dotted_subtypes() {
        let s = parse(
            "streamlet a { port { in i : application/octet-stream; \
             out o : application/vnd.ms-excel; } }",
        )
        .unwrap();
        assert_eq!(
            s.streamlets[0].ports[0].ty,
            MimeType::new("application", "octet-stream")
        );
        assert_eq!(
            s.streamlets[0].ports[1].ty,
            MimeType::new("application", "vnd.ms-excel")
        );
    }

    #[test]
    fn rejects_bad_direction() {
        let err = parse("streamlet a { port { sideways x : text; } }").unwrap_err();
        assert!(err.to_string().contains("in"));
    }

    #[test]
    fn rejects_bad_statefulness() {
        let err = parse("streamlet a { port { in i : text; } attribute { type = SOMETIMES; } }")
            .unwrap_err();
        assert!(matches!(err, MclError::Attribute { .. }));
    }

    #[test]
    fn rejects_unknown_statement() {
        assert!(parse("stream x { teleport (a, b); }").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse("stream x { connect (a.o, b.i) }").is_err());
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("stream x { } 42").is_err());
    }

    #[test]
    fn error_carries_position() {
        let err = parse("stream x {\n  connect (a.o b.i);\n}").unwrap_err();
        let span = err.span().unwrap();
        assert_eq!(span.line, 2);
    }
}
