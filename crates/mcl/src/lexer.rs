//! The MCL lexer.
//!
//! MCL's surface syntax (Figures 4-2 through 4-5) is C-flavoured: braces,
//! semicolons, `//` and `/* */` comments. Identifiers may contain `-` and
//! `/` *inside* MIME type positions, but those are lexed contextually by the
//! parser from primitive tokens, so the lexer stays simple:
//!
//! * identifiers/keywords: `[A-Za-z_][A-Za-z0-9_]*`
//! * hyphenated keywords `new-streamlet`, `new-channel`, `remove-streamlet`,
//!   `remove-channel`, `disconnectall` are recognized as single tokens
//!   (hyphen joins two identifier-ish parts when the pair is a keyword);
//! * integers, strings (`"…"`), punctuation `{ } ( ) , ; : . = / *`.

use crate::error::{MclError, Span};
use std::fmt;

/// A lexical token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

/// The kinds of MCL tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are distinguished by the parser).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Double-quoted string literal (contents, unescaped).
    Str(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `/`
    Slash,
    /// `*`
    Star,
    /// `-` (only survives when not folded into a hyphenated keyword)
    Dash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "`{s}`"),
            TokenKind::Int(n) => write!(f, "integer `{n}`"),
            TokenKind::Str(_) => write!(f, "string literal"),
            TokenKind::LBrace => write!(f, "`{{`"),
            TokenKind::RBrace => write!(f, "`}}`"),
            TokenKind::LParen => write!(f, "`(`"),
            TokenKind::RParen => write!(f, "`)`"),
            TokenKind::Comma => write!(f, "`,`"),
            TokenKind::Semi => write!(f, "`;`"),
            TokenKind::Colon => write!(f, "`:`"),
            TokenKind::Dot => write!(f, "`.`"),
            TokenKind::Eq => write!(f, "`=`"),
            TokenKind::Slash => write!(f, "`/`"),
            TokenKind::Star => write!(f, "`*`"),
            TokenKind::Dash => write!(f, "`-`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// Hyphenated multi-word keywords folded into a single identifier token.
const HYPHEN_KEYWORDS: &[&str] = &[
    "new-streamlet",
    "new-channel",
    "remove-streamlet",
    "remove-channel",
];

/// Lexes a full source string into tokens (ending with [`TokenKind::Eof`]).
pub fn lex(source: &str) -> Result<Vec<Token>, MclError> {
    Lexer::new(source).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(source: &'a str) -> Self {
        Lexer {
            src: source.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn run(mut self) -> Result<Vec<Token>, MclError> {
        let mut tokens = Vec::new();
        loop {
            self.skip_trivia()?;
            let start = self.mark();
            let Some(c) = self.peek() else {
                tokens.push(Token {
                    kind: TokenKind::Eof,
                    span: self.span_from(start),
                });
                break;
            };
            let kind = match c {
                b'{' => self.one(TokenKind::LBrace),
                b'}' => self.one(TokenKind::RBrace),
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b',' => self.one(TokenKind::Comma),
                b';' => self.one(TokenKind::Semi),
                b':' => self.one(TokenKind::Colon),
                b'.' => self.one(TokenKind::Dot),
                b'=' => self.one(TokenKind::Eq),
                b'/' => self.one(TokenKind::Slash),
                b'*' => self.one(TokenKind::Star),
                b'-' => self.one(TokenKind::Dash),
                b'"' => self.string(start)?,
                b'0'..=b'9' => self.number(),
                c if c.is_ascii_alphabetic() || c == b'_' => self.ident(),
                other => {
                    return Err(MclError::Lex {
                        span: self.span_from(start),
                        message: format!("unexpected character `{}`", other as char),
                    });
                }
            };
            let span = self.span_from(start);
            tokens.push(Token { kind, span });
        }
        Ok(fold_hyphen_keywords(tokens))
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    /// True when the byte just before the cursor belongs to a MIME type
    /// (`text/*`, `*/*`): there, `/*` is a slash + wildcard, not a comment.
    fn after_type_char(&self) -> bool {
        self.pos
            .checked_sub(1)
            .and_then(|p| self.src.get(p))
            .is_some_and(|&c| c.is_ascii_alphanumeric() || c == b'_' || c == b'*')
    }

    fn mark(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, (start, line, col): (usize, u32, u32)) -> Span {
        Span::new(start, self.pos, line, col)
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.bump();
        kind
    }

    fn skip_trivia(&mut self) -> Result<(), MclError> {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b'/') if self.peek2() == Some(b'/') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some(b'/') if self.peek2() == Some(b'*') && !self.after_type_char() => {
                    let start = self.mark();
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (Some(_), _) => {
                                self.bump();
                            }
                            (None, _) => {
                                return Err(MclError::Lex {
                                    span: self.span_from(start),
                                    message: "unterminated block comment".into(),
                                });
                            }
                        }
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn string(&mut self, start: (usize, u32, u32)) -> Result<TokenKind, MclError> {
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(TokenKind::Str(out)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    other => {
                        return Err(MclError::Lex {
                            span: self.span_from(start),
                            message: format!(
                                "unknown escape `\\{}`",
                                other.map(|c| c as char).unwrap_or('∅')
                            ),
                        });
                    }
                },
                Some(b'\n') | None => {
                    return Err(MclError::Lex {
                        span: self.span_from(start),
                        message: "unterminated string literal".into(),
                    });
                }
                Some(c) => out.push(c as char),
            }
        }
    }

    fn number(&mut self) -> TokenKind {
        let mut n: u64 = 0;
        while let Some(c) = self.peek() {
            if !c.is_ascii_digit() {
                break;
            }
            n = n.saturating_mul(10).saturating_add((c - b'0') as u64);
            self.bump();
        }
        TokenKind::Int(n)
    }

    fn ident(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' {
                s.push(c as char);
                self.bump();
            } else {
                break;
            }
        }
        TokenKind::Ident(s)
    }
}

/// Folds `ident - ident` triples into single identifiers when the joined
/// word is a hyphenated keyword (so `new-streamlet` is one token, while
/// `a - b` elsewhere remains an error for the parser to report).
fn fold_hyphen_keywords(tokens: Vec<Token>) -> Vec<Token> {
    let mut out: Vec<Token> = Vec::with_capacity(tokens.len());
    let mut i = 0;
    while i < tokens.len() {
        if i + 2 < tokens.len() {
            if let (TokenKind::Ident(a), TokenKind::Dash, TokenKind::Ident(b)) =
                (&tokens[i].kind, &tokens[i + 1].kind, &tokens[i + 2].kind)
            {
                // Only fold when tokens are adjacent (no space), which we
                // approximate by byte adjacency of spans.
                let adjacent = tokens[i].span.end == tokens[i + 1].span.start
                    && tokens[i + 1].span.end == tokens[i + 2].span.start;
                let joined = format!("{a}-{b}");
                if adjacent && HYPHEN_KEYWORDS.contains(&joined.as_str()) {
                    out.push(Token {
                        kind: TokenKind::Ident(joined),
                        span: tokens[i].span.merge(tokens[i + 2].span),
                    });
                    i += 3;
                    continue;
                }
            }
        }
        out.push(tokens[i].clone());
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_punctuation() {
        assert_eq!(
            kinds("{ } ( ) , ; : . = / *"),
            vec![
                TokenKind::LBrace,
                TokenKind::RBrace,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Semi,
                TokenKind::Colon,
                TokenKind::Dot,
                TokenKind::Eq,
                TokenKind::Slash,
                TokenKind::Star,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            kinds("stream s1 1024"),
            vec![
                TokenKind::Ident("stream".into()),
                TokenKind::Ident("s1".into()),
                TokenKind::Int(1024),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn folds_hyphen_keywords() {
        assert_eq!(
            kinds("new-streamlet"),
            vec![TokenKind::Ident("new-streamlet".into()), TokenKind::Eof]
        );
        assert_eq!(
            kinds("remove-channel"),
            vec![TokenKind::Ident("remove-channel".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn does_not_fold_spaced_dash() {
        let k = kinds("new - streamlet");
        assert!(k.contains(&TokenKind::Dash));
    }

    #[test]
    fn does_not_fold_non_keyword() {
        let k = kinds("img-down");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("img".into()),
                TokenKind::Dash,
                TokenKind::Ident("down".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_strings_with_escapes() {
        assert_eq!(
            kinds(r#""general/streamApp" "a\"b\n""#),
            vec![
                TokenKind::Str("general/streamApp".into()),
                TokenKind::Str("a\"b\n".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
        assert!(lex("\"newline\nin string\"").is_err());
    }

    #[test]
    fn skips_line_and_block_comments() {
        let k = kinds("a // comment\nb /* multi\nline */ c");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn wildcard_types_are_not_comments() {
        // `*/*` and `text/*` must lex as type tokens, not comment openers.
        assert_eq!(
            kinds("*/*"),
            vec![
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Star,
                TokenKind::Eof
            ]
        );
        assert_eq!(
            kinds("text/* ;"),
            vec![
                TokenKind::Ident("text".into()),
                TokenKind::Slash,
                TokenKind::Star,
                TokenKind::Semi,
                TokenKind::Eof
            ]
        );
        // A spaced `/*` still opens a comment.
        assert_eq!(kinds("a /* c */ b").len(), 3);
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(lex("/* never ends").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        let err = lex("€").unwrap_err();
        assert!(matches!(err, MclError::Lex { .. }));
    }

    #[test]
    fn tracks_line_and_column() {
        let toks = lex("a\n  b").unwrap();
        assert_eq!(toks[0].span.line, 1);
        assert_eq!(toks[0].span.col, 1);
        assert_eq!(toks[1].span.line, 2);
        assert_eq!(toks[1].span.col, 3);
    }
}
