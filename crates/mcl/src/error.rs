//! Diagnostics with source positions for the MCL pipeline.

use std::fmt;

/// A half-open byte range into the source, with line/column of its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
    /// 1-based column of `start`.
    pub col: u32,
}

impl Span {
    /// A span covering `start..end` at the given position.
    pub fn new(start: usize, end: usize, line: u32, col: u32) -> Self {
        Span {
            start,
            end,
            line,
            col,
        }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        let (first, last) = if self.start <= other.start {
            (self, other)
        } else {
            (other, self)
        };
        Span {
            start: first.start,
            end: last.end.max(first.end),
            line: first.line,
            col: first.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Everything that can go wrong between source text and a configuration
/// table. Compilation reports the *first* error encountered, as the thesis's
/// compiler does ("incompatible connections in the script are returned by
/// the compiler with a detailed error message", §3.3.6).
#[derive(Debug, Clone, PartialEq)]
pub enum MclError {
    /// Lexical error (bad character, unterminated string…).
    Lex { span: Span, message: String },
    /// Syntax error.
    Parse { span: Span, message: String },
    /// An undefined name was referenced.
    Undefined {
        span: Span,
        kind: &'static str,
        name: String,
    },
    /// A name was defined twice ("name clashes between distinct streamlets
    /// and streams are disallowed", §5.1).
    Duplicate {
        span: Span,
        kind: &'static str,
        name: String,
    },
    /// §4.4.1 restriction 2: source must specialize sink.
    Incompatible {
        span: Span,
        source_port: String,
        source_type: String,
        sink_port: String,
        sink_type: String,
    },
    /// §4.4.1 restriction 1: streamlet ports only connect to channel ports.
    IllegalEndpoints { span: Span, message: String },
    /// A port was referenced with the wrong direction (e.g. connecting two
    /// input ports).
    Direction { span: Span, message: String },
    /// Recursive composition expanded into itself (§4.4.2 must terminate).
    RecursiveCycle { span: Span, chain: Vec<String> },
    /// A declared attribute had an invalid value.
    Attribute { span: Span, message: String },
    /// A semantic analysis rejected the composition (Ch. 5).
    Semantic { message: String },
}

impl MclError {
    /// The source span, when the error is positional.
    pub fn span(&self) -> Option<Span> {
        match self {
            MclError::Lex { span, .. }
            | MclError::Parse { span, .. }
            | MclError::Undefined { span, .. }
            | MclError::Duplicate { span, .. }
            | MclError::Incompatible { span, .. }
            | MclError::IllegalEndpoints { span, .. }
            | MclError::Direction { span, .. }
            | MclError::RecursiveCycle { span, .. }
            | MclError::Attribute { span, .. } => Some(*span),
            MclError::Semantic { .. } => None,
        }
    }
}

impl fmt::Display for MclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MclError::Lex { span, message } => write!(f, "{span}: lexical error: {message}"),
            MclError::Parse { span, message } => write!(f, "{span}: syntax error: {message}"),
            MclError::Undefined { span, kind, name } => {
                write!(f, "{span}: undefined {kind} `{name}`")
            }
            MclError::Duplicate { span, kind, name } => {
                write!(f, "{span}: duplicate {kind} `{name}`")
            }
            MclError::Incompatible {
                span,
                source_port,
                source_type,
                sink_port,
                sink_type,
            } => write!(
                f,
                "{span}: incompatible connection: source `{source_port}` of type \
                 `{source_type}` is not a subtype of sink `{sink_port}` of type `{sink_type}`"
            ),
            MclError::IllegalEndpoints { span, message } => {
                write!(f, "{span}: illegal connection endpoints: {message}")
            }
            MclError::Direction { span, message } => {
                write!(f, "{span}: port direction error: {message}")
            }
            MclError::RecursiveCycle { span, chain } => write!(
                f,
                "{span}: recursive composition cycle: {}",
                chain.join(" -> ")
            ),
            MclError::Attribute { span, message } => {
                write!(f, "{span}: invalid attribute: {message}")
            }
            MclError::Semantic { message } => write!(f, "semantic error: {message}"),
        }
    }
}

impl std::error::Error for MclError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(5, 10, 1, 6);
        let b = Span::new(20, 25, 2, 3);
        let m = a.merge(b);
        assert_eq!(m.start, 5);
        assert_eq!(m.end, 25);
        assert_eq!(m.line, 1);
        // Merge is symmetric on coverage.
        let m2 = b.merge(a);
        assert_eq!(m2.start, 5);
        assert_eq!(m2.end, 25);
    }

    #[test]
    fn display_includes_position_and_names() {
        let e = MclError::Undefined {
            span: Span::new(0, 3, 3, 7),
            kind: "streamlet",
            name: "bogus".into(),
        };
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("bogus"));
        assert!(s.contains("streamlet"));
    }

    #[test]
    fn incompatible_message_names_both_ports() {
        let e = MclError::Incompatible {
            span: Span::default(),
            source_port: "s1.po".into(),
            source_type: "image/gif".into(),
            sink_port: "s2.pi".into(),
            sink_type: "text/plain".into(),
        };
        let s = e.to_string();
        assert!(s.contains("s1.po") && s.contains("s2.pi"));
        assert!(s.contains("image/gif") && s.contains("text/plain"));
    }

    #[test]
    fn semantic_error_has_no_span() {
        assert!(MclError::Semantic {
            message: "loop".into()
        }
        .span()
        .is_none());
    }
}
