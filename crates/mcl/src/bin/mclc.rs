//! `mclc` — the MCL command-line compiler and analyzer.
//!
//! ```text
//! mclc check  app.mcl          # parse + compile (type compatibility)
//! mclc analyze app.mcl         # + the Chapter-5 semantic analyses
//! mclc table  app.mcl [stream] # dump the configuration table
//! mclc dot    app.mcl [stream] # Graphviz rendering of the composition
//! ```
//!
//! Exit code 0 = consistent; 1 = errors/violations; 2 = usage.

use mobigate_mcl::analysis::analyze;
use mobigate_mcl::compile::compile;
use mobigate_mcl::config::{ConfigTable, Program};
use mobigate_mcl::model::verify_program;
use mobigate_mime::TypeRegistry;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, path, stream_arg) = match args.as_slice() {
        [cmd, path] => (cmd.as_str(), path.as_str(), None),
        [cmd, path, stream] => (cmd.as_str(), path.as_str(), Some(stream.as_str())),
        _ => {
            eprintln!("usage: mclc <check|analyze|table|dot> <file.mcl> [stream]");
            return ExitCode::from(2);
        }
    };

    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("mclc: cannot read `{path}`: {e}");
            return ExitCode::from(2);
        }
    };

    let program = match compile(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}:{e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "check" => check(&program),
        "analyze" => run_analyze(&program, stream_arg),
        "table" => dump_table(&program, stream_arg),
        "dot" => dump_dot(&program, stream_arg),
        other => {
            eprintln!("mclc: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn pick_stream<'p>(program: &'p Program, arg: Option<&str>) -> Option<(&'p str, &'p ConfigTable)> {
    let name = arg
        .map(str::to_string)
        .or_else(|| program.main_stream.clone())
        .or_else(|| program.streams.keys().next().cloned())?;
    program
        .streams
        .get_key_value(&name)
        .map(|(k, v)| (k.as_str(), v))
}

fn check(program: &Program) -> ExitCode {
    let violations = verify_program(program, &TypeRegistry::standard());
    for (stream, v) in &violations {
        eprintln!("{stream}: {v}");
    }
    println!(
        "{} streamlet definition(s), {} channel definition(s), {} stream(s){}",
        program.streamlet_defs.len(),
        program.channel_defs.len(),
        program.streams.len(),
        program
            .main_stream
            .as_deref()
            .map(|m| format!(", main = `{m}`"))
            .unwrap_or_default()
    );
    if violations.is_empty() {
        println!("ok");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run_analyze(program: &Program, stream: Option<&str>) -> ExitCode {
    let mut failed = false;
    let targets: Vec<String> = match stream {
        Some(s) => vec![s.to_string()],
        None => program.streams.keys().cloned().collect(),
    };
    for name in targets {
        match analyze(program, &name) {
            Some(report) => {
                println!("--- {name} ---");
                print!("{}", report.summary());
                failed |= !report.is_consistent();
            }
            None => {
                eprintln!("mclc: no stream `{name}`");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn dump_table(program: &Program, stream: Option<&str>) -> ExitCode {
    let Some((name, table)) = pick_stream(program, stream) else {
        eprintln!("mclc: no stream to dump");
        return ExitCode::FAILURE;
    };
    println!("stream {name}");
    println!("  streamlets:");
    for r in &table.streamlets {
        println!(
            "    {:<24} def={:<20} {}",
            r.name,
            r.def,
            if r.initial {
                "initial"
            } else {
                "lazy (when-block)"
            }
        );
    }
    println!("  channels:");
    for c in &table.channels {
        println!(
            "    {:<24} {:?} {:?} buffer={}KB type={}",
            c.name, c.spec.kind, c.spec.category, c.spec.buffer_kb, c.spec.ty
        );
    }
    println!("  connections:");
    for c in &table.connections {
        println!(
            "    {}.{} -> {}.{}  via {}",
            c.from.0, c.from.1, c.to.0, c.to.1, c.channel
        );
    }
    println!("  exported inputs:");
    for (i, p, t) in &table.exported_inputs {
        println!("    {i}.{p} : {t}");
    }
    println!("  exported outputs:");
    for (i, p, t) in &table.exported_outputs {
        println!("    {i}.{p} : {t}");
    }
    if !table.when_rules.is_empty() {
        println!("  when rules:");
        for r in &table.when_rules {
            println!("    on {}: {} action(s)", r.event, r.actions.len());
        }
    }
    ExitCode::SUCCESS
}

fn dump_dot(program: &Program, stream: Option<&str>) -> ExitCode {
    let Some((name, table)) = pick_stream(program, stream) else {
        eprintln!("mclc: no stream to render");
        return ExitCode::FAILURE;
    };
    println!("digraph \"{name}\" {{");
    println!("  rankdir=LR;");
    println!("  node [shape=box, style=rounded];");
    for r in &table.streamlets {
        let style = if r.initial { "" } else { ", style=dashed" };
        println!(
            "  \"{}\" [label=\"{}\\n({})\"{}];",
            r.name, r.name, r.def, style
        );
    }
    for c in &table.connections {
        println!(
            "  \"{}\" -> \"{}\" [label=\"{}\"];",
            c.from.0, c.to.0, c.channel
        );
    }
    for (i, p, _) in &table.exported_inputs {
        println!("  \"in:{p}\" [shape=point]; \"in:{p}\" -> \"{i}\";");
    }
    for (i, p, _) in &table.exported_outputs {
        println!("  \"out:{p}\" [shape=point]; \"{i}\" -> \"out:{p}\";");
    }
    println!("}}");
    ExitCode::SUCCESS
}
