//! The §5.1 Z schemas as checkable Rust structures.
//!
//! The thesis formalizes MCL's elements as Z schemas whose predicates
//! ("enforced constraints") define well-formedness:
//!
//! * **Streamlet** — `inputs ∩ outputs = ∅` and
//!   `dom port-type = inputs ∪ outputs` (every port carries a type);
//! * **Channel** — `sink ≠ source`;
//! * **Stream** — global name uniqueness across streamlets and channels,
//!   every channel endpoint is a declared port of a member streamlet, and
//!   the port type of a connected streamlet is compatible with the
//!   intermediate channel's type;
//! * **Composite streamlet** — the composite's ports are exactly the inner
//!   ports not satisfied by any inner connection (§5.1.4).
//!
//! [`verify_table`] replays these predicates against a *compiled*
//! [`ConfigTable`], so the compiler's output is machine-checked against the
//! formal model — the Rust stand-in for running the Z schemas through
//! Z/EVES (§5.2, DESIGN.md §3).

use crate::config::{ConfigTable, Program};
use mobigate_mime::{MimeType, TypeRegistry};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A violated schema predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelViolation {
    /// Streamlet schema: a port appears as both input and output.
    PortsNotDisjoint { streamlet: String, port: String },
    /// Stream schema: two entities share a name (`ENTITY` is a set of
    /// global names — "name clashes … are disallowed").
    NameClash { name: String },
    /// Stream schema: a connection references a non-member or an
    /// undeclared port.
    DanglingEndpoint { endpoint: String },
    /// Stream schema: `port-type` incompatible with the channel type.
    TypeMismatch {
        endpoint: String,
        port_type: String,
        channel_type: String,
    },
    /// Channel schema: `sink = source`.
    SelfChannel { channel: String },
    /// Composite schema: an exported port is actually satisfied by an
    /// inner connection (or vice versa).
    BadExport {
        endpoint: String,
        reason: &'static str,
    },
}

impl fmt::Display for ModelViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelViolation::PortsNotDisjoint { streamlet, port } => {
                write!(
                    f,
                    "streamlet `{streamlet}`: port `{port}` is both input and output"
                )
            }
            ModelViolation::NameClash { name } => write!(f, "name clash on `{name}`"),
            ModelViolation::DanglingEndpoint { endpoint } => {
                write!(
                    f,
                    "connection endpoint `{endpoint}` is not a declared member port"
                )
            }
            ModelViolation::TypeMismatch {
                endpoint,
                port_type,
                channel_type,
            } => write!(
                f,
                "`{endpoint}` of type `{port_type}` incompatible with channel type \
                 `{channel_type}`"
            ),
            ModelViolation::SelfChannel { channel } => {
                write!(f, "channel `{channel}` connects a port to itself")
            }
            ModelViolation::BadExport { endpoint, reason } => {
                write!(f, "exported port `{endpoint}` violates §5.1.4: {reason}")
            }
        }
    }
}

/// Verifies the §5.1 schema predicates against a compiled table.
///
/// Returns every violation found (empty = the table satisfies the formal
/// model). The compiler is expected to never produce violations — this
/// function exists so that property tests and downstream tools can check
/// that expectation mechanically.
pub fn verify_table(
    table: &ConfigTable,
    program: &Program,
    registry: &TypeRegistry,
) -> Vec<ModelViolation> {
    let mut violations = Vec::new();

    // --- Streamlet schema: inputs ∩ outputs = ∅ (checked per definition).
    for spec in program.streamlet_defs.values() {
        let ins: BTreeSet<&String> = spec.inputs.iter().map(|(n, _)| n).collect();
        for (out, _) in &spec.outputs {
            if ins.contains(out) {
                violations.push(ModelViolation::PortsNotDisjoint {
                    streamlet: spec.name.clone(),
                    port: out.clone(),
                });
            }
        }
    }

    // --- Stream schema: ENTITY uniqueness across streamlets and channels.
    let mut names: HashSet<&str> = HashSet::new();
    for row in &table.streamlets {
        if !names.insert(&row.name) {
            violations.push(ModelViolation::NameClash {
                name: row.name.clone(),
            });
        }
    }
    for row in &table.channels {
        if !names.insert(&row.name) {
            violations.push(ModelViolation::NameClash {
                name: row.name.clone(),
            });
        }
    }

    // --- Connections: endpoints exist, directions respected, types
    // compatible with the intermediate channel.
    let port_type = |inst: &str, port: &str, output: bool| -> Option<MimeType> {
        let row = table.instance(inst)?;
        let spec = program.streamlet_defs.get(&row.def)?;
        let list = if output { &spec.outputs } else { &spec.inputs };
        list.iter().find(|(n, _)| n == port).map(|(_, t)| t.clone())
    };
    for c in &table.connections {
        if c.from == c.to {
            violations.push(ModelViolation::SelfChannel {
                channel: c.channel.clone(),
            });
        }
        let chan_ty = table.channel(&c.channel).map(|r| r.spec.ty.clone());
        match (port_type(&c.from.0, &c.from.1, true), &chan_ty) {
            (Some(src_ty), Some(ct)) if !registry.connectable(&src_ty, ct) => {
                violations.push(ModelViolation::TypeMismatch {
                    endpoint: format!("{}.{}", c.from.0, c.from.1),
                    port_type: src_ty.to_string(),
                    channel_type: ct.to_string(),
                });
            }
            (None, _) => violations.push(ModelViolation::DanglingEndpoint {
                endpoint: format!("{}.{}", c.from.0, c.from.1),
            }),
            _ => {}
        }
        if port_type(&c.to.0, &c.to.1, false).is_none() {
            violations.push(ModelViolation::DanglingEndpoint {
                endpoint: format!("{}.{}", c.to.0, c.to.1),
            });
        }
    }

    // --- Composite schema (§5.1.4): exports are exactly the unsatisfied
    // initial ports.
    let connected_in: HashSet<(&str, &str)> = table
        .connections
        .iter()
        .map(|c| (c.to.0.as_str(), c.to.1.as_str()))
        .collect();
    let connected_out: HashSet<(&str, &str)> = table
        .connections
        .iter()
        .map(|c| (c.from.0.as_str(), c.from.1.as_str()))
        .collect();
    for (inst, port, _) in &table.exported_inputs {
        if connected_in.contains(&(inst.as_str(), port.as_str())) {
            violations.push(ModelViolation::BadExport {
                endpoint: format!("{inst}.{port}"),
                reason: "exported input is satisfied by an inner connection",
            });
        }
    }
    for (inst, port, _) in &table.exported_outputs {
        if connected_out.contains(&(inst.as_str(), port.as_str())) {
            violations.push(ModelViolation::BadExport {
                endpoint: format!("{inst}.{port}"),
                reason: "exported output is satisfied by an inner connection",
            });
        }
    }
    // Completeness: every unsatisfied initial port must be exported.
    let exported_in: HashSet<(&str, &str)> = table
        .exported_inputs
        .iter()
        .map(|(i, p, _)| (i.as_str(), p.as_str()))
        .collect();
    let exported_out: HashSet<(&str, &str)> = table
        .exported_outputs
        .iter()
        .map(|(i, p, _)| (i.as_str(), p.as_str()))
        .collect();
    for row in table.initial_instances() {
        let Some(spec) = program.streamlet_defs.get(&row.def) else {
            continue;
        };
        for (port, _) in &spec.inputs {
            let key = (row.name.as_str(), port.as_str());
            if !connected_in.contains(&key) && !exported_in.contains(&key) {
                violations.push(ModelViolation::BadExport {
                    endpoint: format!("{}.{port}", row.name),
                    reason: "unsatisfied input missing from the export set",
                });
            }
        }
        for (port, _) in &spec.outputs {
            let key = (row.name.as_str(), port.as_str());
            if !connected_out.contains(&key) && !exported_out.contains(&key) {
                violations.push(ModelViolation::BadExport {
                    endpoint: format!("{}.{port}", row.name),
                    reason: "unsatisfied output missing from the export set",
                });
            }
        }
    }

    violations
}

/// Verifies every stream of a compiled program. Returns `(stream, violation)`
/// pairs.
pub fn verify_program(program: &Program, registry: &TypeRegistry) -> Vec<(String, ModelViolation)> {
    let mut out = Vec::new();
    for (name, table) in &program.streams {
        for v in verify_table(table, program, registry) {
            out.push((name.clone(), v));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::config::ConnectionRow;

    fn registry() -> TypeRegistry {
        TypeRegistry::standard()
    }

    const OK: &str = r#"
        streamlet a { port { in pi : text; out po : text/plain; } }
        streamlet b { port { in pi : text; out po : text; } }
        main stream app {
            streamlet x = new-streamlet (a);
            streamlet y = new-streamlet (b);
            connect (x.po, y.pi);
        }
    "#;

    #[test]
    fn compiled_output_satisfies_the_model() {
        let p = compile(OK).unwrap();
        assert!(verify_program(&p, &registry()).is_empty());
    }

    #[test]
    fn figure_4_8_satisfies_the_model() {
        // The full distillation example from the compile test suite.
        let src = r#"
            streamlet switch {
                port { in pi : */*; out po1 : image; out po2 : application/postscript; }
            }
            streamlet img_down_sample { port { in pi : image; out po : image; } }
            streamlet postscript2text {
                port { in pi : application/postscript; out po : text/richtext; }
            }
            streamlet text_compress { port { in pi : text; out po : text; } }
            streamlet merge { port { in pi1 : image; in pi2 : text; out po : multipart/mixed; } }
            main stream streamApp {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                streamlet s5 = new-streamlet (postscript2text);
                streamlet s6 = new-streamlet (text_compress);
                streamlet s7 = new-streamlet (merge);
                connect (s1.po1, s2.pi);
                connect (s1.po2, s5.pi);
                connect (s2.po, s7.pi1);
                connect (s5.po, s6.pi);
                connect (s6.po, s7.pi2);
            }
        "#;
        let p = compile(src).unwrap();
        assert!(verify_program(&p, &registry()).is_empty());
    }

    #[test]
    fn detects_injected_dangling_endpoint() {
        let p = compile(OK).unwrap();
        let mut table = p.main().unwrap().clone();
        table.connections.push(ConnectionRow {
            from: ("ghost".into(), "po".into()),
            to: ("y".into(), "pi".into()),
            channel: table.channels[0].name.clone(),
        });
        let v = verify_table(&table, &p, &registry());
        assert!(
            v.iter()
                .any(|v| matches!(v, ModelViolation::DanglingEndpoint { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_injected_name_clash() {
        let p = compile(OK).unwrap();
        let mut table = p.main().unwrap().clone();
        let dup = table.streamlets[0].clone();
        table.streamlets.push(dup);
        let v = verify_table(&table, &p, &registry());
        assert!(v
            .iter()
            .any(|v| matches!(v, ModelViolation::NameClash { .. })));
    }

    #[test]
    fn detects_injected_type_mismatch() {
        let p = compile(OK).unwrap();
        let mut table = p.main().unwrap().clone();
        // Corrupt the channel type to something the source can't feed.
        table.channels[0].spec.ty = "image/gif".parse().unwrap();
        let v = verify_table(&table, &p, &registry());
        assert!(
            v.iter()
                .any(|v| matches!(v, ModelViolation::TypeMismatch { .. })),
            "{v:?}"
        );
    }

    #[test]
    fn detects_injected_self_channel() {
        let p = compile(OK).unwrap();
        let mut table = p.main().unwrap().clone();
        table.connections[0].to = table.connections[0].from.clone();
        let v = verify_table(&table, &p, &registry());
        assert!(v
            .iter()
            .any(|v| matches!(v, ModelViolation::SelfChannel { .. })));
    }

    #[test]
    fn detects_broken_export_sets() {
        let p = compile(OK).unwrap();
        let mut table = p.main().unwrap().clone();
        // Remove a legitimate export: completeness now fails.
        table.exported_inputs.clear();
        let v = verify_table(&table, &p, &registry());
        assert!(v
            .iter()
            .any(|v| matches!(v, ModelViolation::BadExport { reason, .. }
                if reason.contains("missing"))));
    }

    #[test]
    fn violations_display_readably() {
        let v = ModelViolation::TypeMismatch {
            endpoint: "x.po".into(),
            port_type: "text/plain".into(),
            channel_type: "image/gif".into(),
        };
        let s = v.to_string();
        assert!(s.contains("x.po") && s.contains("image/gif"));
    }
}
