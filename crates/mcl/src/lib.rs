//! MCL — the MobiGATE Coordination Language.
//!
//! MCL (thesis chapters 4 and 5) is a declarative coordination language that
//! describes applications as networks of **streamlets** connected by
//! **channels** inside **streams**. This crate implements the complete
//! language pipeline:
//!
//! ```text
//!  source ──lexer──▶ tokens ──parser──▶ AST ──compiler──▶ ConfigTable
//!                                               │
//!                                               └─▶ semantic analyses (Ch.5)
//! ```
//!
//! * [`lexer`] / [`parser`] / [`ast`] — the front end (Figures 4-2..4-5);
//! * [`compile`] — name resolution, MIME port-compatibility checking
//!   (§4.4.1), recursive-composition expansion (§4.4.2), and generation of
//!   the configuration tables consumed by the Coordination Manager (§3.3.1);
//! * [`config`] — the configuration-table data model;
//! * [`analysis`] — the executable semantic model: feedback-loop detection,
//!   open-circuit detection, mutual exclusion, dependency and preorder
//!   verification (§5.2), expressed over the [`analysis::StreamGraph`]
//!   relation exactly as the thesis's Z schemas define them;
//! * [`events`] — the event vocabulary shared with the runtime (Table 6-1).
//!
//! # Quick example
//!
//! ```
//! use mobigate_mcl::compile::compile;
//!
//! let source = r#"
//! streamlet upper {
//!     port { in pi : text/plain; out po : text/plain; }
//!     attribute { type = STATELESS; library = "builtin/upper"; }
//! }
//! main stream demo {
//!     streamlet s1 = new-streamlet (upper);
//!     streamlet s2 = new-streamlet (upper);
//!     connect (s1.po, s2.pi);
//! }
//! "#;
//! let program = compile(source).expect("compiles");
//! let main = program.main().expect("has a main stream");
//! assert_eq!(main.streamlets.len(), 2);
//! assert_eq!(main.connections.len(), 1);
//! ```

pub mod analysis;
pub mod ast;
pub mod compile;
pub mod config;
pub mod error;
pub mod events;
pub mod fusion;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod template;

pub use analysis::{AnalysisReport, StreamGraph};
pub use compile::{compile, compile_with_registry};
pub use config::{ChannelSpec, ConfigTable, Program, StreamletSpec};
pub use error::{MclError, Span};
pub use events::{EventCategory, EventKind};
pub use fusion::{FusedRun, FusionPlan};
pub use model::{verify_program, verify_table, ModelViolation};
pub use template::StreamTemplate;
