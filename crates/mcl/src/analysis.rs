//! The executable semantic model of Chapter 5.
//!
//! The thesis formalizes MCL in Z and derives five analyses over the
//! *stream graph* — the relation `connect ⊆ streamlets × streamlets` where
//! `(s1, s2) ∈ connect` iff some channel carries an output of `s1` into an
//! input of `s2` (§5.2). This module turns those Z schemas into runnable
//! checks:
//!
//! * [`StreamGraph::feedback_loops`] — §5.2.1: `id streamlets ∩ connect⁺ = ∅`
//!   (the graph must be acyclic); violations are reported as witness cycles,
//!   reproducing the Figure 5-1 example;
//! * [`StreamGraph::open_circuits`] — §5.2.2: no intermediate output port may
//!   be left unconnected, or incoming messages are silently lost;
//! * [`StreamGraph::mutual_exclusions`] — §5.2.3: for `repel` pairs,
//!   `(x, y) ∉ connect⁺ ∧ (y, x) ∉ connect⁺` (never on a common path);
//! * [`StreamGraph::dependency_violations`] — §5.2.4: if `x` is deployed,
//!   each `y ∈ depend(x)` must be deployed too;
//! * [`StreamGraph::preorder_violations`] — §5.2.5: for ordered pairs
//!   `(x, y)`, whenever both are deployed they must be connected in the
//!   declared order: `(x, y) ∈ connect⁺` and never `(y, x) ∈ connect⁺`.
//!
//! [`analyze`] bundles everything into an [`AnalysisReport`], applying the
//! constraints compiled from `constraint …;` declarations.

use crate::ast::ConstraintKind;
use crate::config::{ConfigTable, Program};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// The §5.2 stream graph: instances (with their definition names) plus the
/// `connect` relation.
#[derive(Debug, Clone, Default)]
pub struct StreamGraph {
    /// Instance name → definition name.
    nodes: BTreeMap<String, String>,
    /// Direct `connect` relation, instance → successors.
    edges: BTreeMap<String, BTreeSet<String>>,
    /// Output ports of each instance that are fed into some channel.
    connected_outputs: HashSet<(String, String)>,
    /// All declared output ports per instance.
    output_ports: HashMap<String, Vec<String>>,
}

impl StreamGraph {
    /// Builds the graph from a configuration table's *initial* topology.
    ///
    /// Only initial instances and connections participate: the dashed,
    /// event-gated parts of a composition (Figure 4-6) join the graph after
    /// reconfiguration, which is analyzed by re-deriving the graph from the
    /// updated table.
    pub fn from_table(table: &ConfigTable, program: &Program) -> Self {
        let mut g = StreamGraph::default();
        for row in table.initial_instances() {
            g.nodes.insert(row.name.clone(), row.def.clone());
            if let Some(spec) = program.streamlet_defs.get(&row.def) {
                g.output_ports.insert(
                    row.name.clone(),
                    spec.outputs.iter().map(|(n, _)| n.clone()).collect(),
                );
            }
        }
        for c in &table.connections {
            if g.nodes.contains_key(&c.from.0) && g.nodes.contains_key(&c.to.0) {
                g.edges
                    .entry(c.from.0.clone())
                    .or_default()
                    .insert(c.to.0.clone());
                g.connected_outputs.insert(c.from.clone());
            }
        }
        g
    }

    /// Builds a bare graph from explicit nodes and edges (used by tests and
    /// by callers analyzing hypothetical topologies).
    pub fn from_edges<I, N>(nodes: N, edges: I) -> Self
    where
        N: IntoIterator<Item = (String, String)>,
        I: IntoIterator<Item = (String, String)>,
    {
        let mut g = StreamGraph::default();
        for (inst, def) in nodes {
            g.nodes.insert(inst, def);
        }
        for (a, b) in edges {
            g.connected_outputs.insert((a.clone(), "out".into()));
            g.edges.entry(a).or_default().insert(b);
        }
        g
    }

    /// Instance names in the graph.
    pub fn instances(&self) -> impl Iterator<Item = &str> {
        self.nodes.keys().map(String::as_str)
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no instances.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Direct successors of an instance.
    pub fn successors(&self, inst: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(inst)
            .into_iter()
            .flatten()
            .map(String::as_str)
    }

    /// `(a, b) ∈ connect⁺` — the transitive (non-reflexive) closure used by
    /// §5.2.3/§5.2.5. Implemented as a DFS from `a`.
    pub fn reaches(&self, a: &str, b: &str) -> bool {
        let mut seen = HashSet::new();
        let mut stack: Vec<&str> = self.successors(a).collect();
        while let Some(n) = stack.pop() {
            if n == b {
                return true;
            }
            if seen.insert(n) {
                stack.extend(self.successors(n));
            }
        }
        false
    }

    // --- §5.2.1 feedback loops -------------------------------------------

    /// Returns one witness cycle per strongly connected component that
    /// violates acyclicity (`id streamlets ∩ connect⁺ ≠ ∅`). An empty result
    /// means the composition is acyclic.
    pub fn feedback_loops(&self) -> Vec<Vec<String>> {
        // Iterative Tarjan SCC; every SCC of size > 1, or size 1 with a
        // self-edge, yields a witness cycle.
        let mut index = 0usize;
        let mut indices: HashMap<&str, usize> = HashMap::new();
        let mut lowlink: HashMap<&str, usize> = HashMap::new();
        let mut on_stack: HashSet<&str> = HashSet::new();
        let mut stack: Vec<&str> = Vec::new();
        let mut sccs: Vec<Vec<String>> = Vec::new();

        enum Frame<'a> {
            Enter(&'a str),
            Post(&'a str, &'a str),
        }

        for root in self.nodes.keys() {
            if indices.contains_key(root.as_str()) {
                continue;
            }
            let mut work = vec![Frame::Enter(root.as_str())];
            while let Some(frame) = work.pop() {
                match frame {
                    Frame::Enter(v) => {
                        if indices.contains_key(v) {
                            continue;
                        }
                        indices.insert(v, index);
                        lowlink.insert(v, index);
                        index += 1;
                        stack.push(v);
                        on_stack.insert(v);
                        // Re-visit v after children to pop its SCC.
                        work.push(Frame::Post(v, v));
                        for w in self.successors(v) {
                            if !indices.contains_key(w) {
                                work.push(Frame::Post(v, w));
                                work.push(Frame::Enter(w));
                            } else if on_stack.contains(w) {
                                let lw = indices[w];
                                let lv = lowlink[v].min(lw);
                                lowlink.insert(v, lv);
                            }
                        }
                    }
                    Frame::Post(v, w) => {
                        if v != w {
                            // Propagate child lowlink.
                            let lw = lowlink.get(w).copied().unwrap_or(usize::MAX);
                            let lv = lowlink[v].min(lw);
                            lowlink.insert(v, lv);
                            continue;
                        }
                        if lowlink[v] == indices[v] {
                            let mut component = Vec::new();
                            while let Some(n) = stack.pop() {
                                on_stack.remove(n);
                                component.push(n.to_string());
                                if n == v {
                                    break;
                                }
                            }
                            component.reverse();
                            let cyclic = component.len() > 1
                                || self
                                    .edges
                                    .get(&component[0])
                                    .is_some_and(|s| s.contains(&component[0]));
                            if cyclic {
                                sccs.push(component);
                            }
                        }
                    }
                }
            }
        }
        sccs
    }

    /// §5.2.1 as a predicate.
    pub fn is_acyclic(&self) -> bool {
        self.feedback_loops().is_empty()
    }

    // --- §5.2.2 open circuits ----------------------------------------------

    /// Output ports left unconnected, excluding `allowed` (the ports the
    /// composition intentionally exports as its own outputs, §5.1.4).
    pub fn open_circuits(&self, allowed: &HashSet<(String, String)>) -> Vec<(String, String)> {
        let mut open = Vec::new();
        for (inst, ports) in &self.output_ports {
            for port in ports {
                let key = (inst.clone(), port.clone());
                if !self.connected_outputs.contains(&key) && !allowed.contains(&key) {
                    open.push(key);
                }
            }
        }
        open.sort();
        open
    }

    // --- §5.2.3 mutual exclusion -------------------------------------------

    /// Instance pairs of the `repel` definitions that lie on a common path.
    /// The Z condition is `(x, y), (y, x) ∉ connect⁺` for every repelled
    /// pair; a violation is returned as the offending instance pair.
    pub fn mutual_exclusions(&self, repel: &[(String, String)]) -> Vec<(String, String)> {
        let mut violations = Vec::new();
        for (def_a, def_b) in repel {
            for (xa, xb) in self.instance_pairs(def_a, def_b) {
                if self.reaches(&xa, &xb) || self.reaches(&xb, &xa) {
                    violations.push((xa, xb));
                }
            }
        }
        violations.sort();
        violations.dedup();
        violations
    }

    // --- §5.2.4 dependency ---------------------------------------------------

    /// Definitions deployed without their co-required definitions:
    /// `depend(a, b)` means deploying an instance of `a` requires at least
    /// one instance of `b`.
    pub fn dependency_violations(&self, depend: &[(String, String)]) -> Vec<(String, String)> {
        let deployed: HashSet<&str> = self.nodes.values().map(String::as_str).collect();
        let mut violations = Vec::new();
        for (a, b) in depend {
            if deployed.contains(a.as_str()) && !deployed.contains(b.as_str()) {
                violations.push((a.clone(), b.clone()));
            }
        }
        violations
    }

    // --- §5.2.5 preorder ---------------------------------------------------

    /// Violations of deployment order: for `preorder(a, b)` ("a before b",
    /// e.g. encryption before compression), whenever instances of both are
    /// deployed, every co-present pair must satisfy `(x_a, x_b) ∈ connect⁺`
    /// and must not satisfy the reverse.
    pub fn preorder_violations(&self, order: &[(String, String)]) -> Vec<(String, String)> {
        let mut violations = Vec::new();
        for (def_a, def_b) in order {
            for (xa, xb) in self.instance_pairs(def_a, def_b) {
                let forward = self.reaches(&xa, &xb);
                let backward = self.reaches(&xb, &xa);
                if backward || !forward {
                    violations.push((xa, xb));
                }
            }
        }
        violations.sort();
        violations.dedup();
        violations
    }

    /// All (instance of `def_a`, instance of `def_b`) pairs.
    fn instance_pairs(&self, def_a: &str, def_b: &str) -> Vec<(String, String)> {
        let of = |d: &str| -> Vec<&String> {
            self.nodes
                .iter()
                .filter(|(_, v)| *v == d)
                .map(|(k, _)| k)
                .collect()
        };
        let mut pairs = Vec::new();
        for a in of(def_a) {
            for b in of(def_b) {
                if a != b {
                    pairs.push((a.clone(), b.clone()));
                }
            }
        }
        pairs
    }
}

/// Everything the five analyses found for one stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// Witness cycles (§5.2.1); empty when acyclic.
    pub feedback_loops: Vec<Vec<String>>,
    /// Unconnected output ports (§5.2.2).
    pub open_circuits: Vec<(String, String)>,
    /// Repelled instances on a common path (§5.2.3).
    pub mutual_exclusions: Vec<(String, String)>,
    /// Missing co-deployments (§5.2.4).
    pub dependency_violations: Vec<(String, String)>,
    /// Ordering violations (§5.2.5).
    pub preorder_violations: Vec<(String, String)>,
}

impl AnalysisReport {
    /// True when the composition passed every check.
    pub fn is_consistent(&self) -> bool {
        self.feedback_loops.is_empty()
            && self.open_circuits.is_empty()
            && self.mutual_exclusions.is_empty()
            && self.dependency_violations.is_empty()
            && self.preorder_violations.is_empty()
    }

    /// Human-readable summary, one finding per line.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for cycle in &self.feedback_loops {
            out.push_str(&format!("feedback loop: {}\n", cycle.join(" -> ")));
        }
        for (i, p) in &self.open_circuits {
            out.push_str(&format!(
                "open circuit: output port {i}.{p} is unconnected\n"
            ));
        }
        for (a, b) in &self.mutual_exclusions {
            out.push_str(&format!(
                "mutual exclusion violated: {a} and {b} share a path\n"
            ));
        }
        for (a, b) in &self.dependency_violations {
            out.push_str(&format!("dependency violated: {a} deployed without {b}\n"));
        }
        for (a, b) in &self.preorder_violations {
            out.push_str(&format!("preorder violated: {a} must precede {b}\n"));
        }
        if out.is_empty() {
            out.push_str("composition is consistent\n");
        }
        out
    }
}

/// Runs all five analyses on one stream of a compiled program, applying the
/// program's `constraint` declarations. Unsatisfied output ports that the
/// stream exports (§5.1.4) are treated as intentional; use
/// [`analyze_with_allowed_exports`] to supply a stricter set.
pub fn analyze(program: &Program, stream: &str) -> Option<AnalysisReport> {
    let table = program.streams.get(stream)?;
    let allowed: HashSet<(String, String)> = table
        .exported_outputs
        .iter()
        .map(|(i, p, _)| (i.clone(), p.clone()))
        .collect();
    analyze_with_allowed_exports(program, stream, &allowed)
}

/// Like [`analyze`], but only the listed `(instance, port)` outputs may
/// legally stay unconnected — everything else unconnected is an open
/// circuit (§5.2.2 strict mode).
pub fn analyze_with_allowed_exports(
    program: &Program,
    stream: &str,
    allowed: &HashSet<(String, String)>,
) -> Option<AnalysisReport> {
    let table = program.streams.get(stream)?;
    let graph = StreamGraph::from_table(table, program);

    let pick = |kind: ConstraintKind| -> Vec<(String, String)> {
        program
            .constraints
            .iter()
            .filter(|(k, _, _)| *k == kind)
            .map(|(_, a, b)| (a.clone(), b.clone()))
            .collect()
    };

    Some(AnalysisReport {
        feedback_loops: graph.feedback_loops(),
        open_circuits: graph.open_circuits(allowed),
        mutual_exclusions: graph.mutual_exclusions(&pick(ConstraintKind::Exclude)),
        dependency_violations: graph.dependency_violations(&pick(ConstraintKind::Depend)),
        preorder_violations: graph.preorder_violations(&pick(ConstraintKind::Preorder)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;

    fn g(nodes: &[(&str, &str)], edges: &[(&str, &str)]) -> StreamGraph {
        StreamGraph::from_edges(
            nodes.iter().map(|(a, b)| (a.to_string(), b.to_string())),
            edges.iter().map(|(a, b)| (a.to_string(), b.to_string())),
        )
    }

    #[test]
    fn figure_5_1_feedback_loop_detected() {
        // §5.3: s1 -> s2 -> s3 -> s1 must be flagged.
        let graph = g(
            &[("s1", "d"), ("s2", "d"), ("s3", "d")],
            &[("s1", "s2"), ("s2", "s3"), ("s3", "s1")],
        );
        let loops = graph.feedback_loops();
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].len(), 3);
        assert!(!graph.is_acyclic());
    }

    #[test]
    fn self_loop_detected() {
        let graph = g(&[("s1", "d")], &[("s1", "s1")]);
        assert_eq!(graph.feedback_loops().len(), 1);
    }

    #[test]
    fn dag_is_acyclic() {
        let graph = g(
            &[("a", "d"), ("b", "d"), ("c", "d"), ("e", "d")],
            &[("a", "b"), ("a", "c"), ("b", "e"), ("c", "e")],
        );
        assert!(graph.is_acyclic());
    }

    #[test]
    fn two_disjoint_cycles_both_reported() {
        let graph = g(
            &[("a", "d"), ("b", "d"), ("x", "d"), ("y", "d")],
            &[("a", "b"), ("b", "a"), ("x", "y"), ("y", "x")],
        );
        assert_eq!(graph.feedback_loops().len(), 2);
    }

    #[test]
    fn reaches_is_transitive_nonreflexive() {
        let graph = g(
            &[("a", "d"), ("b", "d"), ("c", "d")],
            &[("a", "b"), ("b", "c")],
        );
        assert!(graph.reaches("a", "c"));
        assert!(!graph.reaches("c", "a"));
        assert!(!graph.reaches("a", "a")); // no self-path in this DAG
    }

    #[test]
    fn mutual_exclusion_flags_shared_path() {
        let graph = g(
            &[("e1", "enc"), ("c1", "comp"), ("z", "other")],
            &[("e1", "z"), ("z", "c1")],
        );
        let v = graph.mutual_exclusions(&[("enc".into(), "comp".into())]);
        assert_eq!(v, vec![("e1".to_string(), "c1".to_string())]);
    }

    #[test]
    fn mutual_exclusion_ok_on_parallel_branches() {
        // Exclusive streamlets on *different* branches never share a path.
        let graph = g(
            &[("sw", "switch"), ("e1", "enc"), ("c1", "comp")],
            &[("sw", "e1"), ("sw", "c1")],
        );
        assert!(graph
            .mutual_exclusions(&[("enc".into(), "comp".into())])
            .is_empty());
    }

    #[test]
    fn dependency_violation_detected() {
        let graph = g(&[("e1", "enc")], &[]);
        let v = graph.dependency_violations(&[("enc".into(), "dec".into())]);
        assert_eq!(v.len(), 1);
        // Satisfied once the co-required definition is present.
        let graph2 = g(&[("e1", "enc"), ("d1", "dec")], &[]);
        assert!(graph2
            .dependency_violations(&[("enc".into(), "dec".into())])
            .is_empty());
    }

    #[test]
    fn preorder_violation_detected() {
        // Compression before encryption is wrong when enc must precede comp.
        let graph = g(&[("c1", "comp"), ("e1", "enc")], &[("c1", "e1")]);
        let v = graph.preorder_violations(&[("enc".into(), "comp".into())]);
        assert_eq!(v, vec![("e1".to_string(), "c1".to_string())]);
        // The right order passes.
        let graph2 = g(&[("e1", "enc"), ("c1", "comp")], &[("e1", "c1")]);
        assert!(graph2
            .preorder_violations(&[("enc".into(), "comp".into())])
            .is_empty());
    }

    #[test]
    fn preorder_requires_connection_when_both_present() {
        // Both deployed but unordered (disconnected): violation.
        let graph = g(&[("e1", "enc"), ("c1", "comp")], &[]);
        let v = graph.preorder_violations(&[("enc".into(), "comp".into())]);
        assert_eq!(v.len(), 1);
        // Only one deployed: vacuously fine.
        let graph2 = g(&[("e1", "enc")], &[]);
        assert!(graph2
            .preorder_violations(&[("enc".into(), "comp".into())])
            .is_empty());
    }

    #[test]
    fn open_circuit_detection_via_compile() {
        let src = r#"
            streamlet a { port { in i : */*; out o : text; } }
            streamlet b { port { in i : text; out o : text; } }
            main stream app {
                streamlet x = new-streamlet (a);
                streamlet y = new-streamlet (b);
                connect (x.o, y.i);
            }
        "#;
        let p = compile(src).unwrap();
        let table = p.main().unwrap();
        let graph = StreamGraph::from_table(table, &p);
        // y.o is exported (allowed) — no open circuit.
        let allowed: HashSet<_> = table
            .exported_outputs
            .iter()
            .map(|(i, po, _)| (i.clone(), po.clone()))
            .collect();
        assert!(graph.open_circuits(&allowed).is_empty());
        // Without the allowance, y.o is open.
        let none = HashSet::new();
        assert_eq!(
            graph.open_circuits(&none),
            vec![("y".to_string(), "o".to_string())]
        );
    }

    #[test]
    fn analyze_full_program_consistent() {
        let src = r#"
            streamlet enc { port { in i : */*; out o : application/encrypted; } }
            streamlet comp { port { in i : */*; out o : application/compressed; } }
            constraint preorder(enc, comp);
            main stream app {
                streamlet e = new-streamlet (enc);
                streamlet c = new-streamlet (comp);
                connect (e.o, c.i);
            }
        "#;
        let p = compile(src).unwrap();
        let report = analyze(&p, "app").unwrap();
        assert!(report.is_consistent(), "{}", report.summary());
        assert!(report.summary().contains("consistent"));
    }

    #[test]
    fn analyze_reports_preorder_violation() {
        let src = r#"
            streamlet enc { port { in i : */*; out o : */*; } }
            streamlet comp { port { in i : */*; out o : */*; } }
            constraint preorder(enc, comp);
            main stream app {
                streamlet e = new-streamlet (enc);
                streamlet c = new-streamlet (comp);
                connect (c.o, e.i);
            }
        "#;
        let p = compile(src).unwrap();
        let report = analyze(&p, "app").unwrap();
        assert!(!report.is_consistent());
        assert_eq!(report.preorder_violations.len(), 1);
        assert!(report.summary().contains("preorder"));
    }

    #[test]
    fn analyze_missing_stream_is_none() {
        let p = compile("main stream app { }").unwrap();
        assert!(analyze(&p, "nope").is_none());
    }

    #[test]
    fn empty_graph_is_trivially_consistent() {
        let graph = g(&[], &[]);
        assert!(graph.is_empty());
        assert!(graph.is_acyclic());
        assert!(graph.open_circuits(&HashSet::new()).is_empty());
    }
}
