//! The MCL compiler: resolution, compatibility checking, composite
//! expansion, and configuration-table generation.
//!
//! Compilation enforces the two §4.4.1 restrictions:
//!
//! 1. streamlet ports connect only to channel ports (structurally: every
//!    connection goes *through* a channel, and channel instances cannot
//!    appear as connection endpoints);
//! 2. a source port may feed a sink port only when the source type equals
//!    or specializes the sink type in the MIME lattice; the channel must
//!    also accept the source type.
//!
//! Recursive composition (§4.4.2) is resolved by expansion: instantiating a
//! *stream* as a streamlet inlines its instances, channels, connections,
//! and `when` rules under hierarchical names (`outer/inner`), and maps the
//! composite's ports onto the inner unsatisfied ports (§5.1.4). A facade
//! streamlet definition with the same name as the stream (as in Figure 4-9)
//! supplies the composite's public port names and types, which are verified
//! against the derived ports.

use crate::ast::{self, PortDir, Script, Statefulness, StreamStmt};
use crate::config::{
    ChannelRow, ChannelSpec, ConfigTable, ConnectionRow, InstanceRow, Program, ReconfigAction,
    StreamletSpec, WhenRule,
};

use crate::error::{MclError, Span};
use crate::events::EventKind;
use crate::parser::parse;
use mobigate_mime::{MimeType, TypeRegistry};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Compiles MCL source with the standard MIME lattice.
pub fn compile(source: &str) -> Result<Program, MclError> {
    compile_with_registry(source, TypeRegistry::standard())
}

/// Compiles MCL source against a caller-supplied type registry. `type X
/// under Y;` declarations in the script extend the registry before any
/// compatibility check runs.
pub fn compile_with_registry(
    source: &str,
    mut registry: TypeRegistry,
) -> Result<Program, MclError> {
    let script = parse(source)?;
    for decl in &script.type_decls {
        registry.declare_types(decl.child.clone(), decl.parent.clone());
    }
    Compiler::new(&script, registry)?.run()
}

/// Where a facade port maps inside an expanded composite.
type PortAlias = HashMap<(String, String), (String, String)>;

struct Compiler<'a> {
    script: &'a Script,
    registry: TypeRegistry,
    streamlet_defs: BTreeMap<String, StreamletSpec>,
    channel_defs: BTreeMap<String, ChannelSpec>,
    stream_asts: BTreeMap<String, &'a ast::StreamDef>,
    compiled: BTreeMap<String, ConfigTable>,
}

impl<'a> Compiler<'a> {
    fn new(script: &'a Script, registry: TypeRegistry) -> Result<Self, MclError> {
        let mut streamlet_defs = BTreeMap::new();
        for def in &script.streamlets {
            let spec = lower_streamlet(def)?;
            if streamlet_defs.insert(def.name.clone(), spec).is_some() {
                return Err(MclError::Duplicate {
                    span: def.span,
                    kind: "streamlet definition",
                    name: def.name.clone(),
                });
            }
        }
        let mut channel_defs = BTreeMap::new();
        for def in &script.channels {
            let spec = lower_channel(def)?;
            if channel_defs.insert(def.name.clone(), spec).is_some() {
                return Err(MclError::Duplicate {
                    span: def.span,
                    kind: "channel definition",
                    name: def.name.clone(),
                });
            }
        }
        let mut stream_asts = BTreeMap::new();
        for def in &script.streams {
            if stream_asts.insert(def.name.clone(), def).is_some() {
                return Err(MclError::Duplicate {
                    span: def.span,
                    kind: "stream",
                    name: def.name.clone(),
                });
            }
        }
        Ok(Compiler {
            script,
            registry,
            streamlet_defs,
            channel_defs,
            stream_asts,
            compiled: BTreeMap::new(),
        })
    }

    fn run(mut self) -> Result<Program, MclError> {
        // Compile every stream (composites are compiled on demand and
        // memoized, so order does not matter).
        let names: Vec<String> = self.stream_asts.keys().cloned().collect();
        for name in &names {
            self.compile_stream(name, &mut Vec::new())?;
        }

        // Determine the main stream.
        let mut main_stream = None;
        for def in &self.script.streams {
            if def.is_main {
                if main_stream.is_some() {
                    return Err(MclError::Duplicate {
                        span: def.span,
                        kind: "main stream",
                        name: def.name.clone(),
                    });
                }
                main_stream = Some(def.name.clone());
            }
        }

        // Validate constraints reference known definitions.
        let mut constraints = Vec::new();
        for c in &self.script.constraints {
            for n in [&c.a, &c.b] {
                if !self.streamlet_defs.contains_key(n) && !self.stream_asts.contains_key(n) {
                    return Err(MclError::Undefined {
                        span: c.span,
                        kind: "streamlet definition (in constraint)",
                        name: n.clone(),
                    });
                }
            }
            constraints.push((c.kind, c.a.clone(), c.b.clone()));
        }

        Ok(Program {
            streamlet_defs: self.streamlet_defs,
            channel_defs: self.channel_defs,
            streams: self.compiled,
            main_stream,
            constraints,
        })
    }

    fn compile_stream(&mut self, name: &str, chain: &mut Vec<String>) -> Result<(), MclError> {
        if self.compiled.contains_key(name) {
            return Ok(());
        }
        let def = *self
            .stream_asts
            .get(name)
            .expect("caller checked existence");
        if chain.iter().any(|c| c == name) {
            let mut cycle = chain.clone();
            cycle.push(name.to_string());
            return Err(MclError::RecursiveCycle {
                span: def.span,
                chain: cycle,
            });
        }
        chain.push(name.to_string());
        let table = StreamBuilder::new(self, name).build(&def.body, chain)?;
        chain.pop();
        self.compiled.insert(name.to_string(), table);
        Ok(())
    }
}

fn lower_streamlet(def: &ast::StreamletDef) -> Result<StreamletSpec, MclError> {
    let mut inputs = Vec::new();
    let mut outputs = Vec::new();
    let mut seen = HashSet::new();
    for p in &def.ports {
        if !seen.insert(p.name.clone()) {
            return Err(MclError::Duplicate {
                span: p.span,
                kind: "port",
                name: p.name.clone(),
            });
        }
        match p.dir {
            PortDir::In => inputs.push((p.name.clone(), p.ty.clone())),
            PortDir::Out => outputs.push((p.name.clone(), p.ty.clone())),
        }
    }
    Ok(StreamletSpec {
        name: def.name.clone(),
        inputs,
        outputs,
        stateful: def.statefulness == Statefulness::Stateful,
        library: def.library.clone(),
        description: def.description.clone(),
    })
}

fn lower_channel(def: &ast::ChannelDef) -> Result<ChannelSpec, MclError> {
    // A channel's carried type is its `in` port type; default to `*/*`.
    let ty = def
        .ports
        .iter()
        .find(|p| p.dir == PortDir::In)
        .map(|p| p.ty.clone())
        .unwrap_or_else(MimeType::any);
    Ok(ChannelSpec {
        name: def.name.clone(),
        kind: def.kind,
        category: def.category,
        buffer_kb: def.buffer_kb,
        ty,
    })
}

/// Builds the configuration table of one stream by interpreting its body.
struct StreamBuilder<'c, 'a> {
    compiler: &'c mut Compiler<'a>,
    table: ConfigTable,
    /// instance name → streamlet definition name (for simple instances).
    instance_defs: HashMap<String, String>,
    /// channel instance name → spec.
    channel_specs: HashMap<String, ChannelSpec>,
    /// (composite instance, facade port) → (inner instance, inner port).
    composite_ports: PortAlias,
    /// composite instance → inner instance names (for removal).
    composite_members: HashMap<String, Vec<String>>,
    auto_chan: usize,
}

impl<'c, 'a> StreamBuilder<'c, 'a> {
    fn new(compiler: &'c mut Compiler<'a>, name: &str) -> Self {
        StreamBuilder {
            compiler,
            table: ConfigTable {
                name: name.to_string(),
                ..Default::default()
            },
            instance_defs: HashMap::new(),
            channel_specs: HashMap::new(),
            composite_ports: HashMap::new(),
            composite_members: HashMap::new(),
            auto_chan: 0,
        }
    }

    fn build(
        mut self,
        body: &[StreamStmt],
        chain: &mut Vec<String>,
    ) -> Result<ConfigTable, MclError> {
        // First interpret the initial topology (everything outside `when`).
        for stmt in body {
            match stmt {
                StreamStmt::When { .. } => {}
                other => self.apply_initial(other, chain)?,
            }
        }
        // Then compile `when` blocks into reconfiguration rules. Instances
        // declared inside a block are registered (non-initial) so later
        // statements — in this or other blocks — can reference them, which
        // matches Figure 4-8 where `s4` is connected only on LOW_ENERGY.
        for stmt in body {
            if let StreamStmt::When { event, body, span } = stmt {
                let event: EventKind = event.parse().map_err(|_| MclError::Undefined {
                    span: *span,
                    kind: "event",
                    name: event.clone(),
                })?;
                let mut actions = Vec::new();
                for inner in body {
                    self.compile_action(inner, &mut actions, chain)?;
                }
                self.table.when_rules.push(WhenRule { event, actions });
            }
        }
        self.derive_exports();
        Ok(self.table)
    }

    // --- initial topology ------------------------------------------------

    fn apply_initial(
        &mut self,
        stmt: &StreamStmt,
        chain: &mut Vec<String>,
    ) -> Result<(), MclError> {
        match stmt {
            StreamStmt::NewStreamlet { names, def, span } => {
                for n in names {
                    self.new_streamlet(n, def, true, *span, chain)?;
                }
                Ok(())
            }
            StreamStmt::NewChannel { names, def, span } => {
                for n in names {
                    self.new_channel(n, def, *span)?;
                }
                Ok(())
            }
            StreamStmt::Connect {
                from,
                to,
                channel,
                span,
            } => {
                let conn = self.resolve_connect(from, to, channel.as_deref(), *span)?;
                self.table.connections.push(conn);
                Ok(())
            }
            StreamStmt::Disconnect { from, to, span } => {
                let f = self.resolve_endpoint(from, PortDir::Out, *span)?;
                let t = self.resolve_endpoint(to, PortDir::In, *span)?;
                let before = self.table.connections.len();
                self.table
                    .connections
                    .retain(|c| !(c.from == f && c.to == t));
                if self.table.connections.len() == before {
                    return Err(MclError::Undefined {
                        span: *span,
                        kind: "connection",
                        name: format!("{from} -> {to}"),
                    });
                }
                Ok(())
            }
            StreamStmt::DisconnectAll { instance, span } => {
                self.require_instance(instance, *span)?;
                let members = self.members_of(instance);
                self.table
                    .connections
                    .retain(|c| !members.contains(&c.from.0) && !members.contains(&c.to.0));
                Ok(())
            }
            StreamStmt::RemoveStreamlet { name, span } => {
                self.require_instance(name, *span)?;
                let members = self.members_of(name);
                self.table.streamlets.retain(|r| !members.contains(&r.name));
                self.table
                    .connections
                    .retain(|c| !members.contains(&c.from.0) && !members.contains(&c.to.0));
                self.instance_defs.remove(name);
                self.composite_members.remove(name);
                self.composite_ports.retain(|(inst, _), _| inst != name);
                Ok(())
            }
            StreamStmt::RemoveChannel { name, span } => {
                if self.channel_specs.remove(name).is_none() {
                    return Err(MclError::Undefined {
                        span: *span,
                        kind: "channel instance",
                        name: name.clone(),
                    });
                }
                self.table.channels.retain(|c| c.name != *name);
                self.table.connections.retain(|c| c.channel != *name);
                Ok(())
            }
            StreamStmt::Insert {
                from,
                to,
                instance,
                span,
            } => {
                // Splice: from→to becomes from→instance.in, instance.out→to.
                let f = self.resolve_endpoint(from, PortDir::Out, *span)?;
                let t = self.resolve_endpoint(to, PortDir::In, *span)?;
                let idx = self
                    .table
                    .connections
                    .iter()
                    .position(|c| c.from == f && c.to == t)
                    .ok_or_else(|| MclError::Undefined {
                        span: *span,
                        kind: "connection",
                        name: format!("{from} -> {to}"),
                    })?;
                let old = self.table.connections.remove(idx);
                let (in_port, out_port) = self.single_ports(instance, *span)?;
                let first = self.resolve_connect(
                    from,
                    &ast::PortRef {
                        instance: instance.clone(),
                        port: in_port,
                        span: *span,
                    },
                    Some(&old.channel),
                    *span,
                )?;
                let second = self.resolve_connect(
                    &ast::PortRef {
                        instance: instance.clone(),
                        port: out_port,
                        span: *span,
                    },
                    to,
                    None,
                    *span,
                )?;
                self.table.connections.push(first);
                self.table.connections.push(second);
                Ok(())
            }
            StreamStmt::Replace { old, new, span } => {
                self.require_instance(old, *span)?;
                self.require_instance(new, *span)?;
                let mut rewired = Vec::new();
                for c in &self.table.connections {
                    let mut c = c.clone();
                    if c.from.0 == *old {
                        c.from.0 = new.clone();
                    }
                    if c.to.0 == *old {
                        c.to.0 = new.clone();
                    }
                    rewired.push(c);
                }
                // Verify every rewired endpoint exists on the replacement.
                for c in &rewired {
                    for (inst, port, dir) in [
                        (&c.from.0, &c.from.1, PortDir::Out),
                        (&c.to.0, &c.to.1, PortDir::In),
                    ] {
                        if inst == new {
                            self.port_type_of(inst, port, dir, *span)?;
                        }
                    }
                }
                self.table.connections = rewired;
                self.table.streamlets.retain(|r| r.name != *old);
                self.instance_defs.remove(old);
                Ok(())
            }
            StreamStmt::When { .. } => unreachable!("handled by build()"),
        }
    }

    // --- `when` bodies ----------------------------------------------------

    fn compile_action(
        &mut self,
        stmt: &StreamStmt,
        out: &mut Vec<ReconfigAction>,
        chain: &mut Vec<String>,
    ) -> Result<(), MclError> {
        match stmt {
            StreamStmt::NewStreamlet { names, def, span } => {
                for n in names {
                    self.new_streamlet(n, def, false, *span, chain)?;
                    out.push(ReconfigAction::NewStreamlet {
                        name: n.clone(),
                        def: def.clone(),
                    });
                }
                Ok(())
            }
            StreamStmt::NewChannel { names, def, span } => {
                for n in names {
                    let spec = self.new_channel(n, def, *span)?;
                    out.push(ReconfigAction::NewChannel {
                        name: n.clone(),
                        spec,
                    });
                }
                Ok(())
            }
            StreamStmt::Connect {
                from,
                to,
                channel,
                span,
            } => {
                let conn = self.resolve_connect(from, to, channel.as_deref(), *span)?;
                // Reconfiguration-time channels created for the rule must
                // also be materialized at reconfiguration time.
                out.push(ReconfigAction::Connect {
                    from: conn.from,
                    to: conn.to,
                    channel: conn.channel,
                });
                Ok(())
            }
            StreamStmt::Disconnect { from, to, span } => {
                let f = self.resolve_endpoint(from, PortDir::Out, *span)?;
                let t = self.resolve_endpoint(to, PortDir::In, *span)?;
                out.push(ReconfigAction::Disconnect { from: f, to: t });
                Ok(())
            }
            StreamStmt::DisconnectAll { instance, span } => {
                self.require_instance(instance, *span)?;
                out.push(ReconfigAction::DisconnectAll {
                    instance: instance.clone(),
                });
                Ok(())
            }
            StreamStmt::RemoveStreamlet { name, span } => {
                self.require_instance(name, *span)?;
                out.push(ReconfigAction::RemoveStreamlet { name: name.clone() });
                Ok(())
            }
            StreamStmt::RemoveChannel { name, span } => {
                if !self.channel_specs.contains_key(name) {
                    return Err(MclError::Undefined {
                        span: *span,
                        kind: "channel instance",
                        name: name.clone(),
                    });
                }
                out.push(ReconfigAction::RemoveChannel { name: name.clone() });
                Ok(())
            }
            StreamStmt::Insert {
                from,
                to,
                instance,
                span,
            } => {
                let f = self.resolve_endpoint(from, PortDir::Out, *span)?;
                let t = self.resolve_endpoint(to, PortDir::In, *span)?;
                self.require_instance(instance, *span)?;
                // Type-check the splice against the instance's ports.
                let (in_port, out_port) = self.single_ports(instance, *span)?;
                self.check_compat(from, to, *span)?;
                let _ = (in_port, out_port);
                out.push(ReconfigAction::Insert {
                    from: f,
                    to: t,
                    instance: instance.clone(),
                });
                Ok(())
            }
            StreamStmt::Replace { old, new, span } => {
                self.require_instance(old, *span)?;
                self.require_instance(new, *span)?;
                out.push(ReconfigAction::Replace {
                    old: old.clone(),
                    new: new.clone(),
                });
                Ok(())
            }
            StreamStmt::When { span, .. } => Err(MclError::Parse {
                span: *span,
                message: "`when` blocks cannot be nested".into(),
            }),
        }
    }

    // --- shared helpers ----------------------------------------------------

    fn new_streamlet(
        &mut self,
        name: &str,
        def: &str,
        initial: bool,
        span: Span,
        chain: &mut Vec<String>,
    ) -> Result<(), MclError> {
        if self.instance_defs.contains_key(name) || self.composite_members.contains_key(name) {
            return Err(MclError::Duplicate {
                span,
                kind: "streamlet instance",
                name: name.to_string(),
            });
        }
        // Recursive composition: a stream definition instantiated as a
        // streamlet is expanded inline (§4.4.2).
        if self.compiler.stream_asts.contains_key(def) {
            return self.expand_composite(name, def, initial, span, chain);
        }
        if !self.compiler.streamlet_defs.contains_key(def) {
            return Err(MclError::Undefined {
                span,
                kind: "streamlet definition",
                name: def.to_string(),
            });
        }
        self.instance_defs.insert(name.to_string(), def.to_string());
        self.table.streamlets.push(InstanceRow {
            name: name.to_string(),
            def: def.to_string(),
            initial,
        });
        Ok(())
    }

    fn new_channel(&mut self, name: &str, def: &str, span: Span) -> Result<ChannelSpec, MclError> {
        if self.channel_specs.contains_key(name) {
            return Err(MclError::Duplicate {
                span,
                kind: "channel instance",
                name: name.to_string(),
            });
        }
        let spec = self
            .compiler
            .channel_defs
            .get(def)
            .cloned()
            .ok_or_else(|| MclError::Undefined {
                span,
                kind: "channel definition",
                name: def.to_string(),
            })?;
        self.channel_specs.insert(name.to_string(), spec.clone());
        self.table.channels.push(ChannelRow {
            name: name.to_string(),
            spec: spec.clone(),
        });
        Ok(spec)
    }

    fn expand_composite(
        &mut self,
        name: &str,
        stream_def: &str,
        initial: bool,
        span: Span,
        chain: &mut Vec<String>,
    ) -> Result<(), MclError> {
        self.compiler.compile_stream(stream_def, chain)?;
        let inner = self
            .compiler
            .compiled
            .get(stream_def)
            .expect("just compiled")
            .clone();

        let rename = |s: &str| format!("{name}/{s}");
        let mut members = Vec::new();
        for row in &inner.streamlets {
            let renamed = rename(&row.name);
            members.push(renamed.clone());
            self.instance_defs.insert(renamed.clone(), row.def.clone());
            self.table.streamlets.push(InstanceRow {
                name: renamed,
                def: row.def.clone(),
                initial: initial && row.initial,
            });
        }
        for row in &inner.channels {
            let renamed = rename(&row.name);
            self.channel_specs.insert(renamed.clone(), row.spec.clone());
            self.table.channels.push(ChannelRow {
                name: renamed,
                spec: row.spec.clone(),
            });
        }
        for c in &inner.connections {
            self.table.connections.push(ConnectionRow {
                from: (rename(&c.from.0), c.from.1.clone()),
                to: (rename(&c.to.0), c.to.1.clone()),
                channel: rename(&c.channel),
            });
        }
        for rule in &inner.when_rules {
            let actions = rule
                .actions
                .iter()
                .map(|a| rename_action(a, &rename))
                .collect();
            self.table.when_rules.push(WhenRule {
                event: rule.event,
                actions,
            });
        }

        // Map the composite's public ports. A facade streamlet definition
        // with the stream's name supplies names and types (Figure 4-9);
        // otherwise derived inner port names are used directly.
        let derived_in: Vec<(String, String, MimeType)> = inner
            .exported_inputs
            .iter()
            .map(|(i, p, t)| (rename(i), p.clone(), t.clone()))
            .collect();
        let derived_out: Vec<(String, String, MimeType)> = inner
            .exported_outputs
            .iter()
            .map(|(i, p, t)| (rename(i), p.clone(), t.clone()))
            .collect();

        if let Some(facade) = self.compiler.streamlet_defs.get(stream_def) {
            if facade.inputs.len() != derived_in.len() || facade.outputs.len() != derived_out.len()
            {
                return Err(MclError::IllegalEndpoints {
                    span,
                    message: format!(
                        "facade streamlet `{stream_def}` declares {}+{} ports but the stream \
                         derives {}+{} unsatisfied ports",
                        facade.inputs.len(),
                        facade.outputs.len(),
                        derived_in.len(),
                        derived_out.len()
                    ),
                });
            }
            for ((fname, fty), (inst, port, ity)) in facade.inputs.iter().zip(&derived_in) {
                // Messages accepted by the facade flow into the inner port:
                // the facade input must specialize the inner input.
                if !self.compiler.registry.connectable(fty, ity) {
                    return Err(MclError::Incompatible {
                        span,
                        source_port: format!("{stream_def}.{fname}"),
                        source_type: fty.to_string(),
                        sink_port: format!("{inst}.{port}"),
                        sink_type: ity.to_string(),
                    });
                }
                self.composite_ports.insert(
                    (name.to_string(), fname.clone()),
                    (inst.clone(), port.clone()),
                );
            }
            for ((fname, fty), (inst, port, ity)) in facade.outputs.iter().zip(&derived_out) {
                // Inner output flows out through the facade: inner must
                // specialize the facade output.
                if !self.compiler.registry.connectable(ity, fty) {
                    return Err(MclError::Incompatible {
                        span,
                        source_port: format!("{inst}.{port}"),
                        source_type: ity.to_string(),
                        sink_port: format!("{stream_def}.{fname}"),
                        sink_type: fty.to_string(),
                    });
                }
                self.composite_ports.insert(
                    (name.to_string(), fname.clone()),
                    (inst.clone(), port.clone()),
                );
            }
        } else {
            for (inst, port, _) in derived_in.iter().chain(derived_out.iter()) {
                self.composite_ports.insert(
                    (name.to_string(), port.clone()),
                    (inst.clone(), port.clone()),
                );
            }
        }
        self.composite_members.insert(name.to_string(), members);
        Ok(())
    }

    /// Resolves a port reference to `(instance, port)`, seeing through
    /// composite facades, and verifies the direction.
    fn resolve_endpoint(
        &self,
        r: &ast::PortRef,
        dir: PortDir,
        span: Span,
    ) -> Result<(String, String), MclError> {
        // Restriction 1: channels are not connection endpoints.
        if self.channel_specs.contains_key(&r.instance) {
            return Err(MclError::IllegalEndpoints {
                span,
                message: format!(
                    "`{}` is a channel instance; streamlet ports can only connect to channel \
                     ports via the third connect argument",
                    r.instance
                ),
            });
        }
        let (inst, port) = if let Some(mapped) = self
            .composite_ports
            .get(&(r.instance.clone(), r.port.clone()))
        {
            mapped.clone()
        } else {
            (r.instance.clone(), r.port.clone())
        };
        self.port_type_of(&inst, &port, dir, span)?;
        Ok((inst, port))
    }

    /// Type of `instance.port`, verifying the direction matches.
    fn port_type_of(
        &self,
        instance: &str,
        port: &str,
        dir: PortDir,
        span: Span,
    ) -> Result<MimeType, MclError> {
        let def_name = self
            .instance_defs
            .get(instance)
            .ok_or_else(|| MclError::Undefined {
                span,
                kind: "streamlet instance",
                name: instance.to_string(),
            })?;
        let spec = &self.compiler.streamlet_defs[def_name];
        let found = match dir {
            PortDir::In => spec.inputs.iter().find(|(n, _)| n == port),
            PortDir::Out => spec.outputs.iter().find(|(n, _)| n == port),
        };
        match found {
            Some((_, ty)) => Ok(ty.clone()),
            None => {
                if spec.port_type(port).is_some() {
                    Err(MclError::Direction {
                        span,
                        message: format!(
                            "port `{instance}.{port}` exists but is not an {} port",
                            if dir == PortDir::In {
                                "input"
                            } else {
                                "output"
                            }
                        ),
                    })
                } else {
                    Err(MclError::Undefined {
                        span,
                        kind: "port",
                        name: format!("{instance}.{port}"),
                    })
                }
            }
        }
    }

    fn require_instance(&self, name: &str, span: Span) -> Result<(), MclError> {
        if self.instance_defs.contains_key(name) || self.composite_members.contains_key(name) {
            Ok(())
        } else {
            Err(MclError::Undefined {
                span,
                kind: "streamlet instance",
                name: name.to_string(),
            })
        }
    }

    /// All inner instance names covered by `name` (itself, or its expanded
    /// members when it is a composite).
    fn members_of(&self, name: &str) -> Vec<String> {
        match self.composite_members.get(name) {
            Some(m) => m.clone(),
            None => vec![name.to_string()],
        }
    }

    /// The single (in, out) port pair of an instance — `insert` splices
    /// through streamlets with exactly one input and one output.
    fn single_ports(&self, instance: &str, span: Span) -> Result<(String, String), MclError> {
        let def_name = self
            .instance_defs
            .get(instance)
            .ok_or_else(|| MclError::Undefined {
                span,
                kind: "streamlet instance",
                name: instance.to_string(),
            })?;
        let spec = &self.compiler.streamlet_defs[def_name];
        if spec.inputs.len() != 1 || spec.outputs.len() != 1 {
            return Err(MclError::IllegalEndpoints {
                span,
                message: format!(
                    "insert requires a streamlet with exactly one input and one output; \
                     `{instance}` has {}+{}",
                    spec.inputs.len(),
                    spec.outputs.len()
                ),
            });
        }
        Ok((spec.inputs[0].0.clone(), spec.outputs[0].0.clone()))
    }

    fn check_compat(
        &self,
        from: &ast::PortRef,
        to: &ast::PortRef,
        span: Span,
    ) -> Result<(MimeType, MimeType), MclError> {
        let f = self.resolve_endpoint(from, PortDir::Out, span)?;
        let t = self.resolve_endpoint(to, PortDir::In, span)?;
        let source_ty = self.port_type_of(&f.0, &f.1, PortDir::Out, span)?;
        let sink_ty = self.port_type_of(&t.0, &t.1, PortDir::In, span)?;
        if !self.compiler.registry.connectable(&source_ty, &sink_ty) {
            return Err(MclError::Incompatible {
                span,
                source_port: from.to_string(),
                source_type: source_ty.to_string(),
                sink_port: to.to_string(),
                sink_type: sink_ty.to_string(),
            });
        }
        Ok((source_ty, sink_ty))
    }

    fn resolve_connect(
        &mut self,
        from: &ast::PortRef,
        to: &ast::PortRef,
        channel: Option<&str>,
        span: Span,
    ) -> Result<ConnectionRow, MclError> {
        let (source_ty, _sink_ty) = self.check_compat(from, to, span)?;
        let f = self.resolve_endpoint(from, PortDir::Out, span)?;
        let t = self.resolve_endpoint(to, PortDir::In, span)?;
        let channel_name = match channel {
            Some(name) => {
                let spec = self
                    .channel_specs
                    .get(name)
                    .ok_or_else(|| MclError::Undefined {
                        span,
                        kind: "channel instance",
                        name: name.to_string(),
                    })?;
                // The channel must accept the source type.
                if !self.compiler.registry.connectable(&source_ty, &spec.ty) {
                    return Err(MclError::Incompatible {
                        span,
                        source_port: from.to_string(),
                        source_type: source_ty.to_string(),
                        sink_port: format!("channel {name}"),
                        sink_type: spec.ty.to_string(),
                    });
                }
                name.to_string()
            }
            None => {
                // §4.2.3: auto-create an async BK channel with 100 KB.
                let name = loop {
                    let candidate = format!("__chan{}", self.auto_chan);
                    self.auto_chan += 1;
                    if !self.channel_specs.contains_key(&candidate) {
                        break candidate;
                    }
                };
                let mut spec = ChannelSpec::default_for(source_ty.clone());
                spec.name = name.clone();
                self.channel_specs.insert(name.clone(), spec.clone());
                self.table.channels.push(ChannelRow {
                    name: name.clone(),
                    spec,
                });
                name
            }
        };
        Ok(ConnectionRow {
            from: f,
            to: t,
            channel: channel_name,
        })
    }

    /// Derives exported ports: inner ports unsatisfied by any *initial*
    /// connection (§5.1.4's `InnerIn` / `InnerOut`).
    fn derive_exports(&mut self) {
        let connected_in: HashSet<(String, String)> = self
            .table
            .connections
            .iter()
            .map(|c| c.to.clone())
            .collect();
        let connected_out: HashSet<(String, String)> = self
            .table
            .connections
            .iter()
            .map(|c| c.from.clone())
            .collect();
        for row in &self.table.streamlets {
            if !row.initial {
                continue;
            }
            let spec = &self.compiler.streamlet_defs[&row.def];
            for (port, ty) in &spec.inputs {
                if !connected_in.contains(&(row.name.clone(), port.clone())) {
                    self.table
                        .exported_inputs
                        .push((row.name.clone(), port.clone(), ty.clone()));
                }
            }
            for (port, ty) in &spec.outputs {
                if !connected_out.contains(&(row.name.clone(), port.clone())) {
                    self.table
                        .exported_outputs
                        .push((row.name.clone(), port.clone(), ty.clone()));
                }
            }
        }
    }
}

fn rename_action(a: &ReconfigAction, rename: &dyn Fn(&str) -> String) -> ReconfigAction {
    let rn = |pair: &(String, String)| (rename(&pair.0), pair.1.clone());
    match a {
        ReconfigAction::NewStreamlet { name, def } => ReconfigAction::NewStreamlet {
            name: rename(name),
            def: def.clone(),
        },
        ReconfigAction::NewChannel { name, spec } => ReconfigAction::NewChannel {
            name: rename(name),
            spec: spec.clone(),
        },
        ReconfigAction::RemoveStreamlet { name } => {
            ReconfigAction::RemoveStreamlet { name: rename(name) }
        }
        ReconfigAction::RemoveChannel { name } => {
            ReconfigAction::RemoveChannel { name: rename(name) }
        }
        ReconfigAction::Connect { from, to, channel } => ReconfigAction::Connect {
            from: rn(from),
            to: rn(to),
            channel: rename(channel),
        },
        ReconfigAction::Disconnect { from, to } => ReconfigAction::Disconnect {
            from: rn(from),
            to: rn(to),
        },
        ReconfigAction::DisconnectAll { instance } => ReconfigAction::DisconnectAll {
            instance: rename(instance),
        },
        ReconfigAction::Insert { from, to, instance } => ReconfigAction::Insert {
            from: rn(from),
            to: rn(to),
            instance: rename(instance),
        },
        ReconfigAction::Replace { old, new } => ReconfigAction::Replace {
            old: rename(old),
            new: rename(new),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::ConstraintKind;

    const DEFS: &str = r#"
        streamlet switch {
            port { in pi : */*; out po1 : image; out po2 : text; }
            attribute { type = STATELESS; library = "builtin/switch"; }
        }
        streamlet img_down_sample {
            port { in pi : image; out po : image/jpeg; }
            attribute { type = STATELESS; library = "builtin/downsample"; }
        }
        streamlet text_compress {
            port { in pi : text; out po : text; }
            attribute { type = STATELESS; library = "builtin/compress"; }
        }
        streamlet merge {
            port { in pi1 : image; in pi2 : text; out po : multipart/mixed; }
            attribute { type = STATEFUL; library = "builtin/merge"; }
        }
        channel largeBufferChan {
            port { in ci : image; out co : image; }
            attribute { type = ASYNC; category = BK; buffer = 1024; }
        }
    "#;

    fn with_defs(body: &str) -> String {
        format!("{DEFS}\n{body}")
    }

    #[test]
    fn compiles_simple_stream() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                streamlet s6 = new-streamlet (text_compress);
                streamlet s7 = new-streamlet (merge);
                channel c1 = new-channel (largeBufferChan);
                connect (s1.po1, s2.pi, c1);
                connect (s1.po2, s6.pi);
                connect (s2.po, s7.pi1);
                connect (s6.po, s7.pi2);
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        assert_eq!(t.streamlets.len(), 4);
        assert_eq!(t.connections.len(), 4);
        // 1 explicit + 3 auto channels.
        assert_eq!(t.channels.len(), 4);
        // Unsatisfied: s1.pi (in) and s7.po (out).
        assert_eq!(
            t.exported_inputs,
            vec![("s1".to_string(), "pi".to_string(), MimeType::any())]
        );
        assert_eq!(t.exported_outputs.len(), 1);
        assert_eq!(t.exported_outputs[0].0, "s7");
    }

    #[test]
    fn auto_channel_adopts_source_type_and_defaults() {
        let p = compile(&with_defs(
            "main stream app {\n\
             streamlet a = new-streamlet (img_down_sample);\n\
             streamlet m = new-streamlet (merge);\n\
             connect (a.po, m.pi1);\n}",
        ))
        .unwrap();
        let t = p.main().unwrap();
        let chan = &t.channels[0];
        assert_eq!(chan.spec.buffer_kb, 100);
        assert_eq!(chan.spec.ty, MimeType::new("image", "jpeg"));
    }

    #[test]
    fn rejects_incompatible_connection() {
        // image/jpeg source into a text sink.
        let err = compile(&with_defs(
            "main stream app {\n\
             streamlet a = new-streamlet (img_down_sample);\n\
             streamlet c = new-streamlet (text_compress);\n\
             connect (a.po, c.pi);\n}",
        ))
        .unwrap_err();
        assert!(matches!(err, MclError::Incompatible { .. }), "{err}");
    }

    #[test]
    fn accepts_subtype_connection_via_registry() {
        // §4.4.1: text/richtext flows into a `text` sink.
        let src = r#"
            streamlet ps2text {
                port { in pi : application/postscript; out po : text/richtext; }
            }
            streamlet text_compress { port { in pi : text; out po : text; } }
            main stream app {
                streamlet a = new-streamlet (ps2text);
                streamlet b = new-streamlet (text_compress);
                connect (a.po, b.pi);
            }
        "#;
        assert!(compile(src).is_ok());
    }

    #[test]
    fn type_decl_extends_lattice() {
        let src = r#"
            type application/vnd_custom under image/gif;
            streamlet producer { port { out po : application/vnd_custom; } }
            streamlet consumer { port { in pi : image; } }
            main stream app {
                streamlet a = new-streamlet (producer);
                streamlet b = new-streamlet (consumer);
                connect (a.po, b.pi);
            }
        "#;
        assert!(compile(src).is_ok());
    }

    #[test]
    fn rejects_wrong_direction() {
        let err = compile(&with_defs(
            "main stream app {\n\
             streamlet a = new-streamlet (img_down_sample);\n\
             streamlet b = new-streamlet (img_down_sample);\n\
             connect (a.pi, b.pi);\n}",
        ))
        .unwrap_err();
        assert!(matches!(err, MclError::Direction { .. }), "{err}");
    }

    #[test]
    fn rejects_channel_as_endpoint() {
        let err = compile(&with_defs(
            "main stream app {\n\
             streamlet a = new-streamlet (img_down_sample);\n\
             channel c1 = new-channel (largeBufferChan);\n\
             connect (c1.co, a.pi);\n}",
        ))
        .unwrap_err();
        assert!(matches!(err, MclError::IllegalEndpoints { .. }), "{err}");
    }

    #[test]
    fn rejects_channel_that_cannot_carry_flow() {
        // largeBufferChan carries image; text flow through it is an error.
        let err = compile(&with_defs(
            "main stream app {\n\
             streamlet a = new-streamlet (text_compress);\n\
             streamlet b = new-streamlet (text_compress);\n\
             channel c1 = new-channel (largeBufferChan);\n\
             connect (a.po, b.pi, c1);\n}",
        ))
        .unwrap_err();
        assert!(matches!(err, MclError::Incompatible { .. }), "{err}");
    }

    #[test]
    fn rejects_undefined_names() {
        assert!(matches!(
            compile("main stream a { streamlet x = new-streamlet (ghost); }").unwrap_err(),
            MclError::Undefined { .. }
        ));
        assert!(matches!(
            compile(&with_defs(
                "main stream a { channel c = new-channel (ghost); }"
            ))
            .unwrap_err(),
            MclError::Undefined { .. }
        ));
    }

    #[test]
    fn rejects_duplicate_instances() {
        let err = compile(&with_defs(
            "main stream a { streamlet x = new-streamlet (switch); \
             streamlet x = new-streamlet (switch); }",
        ))
        .unwrap_err();
        assert!(matches!(err, MclError::Duplicate { .. }));
    }

    #[test]
    fn when_rules_compile_to_actions() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet a = new-streamlet (switch);
                streamlet b = new-streamlet (text_compress);
                streamlet c = new-streamlet (text_compress);
                connect (a.po2, b.pi);
                when (LOW_BANDWIDTH) {
                    disconnect (a.po2, b.pi);
                    connect (a.po2, c.pi);
                    connect (c.po, b.pi);
                }
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        assert_eq!(t.when_rules.len(), 1);
        assert_eq!(t.when_rules[0].event, EventKind::LowBandwidth);
        assert_eq!(t.when_rules[0].actions.len(), 3);
        // `c` is declared at top level so it is initial; ports of when-block
        // connects were still type-checked.
    }

    #[test]
    fn when_block_instances_are_lazy() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet a = new-streamlet (text_compress);
                when (LOW_BANDWIDTH) {
                    streamlet z = new-streamlet (text_compress);
                    connect (a.po, z.pi);
                }
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        let z = t.instance("z").unwrap();
        assert!(!z.initial);
        assert!(t.instance("a").unwrap().initial);
        // Lazy instances do not contribute exported ports.
        assert!(t.exported_inputs.iter().all(|(i, _, _)| i != "z"));
    }

    #[test]
    fn rejects_unknown_event() {
        let err = compile(&with_defs("main stream app { when (SOLAR_FLARE) { } }")).unwrap_err();
        assert!(matches!(err, MclError::Undefined { kind: "event", .. }));
    }

    #[test]
    fn rejects_nested_when() {
        let err = compile(&with_defs(
            "main stream app { when (END) { when (PAUSE) { } } }",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("nested"));
    }

    #[test]
    fn recursive_composition_expands() {
        let p = compile(&with_defs(
            r#"
            streamlet streamApp {
                port { in pi : */*; out po : multipart/mixed; }
                attribute { type = STATEFUL; library = "general/streamApp"; }
            }
            stream streamApp {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                streamlet s6 = new-streamlet (text_compress);
                streamlet s7 = new-streamlet (merge);
                connect (s1.po1, s2.pi);
                connect (s1.po2, s6.pi);
                connect (s2.po, s7.pi1);
                connect (s6.po, s7.pi2);
            }
            main stream composite {
                streamlet w = new-streamlet (streamApp);
                streamlet post = new-streamlet (text_compress);
                connect (w.po, post.pi);
            }
            "#,
        ))
        .unwrap_err();
        // multipart/mixed -> text is incompatible: expansion *and* the
        // facade check both ran. Now fix the sink type:
        assert!(matches!(p, MclError::Incompatible { .. }), "{p}");
    }

    #[test]
    fn recursive_composition_expands_ok() {
        let p = compile(&with_defs(
            r#"
            streamlet streamApp {
                port { in pi : */*; out po : multipart/mixed; }
                attribute { type = STATEFUL; library = "general/streamApp"; }
            }
            streamlet sinkAny { port { in pi : */*; } }
            stream streamApp {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                streamlet s6 = new-streamlet (text_compress);
                streamlet s7 = new-streamlet (merge);
                connect (s1.po1, s2.pi);
                connect (s1.po2, s6.pi);
                connect (s2.po, s7.pi1);
                connect (s6.po, s7.pi2);
            }
            main stream composite {
                streamlet w = new-streamlet (streamApp);
                streamlet post = new-streamlet (sinkAny);
                connect (w.po, post.pi);
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        // 4 inner + 1 outer instance.
        assert_eq!(t.streamlets.len(), 5);
        assert!(t.instance("w/s1").is_some());
        assert!(t.instance("post").is_some());
        // The outer connect resolved through the facade to w/s7.po.
        let outer = t.connections.iter().find(|c| c.to.0 == "post").unwrap();
        assert_eq!(outer.from, ("w/s7".to_string(), "po".to_string()));
        // Exported input of composite is the unsatisfied w/s1.pi.
        assert_eq!(t.exported_inputs.len(), 1);
        assert_eq!(t.exported_inputs[0].0, "w/s1");
    }

    #[test]
    fn recursive_cycle_is_detected() {
        let err = compile(
            r#"
            stream a { streamlet x = new-streamlet (b); }
            stream b { streamlet y = new-streamlet (a); }
            "#,
        )
        .unwrap_err();
        assert!(matches!(err, MclError::RecursiveCycle { .. }), "{err}");
    }

    #[test]
    fn self_recursion_is_detected() {
        let err = compile("stream a { streamlet x = new-streamlet (a); }").unwrap_err();
        assert!(matches!(err, MclError::RecursiveCycle { .. }));
    }

    #[test]
    fn insert_splices_topology() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet a = new-streamlet (text_compress);
                streamlet b = new-streamlet (text_compress);
                streamlet mid = new-streamlet (text_compress);
                connect (a.po, b.pi);
                insert (a.po, b.pi, mid);
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        assert_eq!(t.connections.len(), 2);
        assert!(t
            .connections
            .iter()
            .any(|c| c.from.0 == "a" && c.to.0 == "mid"));
        assert!(t
            .connections
            .iter()
            .any(|c| c.from.0 == "mid" && c.to.0 == "b"));
    }

    #[test]
    fn replace_rewires_connections() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet a = new-streamlet (text_compress);
                streamlet b = new-streamlet (text_compress);
                streamlet alt = new-streamlet (text_compress);
                connect (a.po, b.pi);
                replace (a, alt);
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        assert!(t.instance("a").is_none());
        assert_eq!(t.connections[0].from.0, "alt");
    }

    #[test]
    fn disconnect_and_remove_update_table() {
        let p = compile(&with_defs(
            r#"
            main stream app {
                streamlet a = new-streamlet (text_compress);
                streamlet b = new-streamlet (text_compress);
                connect (a.po, b.pi);
                disconnect (a.po, b.pi);
                remove-streamlet (b);
            }
            "#,
        ))
        .unwrap();
        let t = p.main().unwrap();
        assert!(t.connections.is_empty());
        assert!(t.instance("b").is_none());
    }

    #[test]
    fn duplicate_main_is_rejected() {
        let err = compile("main stream a { } main stream b { }").unwrap_err();
        assert!(matches!(
            err,
            MclError::Duplicate {
                kind: "main stream",
                ..
            }
        ));
    }

    #[test]
    fn constraints_are_collected_and_validated() {
        let p = compile(&with_defs(
            "constraint exclude(switch, merge);\nmain stream a { }",
        ))
        .unwrap();
        assert_eq!(p.constraints.len(), 1);
        assert_eq!(p.constraints[0].0, ConstraintKind::Exclude);
        let err = compile("constraint depend(nope, alsonope);\nmain stream a { }").unwrap_err();
        assert!(matches!(err, MclError::Undefined { .. }));
    }

    #[test]
    fn figure_4_8_compiles() {
        // The full §4.3 distillation example, verbatim modulo streamlet
        // definitions.
        let src = r#"
            streamlet switch {
                port { in pi : */*; out po1 : image; out po2 : application/postscript; }
            }
            streamlet img_down_sample { port { in pi : image; out po : image; } }
            streamlet map_to_16_grays { port { in pi : image; out po : image; } }
            streamlet powerSaving { port { in pi : multipart/mixed; out po : multipart/mixed; } }
            streamlet postscript2text {
                port { in pi : application/postscript; out po : text/richtext; }
            }
            streamlet text_compress { port { in pi : text; out po : text; } }
            streamlet merge { port { in pi1 : image; in pi2 : text; out po : multipart/mixed; } }
            channel largeBufferChan {
                port { in ci : image; out co : image; }
                attribute { type = ASYNC; category = BK; buffer = 1024; }
            }
            main stream streamApp {
                streamlet s1 = new-streamlet (switch);
                streamlet s2 = new-streamlet (img_down_sample);
                streamlet s3 = new-streamlet (map_to_16_grays);
                streamlet s4 = new-streamlet (powerSaving);
                streamlet s5 = new-streamlet (postscript2text);
                streamlet s6 = new-streamlet (text_compress);
                streamlet s7 = new-streamlet (merge);
                channel c1, c2, c3 = new channel (largeBufferChan);
                connect (s1.po1, s2.pi, c1);
                connect (s1.po2, s5.pi);
                connect (s2.po, s7.pi1, c2);
                connect (s5.po, s6.pi);
                connect (s6.po, s7.pi2);
                when (LOW_ENERGY) {
                    connect (s7.po, s4.pi);
                }
                when (LOW_GRAY) {
                    disconnect (s2.po, s7.pi1);
                    connect (s2.po, s3.pi, c2);
                    connect (s3.po, s7.pi1, c3);
                }
            }
        "#;
        let p = compile(src).unwrap();
        let t = p.main().unwrap();
        assert_eq!(t.streamlets.len(), 7);
        assert_eq!(t.when_rules.len(), 2);
        assert_eq!(t.when_rules[0].event, EventKind::LowEnergy);
        assert_eq!(t.when_rules[1].event, EventKind::LowGrays);
        // c1..c3 declared, plus 3 auto channels for the default initial
        // connects and 1 for the LOW_ENERGY when-connect.
        assert_eq!(t.channels.len(), 7);
        // Exported: s1.pi in; out: s7.po and s4.po (s4 has no initial
        // connection so both its ports are unsatisfied).
        assert!(t
            .exported_inputs
            .iter()
            .any(|(i, p, _)| i == "s1" && p == "pi"));
        assert!(t
            .exported_outputs
            .iter()
            .any(|(i, p, _)| i == "s7" && p == "po"));
    }
}
