//! `MGRF` — the synthetic raster-image format behind the image streamlets.
//!
//! The paper's experiments transcode real GIF/JPEG images; those data sets
//! are unavailable, so this module implements a compact raster format with
//! three encodings whose *size behaviour* under the paper's
//! transformations is faithful:
//!
//! * [`Encoding::Raw`] — one byte per sample;
//! * [`Encoding::Palette`] — a 256-entry RGB palette plus one index byte
//!   per pixel (GIF-like);
//! * [`Encoding::Quantized`] — samples quantized to a quality-dependent
//!   number of levels then run-length encoded (JPEG-like: lossy, and
//!   smoother images compress better).
//!
//! Header layout (little-endian):
//! ```text
//! magic "MGRF" | version u8 | encoding u8 | channels u8 | quality u8 |
//! width u16 | height u16 | payload_len u32 | payload…
//! ```

use std::fmt;

/// Magic prefix of every MGRF image.
pub const MAGIC: &[u8; 4] = b"MGRF";
const VERSION: u8 = 1;
const HEADER_LEN: usize = 4 + 1 + 1 + 1 + 1 + 2 + 2 + 4;

/// Payload encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// One byte per sample (w × h × channels bytes).
    Raw,
    /// GIF-like: global palette + pixel indices (channels collapse to 1
    /// index referencing RGB entries).
    Palette,
    /// JPEG-like: quantized samples + RLE; `quality` (1..=100) sets the
    /// quantization step.
    Quantized,
}

impl Encoding {
    fn code(self) -> u8 {
        match self {
            Encoding::Raw => 0,
            Encoding::Palette => 1,
            Encoding::Quantized => 2,
        }
    }

    fn from_code(c: u8) -> Option<Self> {
        match c {
            0 => Some(Encoding::Raw),
            1 => Some(Encoding::Palette),
            2 => Some(Encoding::Quantized),
            _ => None,
        }
    }
}

/// Errors decoding MGRF data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RasterError {
    /// Not an MGRF buffer / truncated header.
    BadHeader,
    /// Unknown encoding or version.
    Unsupported,
    /// Payload inconsistent with the header.
    BadPayload(&'static str),
}

impl fmt::Display for RasterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RasterError::BadHeader => write!(f, "bad or truncated MGRF header"),
            RasterError::Unsupported => write!(f, "unsupported MGRF version or encoding"),
            RasterError::BadPayload(why) => write!(f, "bad MGRF payload: {why}"),
        }
    }
}

impl std::error::Error for RasterError {}

/// A decoded image: planar-interleaved samples, one byte each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    /// Pixels per row.
    pub width: u16,
    /// Rows.
    pub height: u16,
    /// Samples per pixel (3 = RGB, 1 = gray).
    pub channels: u8,
    /// `width × height × channels` samples, row-major, channel-interleaved.
    pub samples: Vec<u8>,
}

impl Image {
    /// Allocates a black image.
    pub fn new(width: u16, height: u16, channels: u8) -> Self {
        let n = width as usize * height as usize * channels as usize;
        Image {
            width,
            height,
            channels,
            samples: vec![0; n],
        }
    }

    /// Pixel count.
    pub fn pixels(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Encodes into MGRF bytes.
    pub fn encode(&self, encoding: Encoding, quality: u8) -> Vec<u8> {
        let quality = quality.clamp(1, 100);
        let payload = match encoding {
            Encoding::Raw => self.samples.clone(),
            Encoding::Palette => encode_palette(self),
            Encoding::Quantized => encode_quantized(self, quality),
        };
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        out.push(encoding.code());
        out.push(self.channels);
        out.push(quality);
        out.extend_from_slice(&self.width.to_le_bytes());
        out.extend_from_slice(&self.height.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decodes MGRF bytes. Lossy encodings reconstruct approximations.
    pub fn decode(data: &[u8]) -> Result<(Image, Encoding, u8), RasterError> {
        if data.len() < HEADER_LEN || &data[..4] != MAGIC {
            return Err(RasterError::BadHeader);
        }
        if data[4] != VERSION {
            return Err(RasterError::Unsupported);
        }
        let encoding = Encoding::from_code(data[5]).ok_or(RasterError::Unsupported)?;
        let channels = data[6];
        let quality = data[7];
        let width = u16::from_le_bytes([data[8], data[9]]);
        let height = u16::from_le_bytes([data[10], data[11]]);
        let payload_len = u32::from_le_bytes([data[12], data[13], data[14], data[15]]) as usize;
        if data.len() < HEADER_LEN + payload_len {
            return Err(RasterError::BadPayload("truncated payload"));
        }
        if channels == 0 || channels > 4 {
            return Err(RasterError::BadPayload("invalid channel count"));
        }
        let payload = &data[HEADER_LEN..HEADER_LEN + payload_len];
        let n = width as usize * height as usize * channels as usize;
        let samples = match encoding {
            Encoding::Raw => {
                if payload.len() != n {
                    return Err(RasterError::BadPayload("raw size mismatch"));
                }
                payload.to_vec()
            }
            Encoding::Palette => decode_palette(payload, width, height, channels)?,
            Encoding::Quantized => decode_quantized(payload, n, channels, quality)?,
        };
        Ok((
            Image {
                width,
                height,
                channels,
                samples,
            },
            encoding,
            quality,
        ))
    }
}

// --- palette (GIF-like) ------------------------------------------------------

/// Palette encoding: 256 RGB entries (768 bytes) + one index per pixel.
/// Colors are quantized to a 3-3-2-bit cube (the classic web-safe trick),
/// so encoding is lossy but decode(encode(x)) is stable.
fn encode_palette(img: &Image) -> Vec<u8> {
    let mut out = Vec::with_capacity(768 + img.pixels());
    // Fixed 3-3-2 palette.
    for idx in 0u16..256 {
        let i = idx as u8;
        let r = (i >> 5) & 0b111;
        let g = (i >> 2) & 0b111;
        let b = i & 0b11;
        out.push(r << 5 | r << 2 | r >> 1);
        out.push(g << 5 | g << 2 | g >> 1);
        out.push(b << 6 | b << 4 | b << 2 | b);
    }
    let ch = img.channels as usize;
    for p in 0..img.pixels() {
        let (r, g, b) = match ch {
            1 => {
                let v = img.samples[p];
                (v, v, v)
            }
            _ => (
                img.samples[p * ch],
                img.samples[p * ch + 1],
                img.samples[p * ch + ch.min(3) - 1],
            ),
        };
        out.push((r & 0xE0) | ((g & 0xE0) >> 3) | (b >> 6));
    }
    out
}

fn decode_palette(
    payload: &[u8],
    width: u16,
    height: u16,
    channels: u8,
) -> Result<Vec<u8>, RasterError> {
    let pixels = width as usize * height as usize;
    if payload.len() != 768 + pixels {
        return Err(RasterError::BadPayload("palette size mismatch"));
    }
    let (palette, indices) = payload.split_at(768);
    let ch = channels as usize;
    let mut samples = Vec::with_capacity(pixels * ch);
    for &idx in indices {
        let base = idx as usize * 3;
        let (r, g, b) = (palette[base], palette[base + 1], palette[base + 2]);
        match ch {
            1 => samples.push(luma(r, g, b)),
            3 => samples.extend_from_slice(&[r, g, b]),
            _ => {
                samples.extend_from_slice(&[r, g, b]);
                samples.extend(std::iter::repeat_n(255, ch.saturating_sub(3)));
            }
        }
    }
    Ok(samples)
}

// --- quantized + RLE (JPEG-like) ---------------------------------------------

fn quant_step(quality: u8) -> u16 {
    // quality 100 → step 1 (lossless-ish); quality 1 → step 64.
    let q = quality.clamp(1, 100) as u16;
    1 + (100 - q) * 63 / 99
}

/// Quantize samples then RLE-encode as `(count, value)` pairs.
///
/// Channels are encoded as separate *planes* (all R, then all G, …): within
/// a plane neighbouring pixels are similar, so quantized runs are long —
/// interleaved samples would alternate channels and defeat the RLE
/// entirely.
fn encode_quantized(img: &Image, quality: u8) -> Vec<u8> {
    let step = quant_step(quality);
    let ch = img.channels as usize;
    let pixels = img.pixels();
    let mut out = Vec::new();
    for c in 0..ch {
        let mut iter = (0..pixels)
            .map(|p| img.samples[p * ch + c])
            .map(|s| ((s as u16 / step) * step) as u8);
        let Some(mut current) = iter.next() else {
            continue;
        };
        let mut count: u8 = 1;
        for v in iter {
            if v == current && count < 255 {
                count += 1;
            } else {
                out.push(count);
                out.push(current);
                current = v;
                count = 1;
            }
        }
        out.push(count);
        out.push(current);
    }
    out
}

fn decode_quantized(
    payload: &[u8],
    n: usize,
    channels: u8,
    _quality: u8,
) -> Result<Vec<u8>, RasterError> {
    if !payload.len().is_multiple_of(2) {
        return Err(RasterError::BadPayload("odd RLE payload"));
    }
    let ch = channels as usize;
    if !n.is_multiple_of(ch) {
        return Err(RasterError::BadPayload(
            "sample count not divisible by channels",
        ));
    }
    // Expand the concatenated planes…
    let mut planes = Vec::with_capacity(n);
    for pair in payload.chunks_exact(2) {
        let (count, value) = (pair[0] as usize, pair[1]);
        if count == 0 {
            return Err(RasterError::BadPayload("zero RLE run"));
        }
        planes.extend(std::iter::repeat_n(value, count));
    }
    if planes.len() != n {
        return Err(RasterError::BadPayload("RLE sample count mismatch"));
    }
    // …then re-interleave into pixel order.
    let pixels = n / ch;
    let mut samples = vec![0u8; n];
    for c in 0..ch {
        for p in 0..pixels {
            samples[p * ch + c] = planes[c * pixels + p];
        }
    }
    Ok(samples)
}

// --- transformations used by the streamlets -----------------------------------

/// ITU-R 601 luma approximation in integer math.
pub fn luma(r: u8, g: u8, b: u8) -> u8 {
    ((77 * r as u32 + 150 * g as u32 + 29 * b as u32) >> 8) as u8
}

/// Down-samples by an integer factor in both dimensions (point sampling) —
/// the `img_down_sample` streamlet's kernel.
pub fn downsample(img: &Image, factor: u16) -> Image {
    let factor = factor.max(1);
    let nw = (img.width / factor).max(1);
    let nh = (img.height / factor).max(1);
    let ch = img.channels as usize;
    let mut out = Image::new(nw, nh, img.channels);
    for y in 0..nh as usize {
        for x in 0..nw as usize {
            let sx = (x as u16 * factor).min(img.width - 1) as usize;
            let sy = (y as u16 * factor).min(img.height - 1) as usize;
            let src = (sy * img.width as usize + sx) * ch;
            let dst = (y * nw as usize + x) * ch;
            out.samples[dst..dst + ch].copy_from_slice(&img.samples[src..src + ch]);
        }
    }
    out
}

/// Converts to 16 gray levels, one channel — the `map_to_16_grays`
/// streamlet's kernel.
pub fn to_16_grays(img: &Image) -> Image {
    let ch = img.channels as usize;
    let mut out = Image::new(img.width, img.height, 1);
    for p in 0..img.pixels() {
        let g = match ch {
            1 => img.samples[p],
            _ => luma(
                img.samples[p * ch],
                img.samples[p * ch + 1],
                img.samples[p * ch + 2.min(ch - 1)],
            ),
        };
        out.samples[p] = (g / 16) * 17; // 16 levels spread over 0..=255
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A smooth gradient test image (mirrors the synthetic workload).
    fn gradient(w: u16, h: u16, channels: u8) -> Image {
        let mut img = Image::new(w, h, channels);
        let ch = channels as usize;
        for y in 0..h as usize {
            for x in 0..w as usize {
                for c in 0..ch {
                    img.samples[(y * w as usize + x) * ch + c] = ((x + y * 2 + c * 40) % 256) as u8;
                }
            }
        }
        img
    }

    #[test]
    fn raw_round_trip_exact() {
        let img = gradient(32, 24, 3);
        let bytes = img.encode(Encoding::Raw, 100);
        let (back, enc, _) = Image::decode(&bytes).unwrap();
        assert_eq!(enc, Encoding::Raw);
        assert_eq!(back, img);
    }

    #[test]
    fn palette_round_trip_stable() {
        // decode(encode(x)) is lossy once, then stable.
        let img = gradient(16, 16, 3);
        let once = Image::decode(&img.encode(Encoding::Palette, 100))
            .unwrap()
            .0;
        let twice = Image::decode(&once.encode(Encoding::Palette, 100))
            .unwrap()
            .0;
        assert_eq!(once.width, img.width);
        assert_eq!(once, twice, "palette quantization must be idempotent");
    }

    #[test]
    fn quantized_size_shrinks_with_quality() {
        let img = gradient(64, 64, 3);
        let hi = img.encode(Encoding::Quantized, 95);
        let lo = img.encode(Encoding::Quantized, 20);
        assert!(
            lo.len() < hi.len(),
            "lower quality must be smaller: {} vs {}",
            lo.len(),
            hi.len()
        );
        // Both decode to the right dimensions.
        let (back, _, q) = Image::decode(&lo).unwrap();
        assert_eq!(q, 20);
        assert_eq!(back.pixels(), img.pixels());
    }

    #[test]
    fn quantized_decode_approximates() {
        let img = gradient(16, 16, 1);
        let (back, _, _) = Image::decode(&img.encode(Encoding::Quantized, 50)).unwrap();
        let step = quant_step(50) as i32;
        for (a, b) in img.samples.iter().zip(&back.samples) {
            assert!((*a as i32 - *b as i32).abs() < step, "{a} vs {b}");
        }
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = gradient(64, 48, 3);
        let half = downsample(&img, 2);
        assert_eq!(half.width, 32);
        assert_eq!(half.height, 24);
        assert_eq!(half.samples.len(), 32 * 24 * 3);
        // Raw size shrinks by ~4x.
        assert!(half.encode(Encoding::Raw, 100).len() * 3 < img.encode(Encoding::Raw, 100).len());
    }

    #[test]
    fn downsample_factor_one_is_identity() {
        let img = gradient(10, 10, 1);
        assert_eq!(downsample(&img, 1), img);
    }

    #[test]
    fn downsample_never_reaches_zero() {
        let img = gradient(3, 3, 1);
        let tiny = downsample(&img, 10);
        assert_eq!((tiny.width, tiny.height), (1, 1));
    }

    #[test]
    fn to_16_grays_is_single_channel_16_levels() {
        let img = gradient(16, 16, 3);
        let gray = to_16_grays(&img);
        assert_eq!(gray.channels, 1);
        let mut levels: Vec<u8> = gray.samples.clone();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 16, "{} levels", levels.len());
        // Gray raw is 3x smaller than RGB raw.
        assert!(gray.encode(Encoding::Raw, 100).len() * 2 < img.encode(Encoding::Raw, 100).len());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(Image::decode(b"nope").unwrap_err(), RasterError::BadHeader);
        assert_eq!(
            Image::decode(b"MGRF\x63\x00\x03\x50\x10\x00\x10\x00\x00\x00\x00\x00").unwrap_err(),
            RasterError::Unsupported
        );
        // Valid header, truncated payload.
        let img = gradient(8, 8, 1);
        let mut bytes = img.encode(Encoding::Raw, 100);
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            Image::decode(&bytes).unwrap_err(),
            RasterError::BadPayload(_)
        ));
    }

    #[test]
    fn palette_is_much_smaller_than_rgb_raw() {
        // GIF-ish: 1 byte/pixel + palette vs 3 bytes/pixel.
        let img = gradient(100, 100, 3);
        let pal = img.encode(Encoding::Palette, 100);
        let raw = img.encode(Encoding::Raw, 100);
        assert!(pal.len() < raw.len() / 2);
    }

    #[test]
    fn luma_bounds() {
        assert_eq!(luma(0, 0, 0), 0);
        assert!(luma(255, 255, 255) >= 254);
    }
}
