//! Codecs behind the transformation streamlets.
//!
//! * [`lzss`] — a real LZSS compressor (4 KB window) used by the
//!   `text_compress` streamlet; fully reversible, and achieves the ≈50-75%
//!   reduction the thesis reports on redundant text.
//! * [`raster`] — the synthetic `MGRF` raster-image format with three
//!   encodings (raw, palette/GIF-ish, quantized+RLE/JPEG-ish) that the
//!   image streamlets decode, transform, and re-encode.

pub mod lzss;
pub mod raster;
