//! LZSS compression (4 KB sliding window, 3..18-byte matches).
//!
//! The `text_compress` streamlet needs a *real*, reversible compressor that
//! achieves the thesis's "up to 75%" reduction on redundant text (§7.5)
//! without external crates. Classic LZSS fits: flag-byte framing, 12-bit
//! offsets, 4-bit lengths.
//!
//! Format: `[flags: u8] [8 items]`, repeated. Flag bit `1` = literal byte;
//! `0` = match: two bytes `oooooooo oooollll` encoding a 12-bit backward
//! offset (1-based) and a 4-bit length stored as `len - MIN_MATCH`.

const WINDOW: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
/// Hash-chain bucket count (power of two).
const HASH_SIZE: usize = 1 << 13;

#[inline]
fn hash3(data: &[u8], i: usize) -> usize {
    let h = (data[i] as usize) << 10 ^ (data[i + 1] as usize) << 5 ^ (data[i + 2] as usize);
    h & (HASH_SIZE - 1)
}

/// Compresses `data`. Always succeeds; incompressible input grows by at
/// most 12.5% (one flag byte per 8 literals).
pub fn compress(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    if data.is_empty() {
        return out;
    }
    // Hash chains: head[h] = most recent position with hash h; prev[i & mask]
    // links back through earlier positions.
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; WINDOW];

    let mut i = 0usize;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;
    let mut flags = 0u8;

    macro_rules! flush_item {
        () => {
            flag_bit += 1;
            if flag_bit == 8 {
                out[flags_pos] = flags;
                flags = 0;
                flag_bit = 0;
                flags_pos = out.len();
                out.push(0);
            }
        };
    }

    let insert = |head: &mut [usize], prev: &mut [usize], data: &[u8], pos: usize| {
        if pos + MIN_MATCH <= data.len() {
            let h = hash3(data, pos);
            prev[pos % WINDOW] = head[h];
            head[h] = pos;
        }
    };

    while i < data.len() {
        // Find the longest match within the window via the hash chain.
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= data.len() {
            let h = hash3(data, i);
            let mut cand = head[h];
            let limit = i.saturating_sub(WINDOW);
            let mut chain = 0;
            while cand != usize::MAX && cand >= limit && cand < i && chain < 64 {
                let max_len = MAX_MATCH.min(data.len() - i);
                let mut l = 0;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand % WINDOW];
                chain += 1;
            }
        }

        if best_len >= MIN_MATCH {
            // Match item: flag bit 0.
            let stored_len = (best_len - MIN_MATCH) as u8; // 0..=15
            let off = (best_off - 1) as u16; // 0..=4095
            out.push((off >> 4) as u8);
            out.push((((off & 0xF) as u8) << 4) | stored_len);
            for k in 0..best_len {
                insert(&mut head, &mut prev, data, i + k);
            }
            i += best_len;
            flush_item!();
        } else {
            // Literal: flag bit 1.
            flags |= 1 << flag_bit;
            out.push(data[i]);
            insert(&mut head, &mut prev, data, i);
            i += 1;
            flush_item!();
        }
    }
    out[flags_pos] = flags;
    // A trailing, empty flag byte may remain when the input length is a
    // multiple of 8 items; it is harmless (decompress stops at input end),
    // but trim it for cleanliness.
    if flags_pos == out.len() - 1 && flag_bit == 0 {
        out.pop();
    }
    out
}

/// Decompresses LZSS data produced by [`compress`].
///
/// Returns `None` on malformed input (truncated match, offset before start).
pub fn decompress(data: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(data.len() * 3);
    let mut i = 0usize;
    while i < data.len() {
        let flags = data[i];
        i += 1;
        for bit in 0..8 {
            if i >= data.len() {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(data[i]);
                i += 1;
            } else {
                if i + 1 >= data.len() {
                    return None;
                }
                let b0 = data[i] as usize;
                let b1 = data[i + 1] as usize;
                i += 2;
                let off = (b0 << 4 | b1 >> 4) + 1;
                let len = (b1 & 0xF) + MIN_MATCH;
                if off > out.len() {
                    return None;
                }
                let start = out.len() - off;
                for k in 0..len {
                    let byte = out[start + k];
                    out.push(byte);
                }
            }
        }
    }
    Some(out)
}

/// Convenience: compression ratio (compressed/original) of a buffer.
pub fn ratio(data: &[u8]) -> f64 {
    if data.is_empty() {
        return 1.0;
    }
    compress(data).len() as f64 / data.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("valid stream");
        assert_eq!(d, data, "round trip failed for {} bytes", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"ab");
        round_trip(b"abc");
        round_trip(b"aaaa");
    }

    #[test]
    fn repetitive_text_compresses_hard() {
        let data = b"the quick brown fox jumps over the lazy dog. ".repeat(100);
        round_trip(&data);
        let r = ratio(&data);
        assert!(
            r < 0.25,
            "expected >75% reduction on repeated text, ratio {r}"
        );
    }

    #[test]
    fn long_runs_compress() {
        let data = vec![7u8; 10_000];
        round_trip(&data);
        assert!(ratio(&data) < 0.15); // bounded by the 18-byte max match
    }

    #[test]
    fn random_data_grows_bounded() {
        // Pseudo-random via LCG (no rand dependency needed here).
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u8
            })
            .collect();
        let c = compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 2);
        round_trip(&data);
    }

    #[test]
    fn matches_across_window_boundary_are_safe() {
        // Content longer than the window with long-range repetition.
        let unit: Vec<u8> = (0..=255u8).collect();
        let data: Vec<u8> = unit.iter().cycle().take(WINDOW * 3 + 17).copied().collect();
        round_trip(&data);
    }

    #[test]
    fn exact_multiple_of_eight_items() {
        // Eight literals = exactly one flag group.
        round_trip(b"12345678");
        round_trip(b"1234567812345678");
    }

    #[test]
    fn decompress_rejects_garbage() {
        // Flag says match but only one byte follows.
        assert!(decompress(&[0b0000_0000, 0x01]).is_none());
        // Match offset pointing before the start of output.
        assert!(decompress(&[0b0000_0000, 0xFF, 0xF0]).is_none());
    }

    #[test]
    fn all_byte_values_round_trip() {
        let data: Vec<u8> = (0..=255u8).cycle().take(2048).collect();
        round_trip(&data);
    }

    #[test]
    fn max_match_length_exercised() {
        let mut data = vec![b'x'; MAX_MATCH * 4];
        data.extend_from_slice(b"tail");
        round_trip(&data);
    }
}
