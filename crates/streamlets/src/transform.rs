//! Datatype-specific transformation streamlets (§4.3, §7.5).

use crate::codec::raster::{downsample, to_16_grays, Encoding, Image};
use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::{MimeMessage, MimeType};

/// Registers the transformation streamlets.
pub fn register(directory: &StreamletDirectory) {
    directory.register("builtin/img_down_sample", "lossy down-sampling", || {
        Box::new(ImgDownSample::new(2))
    });
    directory.register("builtin/map_to_16_grays", "16-gray transcoding", || {
        Box::new(MapTo16Grays)
    });
    directory.register("builtin/gif2jpeg", "GIF→JPEG conversion", || {
        Box::new(Gif2Jpeg::new(40))
    });
    directory.register("builtin/postscript2text", "PostScript distillation", || {
        Box::new(Postscript2Text)
    });
}

fn decode_image(msg: &MimeMessage, who: &str) -> Result<(Image, Encoding, u8), CoreError> {
    Image::decode(&msg.body).map_err(|e| CoreError::Process {
        streamlet: who.to_string(),
        message: e.to_string(),
    })
}

/// Lossy compression of an image by reducing the sample rate (§4.3).
pub struct ImgDownSample {
    factor: u16,
}

impl ImgDownSample {
    /// Down-sampling factor ≥ 1 in each dimension.
    pub fn new(factor: u16) -> Self {
        ImgDownSample {
            factor: factor.max(1),
        }
    }
}

impl StreamletLogic for ImgDownSample {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let (img, encoding, quality) = decode_image(&msg, ctx.instance())?;
        let reduced = downsample(&img, self.factor);
        let mut out = msg.clone();
        out.set_body(reduced.encode(encoding, quality));
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless codec: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }

    /// Control interface (§8.2.1): `factor = <n>` adjusts the sample-rate
    /// reduction at runtime.
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "factor" => {
                self.factor = value
                    .parse::<u16>()
                    .ok()
                    .filter(|f| *f >= 1)
                    .ok_or_else(|| CoreError::Process {
                        streamlet: "img_down_sample".into(),
                        message: format!("invalid factor `{value}`"),
                    })?;
                Ok(())
            }
            other => Err(CoreError::NotFound {
                kind: "control parameter",
                name: other.to_string(),
            }),
        }
    }
}

/// Reducing images to 16 grays to support shallow grayscale displays
/// (§4.3) — triggered by LOW_GRAYS.
pub struct MapTo16Grays;

impl StreamletLogic for MapTo16Grays {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let (img, _, quality) = decode_image(&msg, ctx.instance())?;
        let gray = to_16_grays(&img);
        let mut out = msg.clone();
        // 16-level gray runs compress extremely well under RLE, so the
        // quantized encoding is always the compact choice here.
        out.set_body(gray.encode(Encoding::Quantized, quality));
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless codec: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }
}

/// Converting incoming image messages into Jpeg format (§7.5): re-encodes
/// the palette (GIF-like) payload as quantized+RLE (JPEG-like) at a fixed
/// quality and rewrites the content type.
pub struct Gif2Jpeg {
    quality: u8,
}

impl Gif2Jpeg {
    /// Target JPEG-like quality (1..=100).
    pub fn new(quality: u8) -> Self {
        Gif2Jpeg {
            quality: quality.clamp(1, 100),
        }
    }
}

impl StreamletLogic for Gif2Jpeg {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let (img, _, _) = decode_image(&msg, ctx.instance())?;
        let mut out = msg.clone();
        out.set_body(img.encode(Encoding::Quantized, self.quality));
        out.set_content_type(&MimeType::new("image", "jpeg"));
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless codec: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }

    /// Control interface (§8.2.1): `quality = 1..=100` adjusts the lossy
    /// re-encoding at runtime (the thesis's example is exactly this kind of
    /// compression-rate parameter).
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "quality" => {
                self.quality = value
                    .parse::<u8>()
                    .ok()
                    .filter(|q| (1..=100).contains(q))
                    .ok_or_else(|| CoreError::Process {
                        streamlet: "gif2jpeg".into(),
                        message: format!("invalid quality `{value}`"),
                    })?;
                Ok(())
            }
            other => Err(CoreError::NotFound {
                kind: "control parameter",
                name: other.to_string(),
            }),
        }
    }
}

/// Discarding format information and converting documents to rich text
/// (§4.3): strips pseudo-PostScript operators, keeping the prose inside
/// `(…) show` strings.
pub struct Postscript2Text;

impl StreamletLogic for Postscript2Text {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let text = String::from_utf8_lossy(&msg.body);
        let mut out_text = String::with_capacity(text.len() / 3);
        for line in text.lines() {
            // Extract every parenthesized string shown on this line.
            let mut rest = line;
            while let Some(start) = rest.find('(') {
                let Some(end_rel) = rest[start + 1..].find(')') else {
                    break;
                };
                let end = start + 1 + end_rel;
                out_text.push_str(&rest[start + 1..end]);
                out_text.push('\n');
                rest = &rest[end + 1..];
            }
        }
        let mut out = msg.clone();
        out.set_body(out_text.into_bytes());
        out.set_content_type(&MimeType::new("text", "richtext"));
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless codec: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> MimeMessage {
        let mut ctx = StreamletCtx::new("t", None);
        logic.process(msg, &mut ctx).unwrap();
        let mut outs = ctx.into_outputs();
        assert_eq!(outs.len(), 1);
        outs.pop().unwrap().1
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn downsample_shrinks_payload() {
        let msg = workload::image_message(&mut rng(), 64);
        let before = msg.body.len();
        let out = run(&mut ImgDownSample::new(2), msg);
        assert!(out.body.len() < before, "{} !< {before}", out.body.len());
        let (img, enc, _) = Image::decode(&out.body).unwrap();
        assert_eq!(img.width, 32);
        assert_eq!(enc, Encoding::Palette, "encoding preserved");
    }

    #[test]
    fn downsample_rejects_non_mgrf() {
        let mut ctx = StreamletCtx::new("t", None);
        let err = ImgDownSample::new(2)
            .process(MimeMessage::text("not an image"), &mut ctx)
            .expect_err("must fail");
        assert!(matches!(err, CoreError::Process { .. }));
    }

    #[test]
    fn gray_mapping_is_single_channel() {
        let msg = workload::image_message(&mut rng(), 32);
        let before = msg.body.len();
        let out = run(&mut MapTo16Grays, msg);
        let (img, enc, _) = Image::decode(&out.body).unwrap();
        assert_eq!(img.channels, 1);
        assert_eq!(enc, Encoding::Quantized);
        assert!(out.body.len() < before);
    }

    #[test]
    fn gif2jpeg_rewrites_type_and_reencodes() {
        let msg = workload::image_message(&mut rng(), 48);
        let out = run(&mut Gif2Jpeg::new(40), msg);
        assert_eq!(out.content_type(), MimeType::new("image", "jpeg"));
        let (_, enc, q) = Image::decode(&out.body).unwrap();
        assert_eq!(enc, Encoding::Quantized);
        assert_eq!(q, 40);
    }

    #[test]
    fn gif2jpeg_lower_quality_smaller_output() {
        let msg = workload::image_message(&mut rng(), 48);
        let hi = run(&mut Gif2Jpeg::new(95), msg.clone());
        let lo = run(&mut Gif2Jpeg::new(10), msg);
        assert!(lo.body.len() < hi.body.len());
    }

    #[test]
    fn postscript_distillation_keeps_prose_drops_operators() {
        let msg = workload::postscript_message(&mut rng(), 2048);
        let before = msg.body.len();
        let out = run(&mut Postscript2Text, msg);
        let text = String::from_utf8(out.body.to_vec()).unwrap();
        assert!(!text.contains("moveto"));
        assert!(!text.contains("findfont"));
        assert!(text.split_whitespace().count() > 10, "prose retained");
        assert!(out.body.len() < before, "distillation shrinks the document");
        assert_eq!(out.content_type(), MimeType::new("text", "richtext"));
    }

    #[test]
    fn postscript_handles_multiple_strings_per_line() {
        let raw = MimeMessage::new(
            &MimeType::new("application", "postscript"),
            &b"(a) show (b) show\n10 10 moveto (c) show\n"[..],
        );
        let out = run(&mut Postscript2Text, raw);
        assert_eq!(&out.body[..], b"a\nb\nc\n");
    }

    #[test]
    fn control_interface_adjusts_downsample_factor() {
        let mut ds = ImgDownSample::new(2);
        ds.control("factor", "4").unwrap();
        let out = run(&mut ds, workload::image_message(&mut rng(), 64));
        let (img, _, _) = Image::decode(&out.body).unwrap();
        assert_eq!(img.width, 16, "factor 4 applied");
        assert!(ds.control("factor", "0").is_err());
        assert!(ds.control("factor", "banana").is_err());
        assert!(ds.control("nope", "1").is_err());
    }

    #[test]
    fn control_interface_adjusts_jpeg_quality() {
        let mut g = Gif2Jpeg::new(90);
        let msg = workload::image_message(&mut rng(), 48);
        let hi = run(&mut g, msg.clone());
        g.control("quality", "10").unwrap();
        let lo = run(&mut g, msg);
        assert!(lo.body.len() < hi.body.len());
        assert!(g.control("quality", "0").is_err());
        assert!(g.control("quality", "101").is_err());
    }

    #[test]
    fn chain_matches_distillation_pipeline() {
        // switch→downsample→16grays path end-to-end at the logic level.
        let msg = workload::image_message(&mut rng(), 64);
        let a = run(&mut ImgDownSample::new(2), msg);
        let b = run(&mut MapTo16Grays, a);
        let (img, _, _) = Image::decode(&b.body).unwrap();
        assert_eq!((img.width, img.channels), (32, 1));
    }
}
