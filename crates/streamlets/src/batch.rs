//! Batching and pagination streamlets.
//!
//! * [`Aggregate`] / [`Disaggregate`] — collect `n` consecutive messages
//!   into one `multipart/mixed` bundle (amortizing per-message link
//!   overheads on very slow links) and the client-side peer that unpacks
//!   it. This is the "aggregation (collecting and collating data from
//!   various sources)" service class of §1.2.1.
//! * [`Paginate`] — TranSend-style distillation (§2.2.1: "long HTML pages
//!   can be broken up into a series of short pages"): splits a text body
//!   into page-sized messages, each labeled with `X-Page`/`X-Page-Count`.

use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::{multipart, MimeMessage};

/// Peer identifier of the aggregator.
pub const DISAGGREGATE_PEER: &str = "disaggregate";

/// Registers the batching streamlets.
pub fn register(directory: &StreamletDirectory) {
    directory.register(
        "builtin/aggregate",
        "bundle n messages into one multipart",
        || Box::new(Aggregate::new(4)),
    );
    directory.register("builtin/disaggregate", "peer of aggregate", || {
        Box::new(Disaggregate)
    });
    directory.register("builtin/paginate", "split long text into pages", || {
        Box::new(Paginate::new(4 * 1024))
    });
}

/// MCL definitions for the batching streamlets.
pub fn defs() -> &'static str {
    r#"
streamlet aggregate {
    port { in pi : */*; out po : multipart/mixed; }
    attribute { type = STATEFUL; library = "builtin/aggregate";
                description = "bundle n messages into one multipart"; }
}
streamlet disaggregate {
    port { in pi : multipart/mixed; out po : */*; }
    attribute { type = STATELESS; library = "builtin/disaggregate";
                description = "unpack multipart bundles"; }
}
streamlet paginate {
    port { in pi : text; out po : text; }
    attribute { type = STATELESS; library = "builtin/paginate";
                description = "split long text into pages"; }
}
"#
}

/// Bundles every `n` incoming messages into one multipart message, pushing
/// the `disaggregate` peer so the client unpacks transparently.
pub struct Aggregate {
    n: usize,
    pending: Vec<MimeMessage>,
    bundles: u64,
}

impl Aggregate {
    /// An aggregator with the given bundle size (≥ 1).
    pub fn new(n: usize) -> Self {
        Aggregate {
            n: n.max(1),
            pending: Vec::new(),
            bundles: 0,
        }
    }

    /// Messages waiting for the current bundle to fill.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    fn flush(&mut self, ctx: &mut StreamletCtx) {
        if self.pending.is_empty() {
            return;
        }
        let boundary = format!("agg{}", self.bundles);
        self.bundles += 1;
        let mut bundle = multipart::compose(&self.pending, &boundary);
        self.pending.clear();
        bundle.push_peer(DISAGGREGATE_PEER);
        ctx.emit("po", bundle);
    }
}

impl StreamletLogic for Aggregate {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        self.pending.push(msg);
        if self.pending.len() >= self.n {
            self.flush(ctx);
        }
        Ok(())
    }

    /// Control interface (§8.2.1): `bundle = <n>` adjusts the bundle size.
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "bundle" => {
                self.n = value
                    .parse::<usize>()
                    .ok()
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| CoreError::Process {
                        streamlet: "aggregate".into(),
                        message: format!("invalid bundle size `{value}`"),
                    })?;
                Ok(())
            }
            other => Err(CoreError::NotFound {
                kind: "control parameter",
                name: other.to_string(),
            }),
        }
    }

    fn on_pause(&mut self) {
        // A paused aggregator must not sit on a partial bundle forever; the
        // next activation re-accumulates. (Flushing here would need an
        // emitter; the stream drains on the next full bundle.)
    }

    fn reset(&mut self) {
        self.pending.clear();
        self.bundles = 0;
    }
}

/// Unpacks a multipart bundle into its member messages (the client-side
/// peer of [`Aggregate`]; also usable server-side).
pub struct Disaggregate;

impl StreamletLogic for Disaggregate {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let parts = multipart::split(&msg).map_err(|e| CoreError::Process {
            streamlet: ctx.instance().to_string(),
            message: e.to_string(),
        })?;
        for part in parts {
            ctx.emit("po", part);
        }
        Ok(())
    }
}

/// Splits text bodies into pages of at most `page_size` bytes, split at
/// line boundaries when possible. Non-text messages pass through.
pub struct Paginate {
    page_size: usize,
}

impl Paginate {
    /// A paginator with the given page size (≥ 64 bytes).
    pub fn new(page_size: usize) -> Self {
        Paginate {
            page_size: page_size.max(64),
        }
    }
}

impl StreamletLogic for Paginate {
    /// Control interface (§8.2.1): `page_size = <bytes>` (min 64).
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "page_size" => {
                self.page_size = value
                    .parse::<usize>()
                    .ok()
                    .filter(|s| *s >= 64)
                    .ok_or_else(|| CoreError::Process {
                        streamlet: "paginate".into(),
                        message: format!("invalid page size `{value}`"),
                    })?;
                Ok(())
            }
            other => Err(CoreError::NotFound {
                kind: "control parameter",
                name: other.to_string(),
            }),
        }
    }

    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        if msg.content_type().top != "text" || msg.body.len() <= self.page_size {
            ctx.emit("po", msg);
            return Ok(());
        }
        // Chunk at newline boundaries within the page budget.
        let body = &msg.body[..];
        let mut pages: Vec<&[u8]> = Vec::new();
        let mut start = 0usize;
        while start < body.len() {
            let hard_end = (start + self.page_size).min(body.len());
            let end = if hard_end == body.len() {
                hard_end
            } else {
                // Back up to the last newline in the window, if any.
                body[start..hard_end]
                    .iter()
                    .rposition(|&b| b == b'\n')
                    .map(|p| start + p + 1)
                    .unwrap_or(hard_end)
            };
            pages.push(&body[start..end]);
            start = end;
        }
        let count = pages.len();
        for (i, page) in pages.into_iter().enumerate() {
            let mut out = msg.clone();
            out.set_body(page.to_vec());
            out.headers.set("X-Page", (i + 1).to_string());
            out.headers.set("X-Page-Count", count.to_string());
            ctx.emit("po", out);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_mime::MimeType;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> Vec<MimeMessage> {
        let mut ctx = StreamletCtx::new("t", None);
        logic.process(msg, &mut ctx).unwrap();
        ctx.into_outputs().into_iter().map(|(_, m)| m).collect()
    }

    #[test]
    fn aggregate_bundles_every_n() {
        let mut a = Aggregate::new(3);
        assert!(run(&mut a, MimeMessage::text("1")).is_empty());
        assert!(run(&mut a, MimeMessage::text("2")).is_empty());
        let out = run(&mut a, MimeMessage::text("3"));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].peer_chain(), vec![DISAGGREGATE_PEER]);
        let parts = multipart::split(&out[0]).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(&parts[0].body[..], b"1");
        assert_eq!(&parts[2].body[..], b"3");
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn aggregate_round_trips_through_disaggregate() {
        let mut a = Aggregate::new(2);
        run(&mut a, MimeMessage::text("alpha"));
        let bundle = run(&mut a, MimeMessage::text("beta")).pop().unwrap();
        // Simulate the client: pop the peer then disaggregate.
        let mut b = bundle.clone();
        assert_eq!(b.pop_peer().as_deref(), Some(DISAGGREGATE_PEER));
        let parts = run(&mut Disaggregate, b);
        assert_eq!(parts.len(), 2);
        assert_eq!(&parts[0].body[..], b"alpha");
        assert_eq!(&parts[1].body[..], b"beta");
    }

    #[test]
    fn disaggregate_rejects_non_multipart() {
        let mut ctx = StreamletCtx::new("t", None);
        assert!(Disaggregate
            .process(MimeMessage::text("plain"), &mut ctx)
            .is_err());
    }

    #[test]
    fn aggregate_reset_clears_state() {
        let mut a = Aggregate::new(5);
        run(&mut a, MimeMessage::text("x"));
        assert_eq!(a.pending(), 1);
        a.reset();
        assert_eq!(a.pending(), 0);
    }

    #[test]
    fn paginate_splits_long_text_at_newlines() {
        let line = "a line of page text\n";
        let body = line.repeat(100); // 2000 bytes
        let mut p = Paginate::new(512);
        let pages = run(&mut p, MimeMessage::text(body.clone()));
        assert!(pages.len() >= 4, "{} pages", pages.len());
        // Every page except possibly the last ends on a line boundary.
        for page in &pages[..pages.len() - 1] {
            assert!(page.body.ends_with(b"\n"));
            assert!(page.body.len() <= 512);
        }
        // Concatenation restores the document.
        let rebuilt: Vec<u8> = pages.iter().flat_map(|p| p.body.to_vec()).collect();
        assert_eq!(rebuilt, body.as_bytes());
        // Page labels are consistent.
        let count = pages.len().to_string();
        assert_eq!(pages[0].headers.get("X-Page"), Some("1"));
        assert_eq!(pages[0].headers.get("X-Page-Count"), Some(count.as_str()));
    }

    #[test]
    fn paginate_passes_short_and_binary_through() {
        let mut p = Paginate::new(1024);
        let short = run(&mut p, MimeMessage::text("tiny"));
        assert_eq!(short.len(), 1);
        assert!(short[0].headers.get("X-Page").is_none());

        let binary = MimeMessage::new(&MimeType::new("image", "gif"), vec![0u8; 8192]);
        let out = run(&mut p, binary.clone());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].body, binary.body);
    }

    #[test]
    fn control_interfaces_adjust_parameters() {
        let mut a = Aggregate::new(4);
        a.control("bundle", "2").unwrap();
        assert!(run(&mut a, MimeMessage::text("1")).is_empty());
        assert_eq!(
            run(&mut a, MimeMessage::text("2")).len(),
            1,
            "bundle of 2 now"
        );
        assert!(a.control("bundle", "0").is_err());

        let mut p = Paginate::new(1024);
        p.control("page_size", "100").unwrap();
        let pages = run(&mut p, MimeMessage::text("y".repeat(250)));
        assert_eq!(pages.len(), 3);
        assert!(
            p.control("page_size", "10").is_err(),
            "below the 64-byte floor"
        );
        assert!(p.control("bogus", "1").is_err());
    }

    #[test]
    fn paginate_handles_unbreakable_text() {
        // No newlines at all: hard splits at the page size.
        let mut p = Paginate::new(100);
        let pages = run(&mut p, MimeMessage::text("x".repeat(350)));
        assert_eq!(pages.len(), 4);
        assert_eq!(pages[0].body.len(), 100);
        assert_eq!(pages[3].body.len(), 50);
    }
}
