//! Structural streamlets: redirector, switch, merge, cache, power saving.

use crate::codec::raster::{downsample, Encoding, Image};
use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::{multipart, MimeMessage};
use std::collections::HashMap;
use std::collections::VecDeque;

/// Registers the structural streamlets.
pub fn register(directory: &StreamletDirectory) {
    directory.register(
        "builtin/redirector",
        "parse + re-encapsulate + forward",
        || Box::new(Redirector::default()),
    );
    directory.register("builtin/forward", "pass-through forwarder", || {
        Box::new(Forward)
    });
    directory.register("builtin/switch", "divide messages by semantic type", || {
        Box::new(Switch)
    });
    directory.register("builtin/merge", "integrate parts into a whole body", || {
        Box::new(Merge::default())
    });
    directory.register("builtin/cache", "content cache", || {
        Box::new(Cache::default())
    });
    directory.register("builtin/power_saving", "power-saving degradation", || {
        Box::new(PowerSaving)
    });
}

/// The §7.2 overhead probe: "its primary logic is to read and parse
/// incoming messages from its input port, encapsulating the necessary
/// headers and sending the messages to its relevant output port."
///
/// The parse/unparse is performed for real — the message is serialized to
/// wire form and re-parsed — so a chain of redirectors measures the
/// inherent per-streamlet cost.
#[derive(Default)]
pub struct Redirector {
    hops: u64,
}

impl StreamletLogic for Redirector {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        self.hops += 1;
        // Parse/unparse the header block for real. The body is *not*
        // copied: §6.7 treats headers as meta-data while message data stays
        // in the pool and travels by reference.
        let header_wire = msg.headers.to_wire();
        let headers =
            mobigate_mime::Headers::parse(&header_wire).map_err(|e| CoreError::Process {
                streamlet: ctx.instance().to_string(),
                message: e.to_string(),
            })?;
        let mut parsed = MimeMessage {
            headers,
            body: msg.body.clone(),
        };
        // …encapsulate the necessary headers…
        parsed.headers.set("X-MobiGATE-Hop", self.hops.to_string());
        // …and forward.
        ctx.emit("po", parsed);
        Ok(())
    }

    // Per-message behavior is independent, so a whole batch can share one
    // dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // The hop counter is diagnostic, not cross-message coupling: each
    // message's transform is independent, so a redirector run can collapse
    // into one fused unit.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.hops = 0;
    }
}

/// Pure pass-through: emits every message unchanged. Where [`Redirector`]
/// measures the §7.2 parse/re-encapsulate overhead, `Forward` isolates the
/// *transport* cost per hop — queueing, routing, and payload handling with
/// zero application work — which is what the memory-plane ablation scores.
pub struct Forward;

impl StreamletLogic for Forward {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        ctx.emit("po", msg);
        Ok(())
    }

    fn supports_batch(&self) -> bool {
        true
    }

    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            ctx.emit("po", msg);
        }
        Ok(())
    }
}

/// Divides incoming messages based on the semantic type of the data
/// (§4.3): images go to `po1`, everything else to `po2`.
pub struct Switch;

impl StreamletLogic for Switch {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let ty = msg.content_type();
        if ty.top == "image" {
            ctx.emit("po1", msg);
        } else {
            ctx.emit("po2", msg);
        }
        Ok(())
    }
}

/// Integrates different types of information into a whole body (§4.3).
///
/// Stateful: holds one pending image and one pending non-image message;
/// when both slots are filled it emits a `multipart/mixed` message. The
/// paper's Merge has two input ports; since the logic interface is
/// port-agnostic, classification falls back to the content type, which is
/// equivalent for the distillation pipeline (port `pi1` carries images,
/// `pi2` text).
#[derive(Default)]
pub struct Merge {
    images: VecDeque<MimeMessage>,
    texts: VecDeque<MimeMessage>,
    emitted: u64,
}

impl StreamletLogic for Merge {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        if msg.content_type().top == "image" {
            self.images.push_back(msg);
        } else {
            self.texts.push_back(msg);
        }
        while let (Some(img), Some(txt)) = (self.images.front(), self.texts.front()) {
            let combined =
                multipart::compose(&[img.clone(), txt.clone()], &format!("mg{}", self.emitted));
            self.emitted += 1;
            self.images.pop_front();
            self.texts.pop_front();
            ctx.emit("po", combined);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.images.clear();
        self.texts.clear();
        self.emitted = 0;
    }
}

/// A content cache keyed by the `X-Cache-Key` header: the first message
/// with a key populates the cache; later messages with the same key are
/// served the cached body (marked `X-Cache: HIT`). Messages without a key
/// pass through untouched.
#[derive(Default)]
pub struct Cache {
    entries: HashMap<String, MimeMessage>,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }
    /// Cache misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

impl StreamletLogic for Cache {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let Some(key) = msg.headers.get("X-Cache-Key").map(str::to_owned) else {
            ctx.emit("po", msg);
            return Ok(());
        };
        if let Some(cached) = self.entries.get(&key) {
            self.hits += 1;
            let mut hit = cached.clone();
            hit.headers.set("X-Cache", "HIT");
            ctx.emit("po", hit);
        } else {
            self.misses += 1;
            self.entries.insert(key, msg.clone());
            let mut miss = msg;
            miss.headers.set("X-Cache", "MISS");
            ctx.emit("po", miss);
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.entries.clear();
        self.hits = 0;
        self.misses = 0;
    }
}

/// The power-saving service entity invoked on LOW_ENERGY (§4.3): degrades
/// content to reduce client-side decode energy — images are down-sampled
/// 2× and re-encoded at low quality; text passes through with a marker
/// header so clients can dim rendering.
pub struct PowerSaving;

impl StreamletLogic for PowerSaving {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let mut out = msg.clone();
        if msg.content_type().top == "image" {
            if let Ok((img, _, _)) = Image::decode(&msg.body) {
                let reduced = downsample(&img, 2);
                out.set_body(reduced.encode(Encoding::Quantized, 30));
            }
        }
        out.headers.set("X-Power-Saving", "on");
        ctx.emit("po", out);
        Ok(())
    }

    // Pure per-message degradation: safe to chain-fuse.
    fn fusable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> Vec<(String, MimeMessage)> {
        let mut ctx = StreamletCtx::new("test", None);
        logic.process(msg, &mut ctx).unwrap();
        ctx.into_outputs()
    }

    #[test]
    fn redirector_forwards_intact_with_hop_header() {
        let mut r = Redirector::default();
        let mut msg = MimeMessage::text("payload");
        msg.push_peer("someone");
        let outs = run(&mut r, msg.clone());
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "po");
        assert_eq!(outs[0].1.body, msg.body);
        assert_eq!(outs[0].1.peer_chain(), vec!["someone"]);
        assert_eq!(outs[0].1.headers.get("X-MobiGATE-Hop"), Some("1"));
        let outs2 = run(&mut r, MimeMessage::text("x"));
        assert_eq!(outs2[0].1.headers.get("X-MobiGATE-Hop"), Some("2"));
        r.reset();
        let outs3 = run(&mut r, MimeMessage::text("x"));
        assert_eq!(outs3[0].1.headers.get("X-MobiGATE-Hop"), Some("1"));
    }

    #[test]
    fn switch_routes_by_type() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = Switch;
        let img = workload::image_message(&mut rng, 8);
        let txt = workload::text_message(&mut rng, 64);
        assert_eq!(run(&mut s, img)[0].0, "po1");
        assert_eq!(run(&mut s, txt)[0].0, "po2");
        // application/postscript is "not image" → po2.
        let ps = workload::postscript_message(&mut rng, 64);
        assert_eq!(run(&mut s, ps)[0].0, "po2");
    }

    #[test]
    fn merge_pairs_image_with_text() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut m = Merge::default();
        let img = workload::image_message(&mut rng, 8);
        assert!(
            run(&mut m, img.clone()).is_empty(),
            "waits for the text part"
        );
        let txt = workload::text_message(&mut rng, 32);
        let outs = run(&mut m, txt.clone());
        assert_eq!(outs.len(), 1);
        let parts = multipart::split(&outs[0].1).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].body, img.body);
        assert_eq!(parts[1].body, txt.body);
    }

    #[test]
    fn merge_queues_bursts_in_order() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut m = Merge::default();
        let i1 = workload::image_message(&mut rng, 8);
        let i2 = workload::image_message(&mut rng, 8);
        assert!(run(&mut m, i1.clone()).is_empty());
        assert!(run(&mut m, i2.clone()).is_empty());
        let t1 = workload::text_message(&mut rng, 16);
        let outs = run(&mut m, t1);
        assert_eq!(outs.len(), 1);
        let parts = multipart::split(&outs[0].1).unwrap();
        assert_eq!(parts[0].body, i1.body, "FIFO pairing");
    }

    #[test]
    fn cache_hit_serves_stored_body() {
        let mut c = Cache::default();
        let mut first = MimeMessage::text("original");
        first.headers.set("X-Cache-Key", "/index.html");
        let outs = run(&mut c, first);
        assert_eq!(outs[0].1.headers.get("X-Cache"), Some("MISS"));

        let mut second = MimeMessage::text("changed upstream");
        second.headers.set("X-Cache-Key", "/index.html");
        let outs = run(&mut c, second);
        assert_eq!(outs[0].1.headers.get("X-Cache"), Some("HIT"));
        assert_eq!(&outs[0].1.body[..], b"original");
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn cache_passthrough_without_key() {
        let mut c = Cache::default();
        let outs = run(&mut c, MimeMessage::text("anon"));
        assert!(outs[0].1.headers.get("X-Cache").is_none());
    }

    #[test]
    fn cache_reset_clears_entries() {
        let mut c = Cache::default();
        let mut m = MimeMessage::text("v");
        m.headers.set("X-Cache-Key", "k");
        run(&mut c, m.clone());
        c.reset();
        let outs = run(&mut c, m);
        assert_eq!(outs[0].1.headers.get("X-Cache"), Some("MISS"));
    }

    #[test]
    fn power_saving_shrinks_images_and_marks_text() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut p = PowerSaving;
        let img = workload::image_message(&mut rng, 64);
        let before = img.body.len();
        let outs = run(&mut p, img);
        assert!(
            outs[0].1.body.len() < before,
            "degraded image must be smaller"
        );
        assert_eq!(outs[0].1.headers.get("X-Power-Saving"), Some("on"));

        let txt = MimeMessage::text("hello");
        let outs = run(&mut p, txt);
        assert_eq!(&outs[0].1.body[..], b"hello");
        assert_eq!(outs[0].1.headers.get("X-Power-Saving"), Some("on"));
    }
}
