//! Fault injection for the supervision chaos harness.
//!
//! The paper's evaluation assumes well-behaved streamlets; the supervision
//! extension does not. [`FaultInjector`] is a pass-through streamlet that
//! misbehaves on purpose — panicking, stalling, or corrupting output at
//! configurable rates — so `repro -- chaos` can measure end-to-end delivery
//! while the supervisor restarts it.

use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::MimeMessage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Marker header: a message carrying it makes the injector panic
/// *deterministically*, every time it is (re)delivered — the poison-message
/// scenario the dead-letter queue exists for.
pub const POISON_HEADER: &str = "X-Chaos-Poison";

/// Header stamped onto garbage-corrupted output so receivers can count it.
pub const GARBAGE_HEADER: &str = "X-Chaos-Garbage";

/// Registers the fault-injection streamlet.
pub fn register(directory: &StreamletDirectory) {
    directory.register(
        "builtin/fault_injector",
        "pass-through that panics/stalls/corrupts at configurable rates",
        || Box::new(FaultInjector::default()),
    );
}

/// A pass-through streamlet that injects faults (stateful so each restart
/// builds a genuinely fresh instance from the directory factory).
///
/// Knobs, settable at construction or via `control()`:
///
/// | key | meaning |
/// |---|---|
/// | `panic_rate` | probability in `[0,1]` of panicking per message |
/// | `garbage_rate` | probability of emitting a corrupted body instead |
/// | `delay_ms` | fixed processing delay per message |
/// | `seed` | reseeds the internal RNG (deterministic runs) |
///
/// Independent of the rates, any message carrying [`POISON_HEADER`] panics
/// deterministically.
pub struct FaultInjector {
    panic_rate: f64,
    garbage_rate: f64,
    delay: Duration,
    rng: StdRng,
    processed: u64,
}

impl Default for FaultInjector {
    fn default() -> Self {
        FaultInjector::new(0.0, 0.0, Duration::ZERO, 0x5eed)
    }
}

impl FaultInjector {
    /// An injector with explicit rates.
    pub fn new(panic_rate: f64, garbage_rate: f64, delay: Duration, seed: u64) -> Self {
        FaultInjector {
            panic_rate: panic_rate.clamp(0.0, 1.0),
            garbage_rate: garbage_rate.clamp(0.0, 1.0),
            delay,
            rng: StdRng::seed_from_u64(seed),
            processed: 0,
        }
    }

    /// Messages successfully passed through so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }
}

fn parse<T: std::str::FromStr>(key: &str, value: &str) -> Result<T, CoreError> {
    value.parse().map_err(|_| CoreError::NotFound {
        kind: "control parameter",
        name: format!("{key}={value}"),
    })
}

impl StreamletLogic for FaultInjector {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        if msg.headers.get(POISON_HEADER).is_some() {
            panic!("chaos: poison message");
        }
        if self.panic_rate > 0.0 && self.rng.gen_bool(self.panic_rate) {
            panic!("chaos: injected panic");
        }
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.processed += 1;
        if self.garbage_rate > 0.0 && self.rng.gen_bool(self.garbage_rate) {
            let mut garbled = msg.clone();
            let noise: Vec<u8> = (0..msg.body.len().min(64))
                .map(|_| self.rng.gen::<u8>())
                .collect();
            garbled.set_body(noise);
            garbled.headers.set(GARBAGE_HEADER, "1");
            ctx.emit("po", garbled);
        } else {
            ctx.emit("po", msg);
        }
        Ok(())
    }

    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        match key {
            "panic_rate" => self.panic_rate = parse::<f64>(key, value)?.clamp(0.0, 1.0),
            "garbage_rate" => self.garbage_rate = parse::<f64>(key, value)?.clamp(0.0, 1.0),
            "delay_ms" => self.delay = Duration::from_millis(parse(key, value)?),
            "seed" => self.rng = StdRng::seed_from_u64(parse(key, value)?),
            _ => {
                return Err(CoreError::NotFound {
                    kind: "control parameter",
                    name: format!("{key}={value}"),
                })
            }
        }
        Ok(())
    }

    fn reset(&mut self) {
        self.processed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> Vec<(String, MimeMessage)> {
        let mut ctx = StreamletCtx::new("test", None);
        logic.process(msg, &mut ctx).unwrap();
        ctx.into_outputs()
    }

    #[test]
    fn passes_through_when_benign() {
        let mut f = FaultInjector::default();
        let outs = run(&mut f, MimeMessage::text("hello"));
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].0, "po");
        assert_eq!(&outs[0].1.body[..], b"hello");
        assert_eq!(f.processed(), 1);
    }

    #[test]
    fn poison_header_panics_deterministically() {
        let mut f = FaultInjector::default();
        let mut msg = MimeMessage::text("bad");
        msg.headers.set(POISON_HEADER, "1");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = StreamletCtx::new("test", None);
            let _ = f.process(msg, &mut ctx);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn panic_rate_one_always_panics() {
        let mut f = FaultInjector::new(1.0, 0.0, Duration::ZERO, 7);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = StreamletCtx::new("test", None);
            let _ = f.process(MimeMessage::text("x"), &mut ctx);
        }));
        assert!(err.is_err());
    }

    #[test]
    fn garbage_rate_one_corrupts_and_marks() {
        let mut f = FaultInjector::new(0.0, 1.0, Duration::ZERO, 7);
        let outs = run(&mut f, MimeMessage::text("original body text"));
        assert_eq!(outs[0].1.headers.get(GARBAGE_HEADER), Some("1"));
        assert_ne!(&outs[0].1.body[..], b"original body text");
    }

    #[test]
    fn control_knobs_update_behaviour() {
        let mut f = FaultInjector::default();
        f.control("panic_rate", "1.0").unwrap();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut ctx = StreamletCtx::new("test", None);
            let _ = f.process(MimeMessage::text("x"), &mut ctx);
        }));
        assert!(err.is_err());
        assert!(f.control("panic_rate", "nonsense").is_err());
        assert!(f.control("unknown_knob", "1").is_err());
    }
}
