//! Encryption streamlets (the paper's "encoding secured data" service
//! class, §3.2, and the §5.2.5 preorder example: "encryption must be
//! deployed before the compression entity").
//!
//! The cipher is a keyed XOR keystream (xorshift64* keyed by a shared
//! secret plus a per-message nonce). It is **not** cryptographically
//! strong — it exists to exercise the peer-streamlet machinery with a
//! genuinely reversible byte-level transformation, which is all the
//! evaluation needs (DESIGN.md §3).

use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::{MimeMessage, MimeType};
use std::str::FromStr;

/// Peer identifier of the encryptor.
pub const DECRYPT_PEER: &str = "decrypt";
/// Header carrying the per-message nonce.
pub const NONCE_HEADER: &str = "X-Crypt-Nonce";
/// Header preserving the pre-encryption content type.
pub const ORIGINAL_TYPE: &str = "X-Crypt-Original-Type";

/// Demo shared secret (a deployment would provision per-client keys).
pub const DEFAULT_KEY: u64 = 0x4d6f_6269_4741_5445; // "MobiGATE"

/// Registers encryptor and decryptor with the default key.
pub fn register(directory: &StreamletDirectory) {
    directory.register("builtin/encrypt", "XOR-keystream encryption", || {
        Box::new(Encrypt::new(DEFAULT_KEY))
    });
    directory.register("builtin/decrypt", "peer decryptor", || {
        Box::new(Decrypt::new(DEFAULT_KEY))
    });
}

fn keystream_apply(key: u64, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut state = key ^ nonce.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut out = Vec::with_capacity(data.len());
    let mut word = 0u64;
    for (i, &b) in data.iter().enumerate() {
        if i % 8 == 0 {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            word = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        out.push(b ^ (word >> ((i % 8) * 8)) as u8);
    }
    out
}

/// Stream-cipher encryption; pushes the `decrypt` peer.
pub struct Encrypt {
    key: u64,
    counter: u64,
}

impl Encrypt {
    /// An encryptor with the given shared key.
    pub fn new(key: u64) -> Self {
        Encrypt { key, counter: 0 }
    }
}

impl StreamletLogic for Encrypt {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        self.counter += 1;
        let nonce = self.counter;
        let mut out = msg.clone();
        out.headers
            .set(ORIGINAL_TYPE, msg.content_type().to_string());
        out.headers.set(NONCE_HEADER, nonce.to_string());
        out.set_body(keystream_apply(self.key, nonce, &msg.body));
        out.set_content_type(&MimeType::new("application", "octet-stream"));
        out.push_peer(DECRYPT_PEER);
        ctx.emit("po", out);
        Ok(())
    }

    fn reset(&mut self) {
        self.counter = 0;
    }

    // The nonce counter only orders nonces; each message's transform is
    // self-contained (nonce travels in the header), so fusion — which
    // preserves sequential processing on one driver — is safe.
    fn fusable(&self) -> bool {
        true
    }
}

/// The client-side peer: reverses [`Encrypt`].
pub struct Decrypt {
    key: u64,
}

impl Decrypt {
    /// A decryptor with the given shared key.
    pub fn new(key: u64) -> Self {
        Decrypt { key }
    }
}

impl StreamletLogic for Decrypt {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let nonce: u64 = msg
            .headers
            .get(NONCE_HEADER)
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| CoreError::Process {
                streamlet: ctx.instance().to_string(),
                message: "missing or invalid crypt nonce".into(),
            })?;
        let mut out = msg.clone();
        out.set_body(keystream_apply(self.key, nonce, &msg.body));
        let original = out
            .headers
            .get(ORIGINAL_TYPE)
            .and_then(|t| MimeType::from_str(t).ok())
            .unwrap_or_else(|| MimeType::new("application", "octet-stream"));
        out.set_content_type(&original);
        out.headers.remove(ORIGINAL_TYPE);
        out.headers.remove(NONCE_HEADER);
        ctx.emit("po", out);
        Ok(())
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> MimeMessage {
        let mut ctx = StreamletCtx::new("t", None);
        logic.process(msg, &mut ctx).unwrap();
        ctx.into_outputs().pop().unwrap().1
    }

    #[test]
    fn encrypt_decrypt_round_trip() {
        let mut e = Encrypt::new(DEFAULT_KEY);
        let mut d = Decrypt::new(DEFAULT_KEY);
        let msg = MimeMessage::text("attack at dawn, over the wireless link");
        let ct = run(&mut e, msg.clone());
        assert_ne!(ct.body, msg.body, "ciphertext differs");
        assert_eq!(ct.peer_chain(), vec![DECRYPT_PEER]);
        let pt = run(&mut d, ct);
        assert_eq!(pt.body, msg.body);
        assert_eq!(pt.content_type(), msg.content_type());
        assert!(pt.headers.get(NONCE_HEADER).is_none());
    }

    #[test]
    fn nonce_changes_per_message() {
        let mut e = Encrypt::new(DEFAULT_KEY);
        let a = run(&mut e, MimeMessage::text("same plaintext"));
        let b = run(&mut e, MimeMessage::text("same plaintext"));
        assert_ne!(
            a.body, b.body,
            "identical plaintexts must differ in ciphertext"
        );
    }

    #[test]
    fn wrong_key_garbles() {
        let mut e = Encrypt::new(1);
        let mut d = Decrypt::new(2);
        let msg = MimeMessage::text("secret");
        let pt = run(&mut d, run(&mut e, msg.clone()));
        assert_ne!(pt.body, msg.body);
    }

    #[test]
    fn decrypt_requires_nonce() {
        let mut d = Decrypt::new(DEFAULT_KEY);
        let mut ctx = StreamletCtx::new("t", None);
        assert!(d.process(MimeMessage::text("no nonce"), &mut ctx).is_err());
    }

    #[test]
    fn empty_body_round_trips() {
        let mut e = Encrypt::new(DEFAULT_KEY);
        let mut d = Decrypt::new(DEFAULT_KEY);
        let pt = run(&mut d, run(&mut e, MimeMessage::text("")));
        assert!(pt.body.is_empty());
    }

    #[test]
    fn binary_bodies_round_trip() {
        let mut e = Encrypt::new(DEFAULT_KEY);
        let mut d = Decrypt::new(DEFAULT_KEY);
        let body: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let msg = MimeMessage::new(&MimeType::new("application", "octet-stream"), body.clone());
        let pt = run(&mut d, run(&mut e, msg));
        assert_eq!(pt.body.to_vec(), body);
    }
}
