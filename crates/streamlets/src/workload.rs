//! Synthetic workload generation (DESIGN.md §3 substitution).
//!
//! The §7.5 experiment continuously generates "an amount of real image and
//! text messages". This module produces the equivalents:
//!
//! * [`gen_text`] — redundant English-like text built from a small
//!   vocabulary (LZSS-compressible by ≈70-80%, matching the paper's "up to
//!   75%" text compressor);
//! * [`gen_postscript`] — pseudo-PostScript wrapping that text in stack
//!   operators the `postscript2text` streamlet strips;
//! * [`gen_image`] — smooth structured MGRF images (gradients + blobs) in
//!   GIF-like palette encoding, responsive to down-sampling and
//!   quantization;
//! * [`MessageMix`] — an iterator yielding a deterministic image/text
//!   message mix for end-to-end runs.

use crate::codec::raster::{Encoding, Image};
use mobigate_mime::{MimeMessage, MimeType};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const VOCAB: &[&str] = &[
    "mobile",
    "gateway",
    "proxy",
    "streamlet",
    "channel",
    "wireless",
    "bandwidth",
    "adaptive",
    "middleware",
    "composition",
    "coordination",
    "message",
    "network",
    "transport",
    "entity",
    "the",
    "a",
    "of",
    "and",
    "for",
    "with",
    "over",
    "across",
    "between",
    "system",
];

/// Generates `len` bytes of redundant English-like text.
pub fn gen_text(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        let word = VOCAB[rng.gen_range(0..VOCAB.len())];
        out.extend_from_slice(word.as_bytes());
        out.push(if rng.gen_ratio(1, 12) { b'.' } else { b' ' });
        if rng.gen_ratio(1, 40) {
            out.push(b'\n');
        }
    }
    out.truncate(len);
    out
}

/// Generates a pseudo-PostScript document of roughly `len` bytes: text
/// interleaved with formatting operators (`moveto`, `setfont`, `show`…)
/// that the distiller discards.
pub fn gen_postscript(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len + 64);
    out.extend_from_slice(b"%!PS-Adobe-2.0\n");
    while out.len() < len {
        let x = rng.gen_range(0..612);
        let y = rng.gen_range(0..792);
        out.extend_from_slice(format!("{x} {y} moveto\n").as_bytes());
        if rng.gen_ratio(1, 6) {
            out.extend_from_slice(b"/Times-Roman findfont 12 scalefont setfont\n");
        }
        let words = rng.gen_range(4..12);
        let mut line = String::from("(");
        for _ in 0..words {
            line.push_str(VOCAB[rng.gen_range(0..VOCAB.len())]);
            line.push(' ');
        }
        line.pop();
        line.push_str(") show\n");
        out.extend_from_slice(line.as_bytes());
    }
    out.extend_from_slice(b"showpage\n");
    out
}

/// Generates a structured image (gradient background + random blobs) and
/// encodes it; `side` is the square dimension in pixels.
pub fn gen_image(rng: &mut StdRng, side: u16, encoding: Encoding) -> Vec<u8> {
    let mut img = Image::new(side, side, 3);
    let w = side as usize;
    // Smooth gradient background.
    for y in 0..w {
        for x in 0..w {
            let i = (y * w + x) * 3;
            img.samples[i] = ((x * 255) / w.max(1)) as u8;
            img.samples[i + 1] = ((y * 255) / w.max(1)) as u8;
            img.samples[i + 2] = (((x + y) * 127) / w.max(1)) as u8;
        }
    }
    // A few rectangular blobs for structure.
    for _ in 0..rng.gen_range(3..8) {
        let bx = rng.gen_range(0..w);
        let by = rng.gen_range(0..w);
        let bw = rng.gen_range(2..w.max(3) / 2 + 2);
        let bh = rng.gen_range(2..w.max(3) / 2 + 2);
        let color: [u8; 3] = [rng.gen(), rng.gen(), rng.gen()];
        for y in by..(by + bh).min(w) {
            for x in bx..(bx + bw).min(w) {
                let i = (y * w + x) * 3;
                img.samples[i..i + 3].copy_from_slice(&color);
            }
        }
    }
    img.encode(encoding, 90)
}

/// Wraps generated content in MIME messages.
pub fn text_message(rng: &mut StdRng, len: usize) -> MimeMessage {
    MimeMessage::new(&MimeType::new("text", "plain"), gen_text(rng, len))
}

/// A pseudo-PostScript MIME message.
pub fn postscript_message(rng: &mut StdRng, len: usize) -> MimeMessage {
    MimeMessage::new(
        &MimeType::new("application", "postscript"),
        gen_postscript(rng, len),
    )
}

/// A GIF-like image MIME message (`image/gif` content type, MGRF palette
/// body).
pub fn image_message(rng: &mut StdRng, side: u16) -> MimeMessage {
    MimeMessage::new(
        &MimeType::new("image", "gif"),
        gen_image(rng, side, Encoding::Palette),
    )
}

/// A deterministic image/text message mix for end-to-end experiments
/// (§7.5: "an amount of real image and text messages are generated
/// continuously").
pub struct MessageMix {
    rng: StdRng,
    /// Out of 100: how many messages are images.
    image_percent: u8,
    image_side: u16,
    text_len: usize,
    counter: u64,
}

impl MessageMix {
    /// A mix with the given image share, image dimension, and text size.
    pub fn new(seed: u64, image_percent: u8, image_side: u16, text_len: usize) -> Self {
        MessageMix {
            rng: StdRng::seed_from_u64(seed),
            image_percent: image_percent.min(100),
            image_side,
            text_len,
            counter: 0,
        }
    }
}

impl Iterator for MessageMix {
    type Item = MimeMessage;

    fn next(&mut self) -> Option<MimeMessage> {
        self.counter += 1;
        let roll = self.rng.gen_range(0..100u8);
        Some(if roll < self.image_percent {
            image_message(&mut self.rng, self.image_side)
        } else {
            text_message(&mut self.rng, self.text_len)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::lzss;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn text_has_requested_length_and_compresses() {
        let t = gen_text(&mut rng(), 8192);
        assert_eq!(t.len(), 8192);
        let r = lzss::ratio(&t);
        assert!(
            r < 0.45,
            "generated text must be highly compressible, got {r}"
        );
    }

    #[test]
    fn text_is_deterministic_per_seed() {
        assert_eq!(gen_text(&mut rng(), 512), gen_text(&mut rng(), 512));
        let other = gen_text(&mut StdRng::seed_from_u64(7), 512);
        assert_ne!(gen_text(&mut rng(), 512), other);
    }

    #[test]
    fn postscript_contains_operators_and_prose() {
        let ps = gen_postscript(&mut rng(), 4096);
        let s = String::from_utf8_lossy(&ps);
        assert!(s.starts_with("%!PS-Adobe"));
        assert!(s.contains("moveto"));
        assert!(s.contains("show"));
        assert!(s.contains("mobile") || s.contains("gateway") || s.contains("the"));
    }

    #[test]
    fn image_decodes_and_has_structure() {
        use crate::codec::raster::Image;
        let bytes = gen_image(&mut rng(), 64, Encoding::Palette);
        let (img, enc, _) = Image::decode(&bytes).unwrap();
        assert_eq!(enc, Encoding::Palette);
        assert_eq!(img.width, 64);
        // Not a constant image.
        let first = img.samples[0];
        assert!(img.samples.iter().any(|&s| s != first));
    }

    #[test]
    fn messages_carry_proper_types() {
        let mut r = rng();
        assert_eq!(
            text_message(&mut r, 100).content_type().to_string(),
            "text/plain"
        );
        assert_eq!(
            postscript_message(&mut r, 100).content_type().to_string(),
            "application/postscript"
        );
        assert_eq!(
            image_message(&mut r, 16).content_type().to_string(),
            "image/gif"
        );
    }

    #[test]
    fn mix_respects_ratio_roughly() {
        let mix = MessageMix::new(1, 30, 16, 256);
        let msgs: Vec<_> = mix.take(500).collect();
        let images = msgs
            .iter()
            .filter(|m| m.content_type().top == "image")
            .count();
        assert!(
            (100..200).contains(&images),
            "expected ~150 images, got {images}"
        );
    }

    #[test]
    fn mix_is_deterministic() {
        let a: Vec<_> = MessageMix::new(9, 50, 8, 64).take(20).collect();
        let b: Vec<_> = MessageMix::new(9, 50, 8, 64).take(20).collect();
        assert_eq!(a, b);
    }
}
