//! Built-in MobiGATE streamlets (§4.3, §7.2, §7.5) and the codecs behind
//! them.
//!
//! The thesis evaluates MobiGATE with a datatype-specific distillation
//! application (Figure 4-6) and a web-acceleration application (§7.5) built
//! from these service entities:
//!
//! | Streamlet | Module | Paper role |
//! |---|---|---|
//! | `switch` | [`basic`] | divide messages by semantic type |
//! | `redirector` | [`basic`] | parse + re-encapsulate + forward (§7.2) |
//! | `merge` | [`basic`] | integrate parts into a whole body |
//! | `cache` | [`basic`] | content caching |
//! | `power_saving` | [`basic`] | the power-saving entity |
//! | `img_down_sample` | [`transform`] | lossy image down-sampling |
//! | `map_to_16_grays` | [`transform`] | shallow-grayscale transcoding |
//! | `gif2jpeg` | [`transform`] | image format conversion (§7.5) |
//! | `postscript2text` | [`transform`] | document distillation |
//! | `text_compress` / `text_decompress` | [`compress`] | generic text compression (≈75% reduction) |
//! | `encrypt` / `decrypt` | [`crypto`] | secured data encoding |
//! | `communicator` | [`comm`] | send messages onto the network (§7.5) |
//!
//! Since the original image/document data sets are unavailable, [`codec`]
//! implements a small, *real* codec suite over a synthetic raster format
//! (`MGRF`) and [`workload`] generates structured pseudo-images and
//! redundant pseudo-text whose size behaviour under these streamlets
//! mirrors the paper's (documented in DESIGN.md §3).
//!
//! [`register_builtins`] advertises everything in a
//! [`mobigate_core::StreamletDirectory`] under `builtin/<name>` keys, and
//! [`standard_defs`] returns the matching MCL streamlet definitions.

pub mod basic;
pub mod batch;
pub mod codec;
pub mod comm;
pub mod compress;
pub mod crypto;
pub mod fault;
pub mod transform;
pub mod workload;

use mobigate_core::StreamletDirectory;

/// Registers every built-in streamlet under its `builtin/<name>` library
/// key.
pub fn register_builtins(directory: &StreamletDirectory) {
    basic::register(directory);
    batch::register(directory);
    transform::register(directory);
    compress::register(directory);
    crypto::register(directory);
    fault::register(directory);
}

/// MCL streamlet definitions for the built-ins, ready to prepend to
/// composition scripts. (The `communicator` is excluded: it is constructed
/// programmatically around a transport.)
pub fn standard_defs() -> &'static str {
    r#"
streamlet switch {
    port { in pi : */*; out po1 : image; out po2 : text; }
    attribute { type = STATELESS; library = "builtin/switch";
                description = "divide incoming messages by semantic type"; }
}
streamlet redirector {
    port { in pi : */*; out po : */*; }
    attribute { type = STATELESS; library = "builtin/redirector";
                description = "parse and re-encapsulate messages (overhead probe)"; }
}
streamlet merge {
    port { in pi1 : image; in pi2 : text; out po : multipart/mixed; }
    attribute { type = STATEFUL; library = "builtin/merge";
                description = "integrate different types of information"; }
}
streamlet cache {
    port { in pi : */*; out po : */*; }
    attribute { type = STATEFUL; library = "builtin/cache";
                description = "cache of original and transformed content"; }
}
streamlet power_saving {
    port { in pi : */*; out po : */*; }
    attribute { type = STATELESS; library = "builtin/power_saving";
                description = "power-saving degradation of content"; }
}
streamlet img_down_sample {
    port { in pi : image; out po : image; }
    attribute { type = STATELESS; library = "builtin/img_down_sample";
                description = "lossy compression by reducing the sample rate"; }
}
streamlet map_to_16_grays {
    port { in pi : image; out po : image; }
    attribute { type = STATELESS; library = "builtin/map_to_16_grays";
                description = "reduce images to 16 grays"; }
}
streamlet gif2jpeg {
    port { in pi : image/gif; out po : image/jpeg; }
    attribute { type = STATELESS; library = "builtin/gif2jpeg";
                description = "convert images into Jpeg format"; }
}
streamlet postscript2text {
    port { in pi : application/postscript; out po : text/richtext; }
    attribute { type = STATELESS; library = "builtin/postscript2text";
                description = "discard formatting, convert to rich text"; }
}
streamlet text_compress {
    port { in pi : text; out po : text; }
    attribute { type = STATELESS; library = "builtin/text_compress";
                description = "a generic text compressor"; }
}
streamlet text_decompress {
    port { in pi : text; out po : text; }
    attribute { type = STATELESS; library = "builtin/text_decompress";
                description = "peer of text_compress"; }
}
streamlet encrypt {
    port { in pi : */*; out po : application/octet-stream; }
    attribute { type = STATELESS; library = "builtin/encrypt";
                description = "stream-cipher encryption"; }
}
streamlet decrypt {
    port { in pi : application/octet-stream; out po : */*; }
    attribute { type = STATELESS; library = "builtin/decrypt";
                description = "peer of encrypt"; }
}
streamlet fault_injector {
    port { in pi : */*; out po : */*; }
    attribute { type = STATEFUL; library = "builtin/fault_injector";
                description = "chaos probe: panics/stalls/corrupts at configurable rates"; }
}
"#
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_mcl::compile::compile;

    #[test]
    fn standard_defs_compile() {
        let src = format!("{}\nmain stream empty {{ }}", standard_defs());
        compile(&src).expect("standard definitions must compile");
    }

    #[test]
    fn register_builtins_advertises_everything() {
        let dir = StreamletDirectory::new();
        register_builtins(&dir);
        for lib in [
            "builtin/switch",
            "builtin/redirector",
            "builtin/merge",
            "builtin/cache",
            "builtin/power_saving",
            "builtin/img_down_sample",
            "builtin/map_to_16_grays",
            "builtin/gif2jpeg",
            "builtin/postscript2text",
            "builtin/text_compress",
            "builtin/text_decompress",
            "builtin/encrypt",
            "builtin/decrypt",
            "builtin/aggregate",
            "builtin/disaggregate",
            "builtin/paginate",
            "builtin/fault_injector",
        ] {
            assert!(dir.contains(lib), "missing {lib}");
        }
    }
}
