//! The generic text compressor and its client-side peer (§4.3, §6.5,
//! §7.5).
//!
//! `text_compress` LZSS-compresses the body, records the original content
//! type in `X-Original-Type`, and pushes its peer identifier onto the
//! `X-MobiGATE-Peer` chain so the client's Message Distributor can route
//! the message to `text_decompress` for reverse processing (§6.5).

use crate::codec::lzss;
use mobigate_core::{CoreError, Emitter, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::{MimeMessage, MimeType};
use std::str::FromStr;

/// Peer identifier of the compressor (what the client looks up).
pub const DECOMPRESS_PEER: &str = "text_decompress";
/// Header preserving the pre-compression content type.
pub const ORIGINAL_TYPE: &str = "X-Original-Type";

/// Registers compressor and decompressor.
pub fn register(directory: &StreamletDirectory) {
    directory.register(
        "builtin/text_compress",
        "generic LZSS text compressor",
        || Box::new(TextCompress),
    );
    directory.register("builtin/text_decompress", "peer decompressor", || {
        Box::new(TextDecompress)
    });
}

/// A generic text compressor — "this streamlet has the potential to reduce
/// the data size by up to 75%" (§7.5).
pub struct TextCompress;

impl StreamletLogic for TextCompress {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let compressed = lzss::compress(&msg.body);
        let mut out = msg.clone();
        out.headers
            .set(ORIGINAL_TYPE, msg.content_type().to_string());
        out.set_body(compressed);
        out.set_content_type(&MimeType::new("text", "x-lzss"));
        out.push_peer(DECOMPRESS_PEER);
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless transform: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }
}

/// The client-side peer: reverses [`TextCompress`].
pub struct TextDecompress;

impl StreamletLogic for TextDecompress {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let body = lzss::decompress(&msg.body).ok_or_else(|| CoreError::Process {
            streamlet: ctx.instance().to_string(),
            message: "corrupt LZSS stream".into(),
        })?;
        let mut out = msg.clone();
        out.set_body(body);
        let original = out
            .headers
            .get(ORIGINAL_TYPE)
            .and_then(|t| MimeType::from_str(t).ok())
            .unwrap_or_else(|| MimeType::new("text", "plain"));
        out.set_content_type(&original);
        out.headers.remove(ORIGINAL_TYPE);
        ctx.emit("po", out);
        Ok(())
    }

    // Stateless transform: batches share one dispatch and panic boundary.
    fn supports_batch(&self) -> bool {
        true
    }

    // Pure per-message transform: eligible for chain fusion.
    fn fusable(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn run(logic: &mut dyn StreamletLogic, msg: MimeMessage) -> MimeMessage {
        let mut ctx = StreamletCtx::new("t", None);
        logic.process(msg, &mut ctx).unwrap();
        ctx.into_outputs().pop().unwrap().1
    }

    #[test]
    fn compress_decompress_round_trip() {
        let mut rng = StdRng::seed_from_u64(21);
        let original = workload::text_message(&mut rng, 4096);
        let compressed = run(&mut TextCompress, original.clone());
        assert!(compressed.body.len() < original.body.len() / 2);
        assert_eq!(compressed.content_type(), MimeType::new("text", "x-lzss"));
        assert_eq!(compressed.peer_chain(), vec![DECOMPRESS_PEER]);

        let restored = run(&mut TextDecompress, compressed);
        assert_eq!(restored.body, original.body);
        assert_eq!(restored.content_type(), original.content_type());
        assert!(restored.headers.get(ORIGINAL_TYPE).is_none());
    }

    #[test]
    fn reduction_reaches_paper_ballpark() {
        // §7.5: "the potential to reduce the data size by up to 75%".
        let mut rng = StdRng::seed_from_u64(22);
        let original = workload::text_message(&mut rng, 16 * 1024);
        let compressed = run(&mut TextCompress, original.clone());
        let reduction = 1.0 - compressed.body.len() as f64 / original.body.len() as f64;
        assert!(
            reduction > 0.55,
            "expected strong reduction, got {reduction:.2}"
        );
    }

    #[test]
    fn original_type_preserved_for_richtext() {
        let msg = MimeMessage::new(&MimeType::new("text", "richtext"), &b"abc abc abc"[..]);
        let restored = run(&mut TextDecompress, run(&mut TextCompress, msg));
        assert_eq!(restored.content_type(), MimeType::new("text", "richtext"));
    }

    #[test]
    fn decompress_rejects_corrupt_stream() {
        let mut bad = MimeMessage::new(&MimeType::new("text", "x-lzss"), &[0u8, 0xFF][..]);
        bad.push_peer(DECOMPRESS_PEER);
        let mut ctx = StreamletCtx::new("t", None);
        assert!(TextDecompress.process(bad, &mut ctx).is_err());
    }

    #[test]
    fn empty_body_round_trips() {
        let msg = MimeMessage::text("");
        let restored = run(&mut TextDecompress, run(&mut TextCompress, msg.clone()));
        assert_eq!(restored.body, msg.body);
    }
}
