//! The Communicator streamlet (§7.5: "sending messages onto the network").
//!
//! The communicator terminates the server-side pipeline: it serializes each
//! message to MIME wire format and hands the bytes to a [`Transport`]. In
//! the evaluation the transport is the emulated wireless link
//! (`mobigate-netsim`); tests use the in-memory [`CollectorTransport`].

use mobigate_core::{CoreError, StreamletCtx, StreamletDirectory, StreamletLogic};
use mobigate_mime::MimeMessage;
use parking_lot::Mutex;
use std::sync::Arc;

/// Where the communicator sends wire bytes.
pub trait Transport: Send + Sync {
    /// Sends one serialized message. Returning an error marks the message
    /// as failed (it is *not* retried: the link layer owns reliability).
    fn send(&self, wire: &[u8]) -> Result<(), String>;
}

/// Sends messages onto the network through a [`Transport`]. Emits nothing:
/// the communicator is a pipeline sink.
pub struct Communicator {
    transport: Arc<dyn Transport>,
    sent: u64,
    sent_bytes: u64,
}

impl Communicator {
    /// A communicator over the given transport.
    pub fn new(transport: Arc<dyn Transport>) -> Self {
        Communicator {
            transport,
            sent: 0,
            sent_bytes: 0,
        }
    }

    /// Messages successfully handed to the transport.
    pub fn sent(&self) -> u64 {
        self.sent
    }

    /// Bytes successfully handed to the transport.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// Registers a communicator factory bound to `transport` under the
    /// `builtin/communicator` key.
    pub fn register(directory: &StreamletDirectory, transport: Arc<dyn Transport>) {
        directory.register(
            "builtin/communicator",
            "send messages onto the network",
            move || Box::new(Communicator::new(transport.clone())),
        );
    }
}

impl StreamletLogic for Communicator {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let wire = msg.to_wire();
        self.transport.send(&wire).map_err(|e| CoreError::Process {
            streamlet: ctx.instance().to_string(),
            message: e,
        })?;
        self.sent += 1;
        self.sent_bytes += wire.len() as u64;
        Ok(())
    }

    fn reset(&mut self) {
        self.sent = 0;
        self.sent_bytes = 0;
    }
}

/// An in-memory transport that records every sent frame (tests, examples).
#[derive(Default)]
pub struct CollectorTransport {
    frames: Mutex<Vec<Vec<u8>>>,
}

impl CollectorTransport {
    /// An empty collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Frames sent so far.
    pub fn frames(&self) -> Vec<Vec<u8>> {
        self.frames.lock().clone()
    }

    /// Parses every collected frame back into messages.
    pub fn messages(&self) -> Vec<MimeMessage> {
        self.frames
            .lock()
            .iter()
            .filter_map(|f| MimeMessage::from_wire(f).ok())
            .collect()
    }

    /// Number of frames collected.
    pub fn len(&self) -> usize {
        self.frames.lock().len()
    }

    /// True when nothing was sent.
    pub fn is_empty(&self) -> bool {
        self.frames.lock().is_empty()
    }
}

impl Transport for CollectorTransport {
    fn send(&self, wire: &[u8]) -> Result<(), String> {
        self.frames.lock().push(wire.to_vec());
        Ok(())
    }
}

/// A transport that always fails (failure-injection tests).
pub struct FailingTransport;

impl Transport for FailingTransport {
    fn send(&self, _wire: &[u8]) -> Result<(), String> {
        Err("link down".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_mime::SessionId;

    #[test]
    fn communicator_serializes_and_counts() {
        let collector = CollectorTransport::new();
        let mut c = Communicator::new(collector.clone());
        let mut msg = MimeMessage::text("over the air");
        msg.set_session(&SessionId::new("s1"));
        let mut ctx = StreamletCtx::new("comm", None);
        c.process(msg.clone(), &mut ctx).unwrap();
        assert!(ctx.into_outputs().is_empty(), "communicator is a sink");
        assert_eq!(c.sent(), 1);
        assert_eq!(c.sent_bytes() as usize, msg.wire_len());
        let received = collector.messages();
        assert_eq!(received.len(), 1);
        assert_eq!(received[0], msg);
    }

    #[test]
    fn failing_transport_surfaces_error() {
        let mut c = Communicator::new(Arc::new(FailingTransport));
        let mut ctx = StreamletCtx::new("comm", None);
        assert!(c.process(MimeMessage::text("x"), &mut ctx).is_err());
        assert_eq!(c.sent(), 0);
    }

    #[test]
    fn reset_clears_counters() {
        let collector = CollectorTransport::new();
        let mut c = Communicator::new(collector);
        let mut ctx = StreamletCtx::new("comm", None);
        c.process(MimeMessage::text("x"), &mut ctx).unwrap();
        c.reset();
        assert_eq!(c.sent(), 0);
        assert_eq!(c.sent_bytes(), 0);
    }

    #[test]
    fn register_binds_transport() {
        let dir = StreamletDirectory::new();
        let collector = CollectorTransport::new();
        Communicator::register(&dir, collector.clone());
        let mut logic = dir.create("builtin/communicator").unwrap();
        let mut ctx = StreamletCtx::new("comm", None);
        logic
            .process(MimeMessage::text("via factory"), &mut ctx)
            .unwrap();
        assert_eq!(collector.len(), 1);
    }
}
