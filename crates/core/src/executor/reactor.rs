//! The reactor back end: per-worker run queues with work stealing.
//!
//! [`Reactor`] multiplexes any number of streamlet tasks over a fixed set
//! of workers, like [`super::WorkerPool`], but replaces the single shared
//! run queue with one local queue per worker plus a global injector:
//!
//! * **Wakers, not threads.** A task blocked on input or output holds no
//!   thread — its [`crate::queue::Notifier`] sits on the queue's listener
//!   (or space-listener) list, and the edge-triggered wake hook re-queues
//!   the task when the queue transitions. Idle sessions therefore cost
//!   zero threads and one queue-table entry each.
//! * **Locality.** A wake fired *from* a reactor worker (the common case:
//!   an upstream pump posting downstream) lands on that worker's own
//!   local queue — the task's input bytes are already warm in that core's
//!   cache. Wakes from foreign threads (ingress, control plane) land on
//!   the shared injector.
//! * **Stealing.** A worker with an empty local queue drains the injector,
//!   then steals the *oldest* task from a sibling's queue (front-steal:
//!   FIFO order is preserved globally, so one hot session cannot starve
//!   cold sessions parked behind it — they get stolen away instead).
//! * **Quantum.** Each pump drives one task — one fused unit after the
//!   PR 5 fusion pass — for at most [`super::PUMP_BATCH`] messages before
//!   it is requeued behind its siblings, the same cooperative budget the
//!   worker pool uses.
//!
//! Sleep/wake uses the same Dekker-style handshake as the SPSC ring: a
//! parking worker bumps the sleeper count (SeqCst RMW), re-checks every
//! queue, and only then waits; a producer makes its enqueue visible, runs
//! a SeqCst fence, and reads the sleeper count — so either the producer
//! sees the sleeper and takes the sleep lock to notify, or the parker
//! sees the enqueue and never sleeps. A timed wait backstops the
//! handshake but is not needed for correctness.

use super::{pump_and_reschedule, Executor, ExecutorStats, WorkerStats};
use crate::streamlet::StreamletTask;
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Safety-net bound on one park; the explicit handshake below makes the
/// wake path lossless, so this only bounds recovery from the unforeseen.
const PARK_TIMEOUT: Duration = Duration::from_millis(100);

/// Process-wide reactor instance ids, so a worker of one reactor never
/// pushes onto the local queue of a same-indexed worker of another.
static REACTOR_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(reactor id, worker index)` when the current thread is a reactor
    /// worker; wake hooks use it to pick the local queue over the injector.
    static CURRENT_WORKER: Cell<Option<(u64, usize)>> = const { Cell::new(None) };
}

/// One worker's run queue plus its scheduler counters.
struct LocalQueue {
    deque: Mutex<VecDeque<Arc<StreamletTask>>>,
    /// Mirror of `deque.len()`, so thieves and the park re-check can probe
    /// emptiness without taking the lock.
    len: AtomicUsize,
    pumps: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
}

impl LocalQueue {
    fn new() -> Self {
        LocalQueue {
            deque: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
            pumps: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
        }
    }

    fn push(&self, task: Arc<StreamletTask>) {
        let mut d = self.deque.lock();
        d.push_back(task);
        self.len.store(d.len(), Ordering::Release);
    }

    /// Pops the oldest task. Used both by the owning worker and by thieves
    /// (front-steal keeps global FIFO order — see module docs).
    fn pop_front(&self) -> Option<Arc<StreamletTask>> {
        if self.len.load(Ordering::Acquire) == 0 {
            return None;
        }
        let mut d = self.deque.lock();
        let task = d.pop_front();
        self.len.store(d.len(), Ordering::Release);
        task
    }
}

struct ReactorState {
    id: u64,
    locals: Vec<LocalQueue>,
    /// Overflow queue for wakes arriving from non-worker threads.
    injector: Mutex<VecDeque<Arc<StreamletTask>>>,
    injector_len: AtomicUsize,
    sleep: Mutex<()>,
    cv: Condvar,
    sleepers: AtomicUsize,
    stop: AtomicBool,
}

impl ReactorState {
    /// Enqueues `task` unless it is already queued or being pumped —
    /// the same never-lose-a-wakeup gate as the worker pool.
    fn schedule(&self, task: Arc<StreamletTask>) {
        if !task.try_mark_scheduled() {
            return;
        }
        match CURRENT_WORKER.with(Cell::get) {
            Some((rid, idx)) if rid == self.id => self.locals[idx].push(task),
            _ => {
                let mut inj = self.injector.lock();
                inj.push_back(task);
                self.injector_len.store(inj.len(), Ordering::Release);
            }
        }
        // Dekker producer side: enqueue first, fence, then read the
        // sleeper count. Taking the sleep lock before notifying closes
        // the register-to-wait gap on the parker side.
        fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _guard = self.sleep.lock();
            self.cv.notify_one();
        }
    }

    /// Own local queue, then the injector, then steal the oldest task
    /// from a sibling (rotating the starting victim to spread pressure).
    fn next_task(&self, idx: usize, rr: &mut usize) -> Option<Arc<StreamletTask>> {
        if let Some(task) = self.locals[idx].pop_front() {
            return Some(task);
        }
        if self.injector_len.load(Ordering::Acquire) > 0 {
            let mut inj = self.injector.lock();
            if let Some(task) = inj.pop_front() {
                self.injector_len.store(inj.len(), Ordering::Release);
                return Some(task);
            }
        }
        let n = self.locals.len();
        for off in 1..n {
            let victim = (*rr + off) % n;
            if victim == idx {
                continue;
            }
            if let Some(task) = self.locals[victim].pop_front() {
                *rr = victim;
                self.locals[idx].steals.fetch_add(1, Ordering::Relaxed);
                return Some(task);
            }
        }
        None
    }

    fn has_runnable(&self) -> bool {
        self.injector_len.load(Ordering::SeqCst) > 0
            || self.locals.iter().any(|l| l.len.load(Ordering::SeqCst) > 0)
    }

    /// Dekker parker side: register as a sleeper, re-check every queue,
    /// and only then wait (holding the sleep lock from registration
    /// through the wait, so a producer's notify cannot fall in the gap).
    fn park(&self, idx: usize) {
        let mut guard = self.sleep.lock();
        self.sleepers.fetch_add(1, Ordering::SeqCst);
        if self.has_runnable() || self.stop.load(Ordering::Acquire) {
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.locals[idx].parks.fetch_add(1, Ordering::Relaxed);
        let _ = self.cv.wait_for(&mut guard, PARK_TIMEOUT);
        self.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-worker run queues with work stealing: the third executor back end,
/// built for thousands of mostly-idle sessions per core.
pub struct Reactor {
    state: Arc<ReactorState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Reactor {
    /// Spawns a reactor with `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<Self> {
        let workers = workers.max(1);
        let state = Arc::new(ReactorState {
            id: REACTOR_IDS.fetch_add(1, Ordering::Relaxed),
            locals: (0..workers).map(|_| LocalQueue::new()).collect(),
            injector: Mutex::new(VecDeque::new()),
            injector_len: AtomicUsize::new(0),
            sleep: Mutex::new(()),
            cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers)
            .map(|i| {
                let state = state.clone();
                match std::thread::Builder::new()
                    .name(format!("mobigate-reactor-{i}"))
                    .spawn(move || worker_loop(&state, i))
                {
                    Ok(h) => h,
                    Err(e) => panic!("spawn reactor worker: {e}"),
                }
            })
            .collect();
        Arc::new(Reactor {
            state,
            workers: Mutex::new(handles),
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }
}

fn worker_loop(state: &Arc<ReactorState>, idx: usize) {
    CURRENT_WORKER.with(|c| c.set(Some((state.id, idx))));
    let mut rr = idx;
    while !state.stop.load(Ordering::Acquire) {
        match state.next_task(idx, &mut rr) {
            Some(task) => {
                state.locals[idx].pumps.fetch_add(1, Ordering::Relaxed);
                let st = state.clone();
                pump_and_reschedule(task, move |t| st.schedule(t));
            }
            None => state.park(idx),
        }
    }
    CURRENT_WORKER.with(|c| c.set(None));
}

impl Executor for Reactor {
    fn launch(&self, task: Arc<StreamletTask>) {
        // Identical discipline to the worker pool: a worker must never
        // park inside a downstream post, so outputs go through the
        // non-blocking path and overflow into the task's pending buffer.
        task.set_nonblocking_outputs(true);
        let state = Arc::downgrade(&self.state);
        let weak = Arc::downgrade(&task);
        task.set_wake_hook(move || {
            if let (Some(state), Some(task)) = (state.upgrade(), weak.upgrade()) {
                state.schedule(task);
            }
        });
        self.state.schedule(task);
    }

    fn name(&self) -> &'static str {
        "reactor"
    }

    fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
        // Take the sleep lock so the notify cannot land between a
        // parker's stop re-check and its wait.
        {
            let _guard = self.state.sleep.lock();
            self.state.cv.notify_all();
        }
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }

    fn stats(&self) -> Option<ExecutorStats> {
        Some(ExecutorStats {
            workers: self
                .state
                .locals
                .iter()
                .map(|l| WorkerStats {
                    pumps: l.pumps.load(Ordering::Relaxed),
                    steals: l.steals.load(Ordering::Relaxed),
                    parks: l.parks.load(Ordering::Relaxed),
                })
                .collect(),
        })
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}
