//! The shared-run-queue back end: `M` workers, one global queue.

use super::{pump_and_reschedule, Executor};
use crate::streamlet::StreamletTask;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Run-queue shared by a [`WorkerPool`]'s workers and the wake hooks.
struct PoolState {
    run_queue: Mutex<VecDeque<Arc<StreamletTask>>>,
    cv: Condvar,
    stop: AtomicBool,
}

impl PoolState {
    /// Enqueues `task` unless it is already queued or being pumped. Paired
    /// with the re-check in [`worker_loop`], this never loses a wakeup:
    /// a notify during a pump is either absorbed by that pump or caught by
    /// the post-pump `has_pending_work` check.
    fn schedule(&self, task: Arc<StreamletTask>) {
        if task.try_mark_scheduled() {
            self.run_queue.lock().push_back(task);
            self.cv.notify_one();
        }
    }
}

/// `M` worker threads multiplexing any number of streamlets over one
/// shared run queue.
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<Self> {
        let state = Arc::new(PoolState {
            run_queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = state.clone();
                match std::thread::Builder::new()
                    .name(format!("mobigate-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                {
                    Ok(h) => h,
                    Err(e) => panic!("spawn pool worker: {e}"),
                }
            })
            .collect();
        Arc::new(WorkerPool {
            state,
            workers: Mutex::new(handles),
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }
}

fn worker_loop(state: &Arc<PoolState>) {
    loop {
        let task = {
            let mut queue = state.run_queue.lock();
            loop {
                if state.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                state.cv.wait(&mut queue);
            }
        };
        let st = state.clone();
        pump_and_reschedule(task, move |t| st.schedule(t));
    }
}

impl Executor for WorkerPool {
    fn launch(&self, task: Arc<StreamletTask>) {
        // Workers must never park inside a downstream post: with more
        // streamlets than workers, a backed-up chain would otherwise eat
        // every worker and stall until the drop deadline. Full async
        // queues park the message in the task's pending-output buffer,
        // occupied rendezvous slots do the same, and the worker moves on.
        task.set_nonblocking_outputs(true);
        let state = Arc::downgrade(&self.state);
        let weak = Arc::downgrade(&task);
        // Weak in both directions: the hook lives inside the task's
        // notifier, so a strong task ref here would leak the task, and a
        // strong pool ref would keep dead pools alive.
        task.set_wake_hook(move || {
            if let (Some(state), Some(task)) = (state.upgrade(), weak.upgrade()) {
                state.schedule(task);
            }
        });
        self.state.schedule(task);
    }

    fn name(&self) -> &'static str {
        "worker-pool"
    }

    fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
        self.state.cv.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}
