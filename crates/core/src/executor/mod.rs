//! Execution backends for the Streamlet Execution Plane.
//!
//! The paper schedules streamlets with one OS thread each (`Streamlet
//! extends Thread`, §6.1) — faithful, but a 100-streamlet chain (the
//! Figure 7-6 workload) then burns 100 threads. This module decouples the
//! logical streamlet graph from physical execution resources, in the
//! spirit of component-pipeline platforms that separate composition from
//! scheduling:
//!
//! * [`ThreadPerStreamlet`] — the paper-faithful default; each started
//!   streamlet gets a dedicated blocking worker thread.
//! * [`WorkerPool`] — `M` workers drive a single shared run-queue of
//!   runnable streamlet tasks. A task becomes runnable when its
//!   [`crate::queue::Notifier`] fires (queue post, pause/activate/end,
//!   control command) via a wake hook installed at launch, so idle
//!   streamlets cost no threads and a 100-redirector chain runs on a
//!   handful of workers.
//! * [`Reactor`] — per-worker run queues with work stealing. The same
//!   wake hooks act as wakers: a blocked `fetch`/`post` costs one
//!   queue-listener entry instead of a parked thread, workers steal from
//!   each other before sleeping, and each fused unit is the scheduling
//!   quantum. Built for thousands of mostly-idle sessions per core.
//!
//! All back ends drive the same [`StreamletTask`] state machine, so
//! lifecycle semantics (Created → Running → Paused → Ended,
//! suspend-during-reconfiguration per Figure 7-4, control commands
//! serviced between messages) are identical under any executor.
//!
//! Pool-driven tasks post outputs without blocking: a full async queue
//! parks the message in the task's pending-output buffer (with its Figure
//! 6-9 drop deadline) rather than parking the worker, and a rendezvous
//! (sync) channel whose slot is occupied does the same — the producer
//! registers on the queue's space listeners and yields the worker, so
//! chains of either channel kind deeper than the worker count keep making
//! progress under backpressure.

#![deny(clippy::unwrap_used, clippy::expect_used)]

mod reactor;
mod worker_pool;

pub use reactor::Reactor;
pub use worker_pool::WorkerPool;

use crate::streamlet::{PumpOutcome, StreamletTask};
use std::sync::{Arc, OnceLock};

/// Maximum messages a worker pumps from one task before requeueing it, so
/// a busy streamlet cannot starve its siblings. This is the cooperative
/// scheduling quantum shared by the pool and reactor back ends.
pub(crate) const PUMP_BATCH: usize = 64;

/// Scheduler counters for one pool/reactor worker thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Pump calls executed (each drives one task for up to one quantum).
    pub pumps: u64,
    /// Tasks stolen from another worker's local queue.
    pub steals: u64,
    /// Times the worker went to sleep with no runnable task anywhere.
    pub parks: u64,
}

/// Point-in-time scheduler counters for an executor back end.
#[derive(Clone, Debug, Default)]
pub struct ExecutorStats {
    /// One entry per worker thread, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl ExecutorStats {
    /// Sum of pump calls across workers.
    pub fn total_pumps(&self) -> u64 {
        self.workers.iter().map(|w| w.pumps).sum()
    }

    /// Sum of steals across workers.
    pub fn total_steals(&self) -> u64 {
        self.workers.iter().map(|w| w.steals).sum()
    }

    /// Sum of parks across workers.
    pub fn total_parks(&self) -> u64 {
        self.workers.iter().map(|w| w.parks).sum()
    }
}

/// A scheduling back end for started streamlets.
pub trait Executor: Send + Sync {
    /// Adopts a started task and drives it until it ends.
    fn launch(&self, task: Arc<StreamletTask>);

    /// Diagnostic name of the back end.
    fn name(&self) -> &'static str;

    /// Stops the back end's threads. Streamlets must have ended first;
    /// the default (thread-per-streamlet) has nothing to stop because each
    /// thread exits with its streamlet.
    fn shutdown(&self) {}

    /// Per-worker scheduler counters, when the back end keeps them.
    fn stats(&self) -> Option<ExecutorStats> {
        None
    }
}

/// The paper's scheduling model: one dedicated OS thread per streamlet.
#[derive(Debug, Default)]
pub struct ThreadPerStreamlet;

impl ThreadPerStreamlet {
    /// A fresh thread-per-streamlet executor.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl Executor for ThreadPerStreamlet {
    fn launch(&self, task: Arc<StreamletTask>) {
        let name = format!("streamlet-{}", task.name());
        if let Err(e) = std::thread::Builder::new()
            .name(name)
            .spawn(move || task.run_blocking())
        {
            panic!("spawn streamlet thread: {e}");
        }
    }

    fn name(&self) -> &'static str {
        "thread-per-streamlet"
    }
}

/// The process-wide default executor (thread-per-streamlet), used by
/// handles constructed without an explicit executor.
pub fn default_executor() -> Arc<dyn Executor> {
    static DEFAULT: OnceLock<Arc<ThreadPerStreamlet>> = OnceLock::new();
    DEFAULT.get_or_init(ThreadPerStreamlet::new).clone()
}

/// Drives one task for one quantum and applies the shared never-lose-a-
/// wakeup reschedule protocol. `reschedule` must route the task back into
/// the caller's run queue (it is only invoked when the task stays live).
///
/// The ordering is load-bearing and identical under pool and reactor:
/// clear the membership mark *before* re-checking for work — a notify
/// racing the pump either found the mark set (caught by the re-check) or
/// lands after and re-queues — then re-arm the coalescing notifier for
/// the same reason.
pub(crate) fn pump_and_reschedule(
    task: Arc<StreamletTask>,
    reschedule: impl FnOnce(Arc<StreamletTask>),
) {
    let outcome = task.pump(PUMP_BATCH);
    task.clear_scheduled();
    task.disarm_wake();
    match outcome {
        PumpOutcome::Ended => task.clear_wake_hook(),
        PumpOutcome::More => reschedule(task),
        PumpOutcome::Idle => {
            if task.has_pending_work() {
                reschedule(task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;
    use crate::error::CoreError;
    use crate::pool::{MessagePool, PayloadMode};
    use crate::queue::{FetchResult, MessageQueue, PostResult, QueueConfig};
    use crate::streamlet::{
        Emitter, LifecycleState, RouteOpts, StreamletCtx, StreamletHandle, StreamletLogic,
    };
    use mobigate_mcl::ast::ChannelKind;
    use mobigate_mime::MimeMessage;
    use std::time::Duration;

    /// Uppercases text bodies, emits on `po`; `rate` is a control knob.
    struct Upper {
        rate: u32,
    }

    impl StreamletLogic for Upper {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let text = String::from_utf8_lossy(&msg.body).to_uppercase();
            let mut out = msg.clone();
            out.set_body(text.into_bytes());
            ctx.emit("po", out);
            Ok(())
        }

        fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
            if key == "rate" {
                self.rate = value.parse().map_err(|_| CoreError::NotFound {
                    kind: "control value",
                    name: value.into(),
                })?;
                Ok(())
            } else {
                Err(CoreError::NotFound {
                    kind: "control parameter",
                    name: key.into(),
                })
            }
        }
    }

    /// Forwards its input unchanged (the Figure 7-6 redirector).
    struct Redirect;

    impl StreamletLogic for Redirect {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            ctx.emit("po", msg);
            Ok(())
        }
    }

    fn queue(name: &str, pool: &Arc<MessagePool>) -> Arc<MessageQueue> {
        MessageQueue::new(
            QueueConfig {
                name: name.into(),
                ..Default::default()
            },
            pool.clone(),
        )
    }

    /// A rendezvous (zero-buffer) channel with a generous producer wait so
    /// deep sync chains are not subject to the 50 ms drop deadline.
    fn sync_queue(name: &str, pool: &Arc<MessagePool>) -> Arc<MessageQueue> {
        MessageQueue::new(
            QueueConfig {
                name: name.into(),
                kind: ChannelKind::Sync,
                full_wait: Duration::from_secs(10),
                ..Default::default()
            },
            pool.clone(),
        )
    }

    fn upper_pipeline(
        executor: Arc<dyn Executor>,
    ) -> (
        Arc<MessagePool>,
        Arc<MessageQueue>,
        Arc<MessageQueue>,
        Arc<StreamletHandle>,
    ) {
        let pool = Arc::new(MessagePool::new());
        let qin = queue("cin", &pool);
        let qout = queue("cout", &pool);
        let h = StreamletHandle::with_executor(
            "u1",
            "upper",
            false,
            Box::new(Upper { rate: 1 }),
            pool.clone(),
            PayloadMode::Reference,
            None,
            RouteOpts::default(),
            executor,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        (pool, qin, qout, h)
    }

    fn post_text(pool: &MessagePool, q: &MessageQueue, s: &str) {
        let msg = MimeMessage::text(s);
        assert_eq!(
            q.post(pool.wrap(msg, PayloadMode::Reference, 1)),
            PostResult::Posted
        );
    }

    fn fetch_text(pool: &MessagePool, q: &MessageQueue) -> String {
        match q.fetch(Duration::from_secs(5)) {
            FetchResult::Msg(p) => {
                String::from_utf8_lossy(&pool.resolve(p).unwrap().body).into_owned()
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    /// Full lifecycle — process, pause (Fig 7-4 step 2), control command,
    /// activate, end with logic parked — identical under all back ends.
    fn lifecycle_suite(executor: Arc<dyn Executor>) {
        let (pool, qin, qout, h) = upper_pipeline(executor);
        h.start().unwrap();
        post_text(&pool, &qin, "a");
        assert_eq!(fetch_text(&pool, &qout), "A");

        h.pause_and_wait(Duration::from_secs(5)).unwrap();
        assert_eq!(h.state(), LifecycleState::Paused);
        post_text(&pool, &qin, "b");
        assert!(matches!(
            qout.fetch(Duration::from_millis(50)),
            FetchResult::Empty
        ));

        h.activate().unwrap();
        assert_eq!(fetch_text(&pool, &qout), "B");

        h.set_parameter("rate", "9", Duration::from_secs(5))
            .unwrap();
        assert!(h
            .set_parameter("nope", "1", Duration::from_secs(5))
            .is_err());

        h.end();
        assert_eq!(h.state(), LifecycleState::Ended);
        assert!(h.take_logic().is_some(), "logic parked back after end");
    }

    #[test]
    fn lifecycle_under_thread_per_streamlet() {
        lifecycle_suite(ThreadPerStreamlet::new());
    }

    #[test]
    fn lifecycle_under_worker_pool() {
        lifecycle_suite(WorkerPool::new(2));
    }

    #[test]
    fn worker_pool_single_worker_suffices() {
        // Even one worker must drive a streamlet through its lifecycle:
        // the run-queue serializes, nothing blocks inside a pump.
        lifecycle_suite(WorkerPool::new(1));
    }

    #[test]
    fn lifecycle_under_reactor() {
        lifecycle_suite(Reactor::new(2));
    }

    #[test]
    fn reactor_single_worker_suffices() {
        lifecycle_suite(Reactor::new(1));
    }

    /// The Figure 7-6 stress shape: a chain of `CHAIN` redirector
    /// streamlets, multiplexed onto far fewer worker threads.
    fn redirector_chain(executor: Arc<dyn Executor>, chain: usize, msgs: usize) {
        let pool = Arc::new(MessagePool::new());
        let queues: Vec<_> = (0..=chain)
            .map(|i| queue(&format!("c{i}"), &pool))
            .collect();
        let handles: Vec<_> = (0..chain)
            .map(|i| {
                let h = StreamletHandle::with_executor(
                    format!("redir-{i}"),
                    "redirect",
                    false,
                    Box::new(Redirect),
                    pool.clone(),
                    PayloadMode::Reference,
                    None,
                    RouteOpts::default(),
                    executor.clone(),
                );
                h.attach_in("pi", &queues[i]);
                h.attach_out("po", &queues[i + 1]);
                h.start().unwrap();
                h
            })
            .collect();

        for i in 0..msgs {
            post_text(&pool, &queues[0], &format!("m{i}"));
        }
        for i in 0..msgs {
            assert_eq!(fetch_text(&pool, &queues[chain]), format!("m{i}"));
        }
        for h in &handles {
            h.end();
        }
        assert_eq!(pool.stats().resident, 0, "chain drained the pool");
        executor.shutdown();
    }

    #[test]
    fn hundred_redirector_chain_on_eight_workers() {
        let executor = WorkerPool::new(8);
        assert_eq!(executor.worker_count(), 8);
        redirector_chain(executor, 100, 25);
    }

    #[test]
    fn hundred_redirector_chain_on_reactor() {
        let executor = Reactor::new(4);
        assert_eq!(executor.worker_count(), 4);
        redirector_chain(executor, 100, 25);
    }

    /// Regression for the old header caveat: a chain of *rendezvous*
    /// channels much deeper than the worker count. Before non-blocking
    /// sync posts, each producer parked its worker inside `post` until the
    /// downstream consumer ran — impossible with every worker parked — so
    /// the chain deadlocked until drop deadlines fired. Now the producer
    /// parks the payload and yields, and the chain drains on one worker.
    fn sync_chain_deeper_than_workers(executor: Arc<dyn Executor>) {
        const CHAIN: usize = 40;
        let pool = Arc::new(MessagePool::new());
        let queues: Vec<_> = (0..=CHAIN)
            .map(|i| sync_queue(&format!("s{i}"), &pool))
            .collect();
        let handles: Vec<_> = (0..CHAIN)
            .map(|i| {
                let h = StreamletHandle::with_executor(
                    format!("sredir-{i}"),
                    "redirect",
                    false,
                    Box::new(Redirect),
                    pool.clone(),
                    PayloadMode::Reference,
                    None,
                    RouteOpts::default(),
                    executor.clone(),
                );
                h.attach_in("pi", &queues[i]);
                h.attach_out("po", &queues[i + 1]);
                h.start().unwrap();
                h
            })
            .collect();

        // The tail consumer drains concurrently, as rendezvous requires.
        let tail = queues[CHAIN].clone();
        let pool2 = pool.clone();
        let drain = std::thread::spawn(move || {
            (0..10)
                .map(|_| fetch_text(&pool2, &tail))
                .collect::<Vec<_>>()
        });
        for i in 0..10 {
            // Head posts from a dedicated (test) thread: blocking rendezvous
            // semantics apply here, only pool-driven producers yield.
            post_text(&pool, &queues[0], &format!("m{i}"));
        }
        let got = drain.join().unwrap();
        assert_eq!(got, (0..10).map(|i| format!("m{i}")).collect::<Vec<_>>());
        for h in &handles {
            h.end();
        }
        executor.shutdown();
    }

    #[test]
    fn sync_chain_deeper_than_workers_on_worker_pool() {
        sync_chain_deeper_than_workers(WorkerPool::new(2));
    }

    #[test]
    fn sync_chain_deeper_than_workers_on_reactor() {
        sync_chain_deeper_than_workers(Reactor::new(2));
    }

    #[test]
    fn worker_pool_shutdown_is_idempotent() {
        let pool = WorkerPool::new(2);
        pool.shutdown();
        pool.shutdown();
        assert_eq!(pool.worker_count(), 0, "workers joined");
    }

    #[test]
    fn reactor_shutdown_is_idempotent() {
        let r = Reactor::new(2);
        r.shutdown();
        r.shutdown();
        assert_eq!(r.worker_count(), 0, "workers joined");
    }

    #[test]
    fn executor_names() {
        assert_eq!(ThreadPerStreamlet::new().name(), "thread-per-streamlet");
        assert_eq!(WorkerPool::new(1).name(), "worker-pool");
        assert_eq!(Reactor::new(1).name(), "reactor");
        assert_eq!(default_executor().name(), "thread-per-streamlet");
    }

    #[test]
    fn reactor_reports_per_worker_stats() {
        let executor = Reactor::new(3);
        redirector_chain(executor.clone(), 20, 50);
        let stats = executor.stats().expect("reactor keeps stats");
        assert_eq!(stats.workers.len(), 3);
        assert!(stats.total_pumps() > 0, "workers pumped tasks");
        // Parks happen whenever a worker finds nothing runnable; with 3
        // workers and a mostly-serial chain this is effectively certain.
        assert!(stats.total_parks() > 0, "idle workers parked");
    }
}
