//! The centralized message store enabling **pass-by-reference** (§6.7).
//!
//! "The MobiGATE infrastructure employs a centralized message storage
//! management, while utilizing memory references to pass messages between
//! streamlets. In particular, the system maintains all incoming messages by
//! storing them in a message pool and passing them between different
//! streamlets by their associated message identifier."
//!
//! Entries are reference-counted: a producer that fans a message out to
//! `n` channels inserts it with `n` references; each consumer's
//! [`MessagePool::take_ref`] hands back the message (sharing the underlying
//! [`bytes::Bytes`] buffer — no copy) and drops one reference; the entry is
//! evicted at zero. [`PayloadMode::Value`] exists to reproduce the paper's
//! pass-by-value baseline (Figure 7-3): each hop deep-copies the body.
//!
//! # Sharding
//!
//! The store is split into `N` power-of-two shards selected by message id.
//! Ids are allocated from one atomic counter, so consecutive messages
//! round-robin across shards and concurrent streams contend on different
//! locks instead of serializing on one. [`MessagePool::stats`] aggregates
//! per-shard atomic counters without taking any shard lock; `resident` is
//! derived as `inserted - evicted`, so the lifetime invariant
//! `resident + evicted == inserted` holds by construction even while
//! producers and consumers race. `MessagePool::new()` sizes the pool to the
//! machine; [`MessagePool::with_shards`] pins a count (1 reproduces the
//! paper's single-lock pool for ablation).

// Hot-path modules must surface failures as `CoreError`s, never abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use bytes::Bytes;
use mobigate_mime::{MimeMessage, MimeType};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a pooled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// How channels carry message payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Messages live in the [`MessagePool`]; channels carry [`MessageId`]s
    /// (the paper's production configuration, §6.7).
    #[default]
    Reference,
    /// Channels carry deep copies of the whole message — the Figure 7-3
    /// baseline. Every hop pays a full body copy.
    Value,
}

/// What actually travels through a [`crate::queue::MessageQueue`].
#[derive(Debug)]
pub enum Payload {
    /// A pool reference.
    Ref(MessageId),
    /// An owned copy.
    Value(Box<MimeMessage>),
}

impl Payload {
    /// Approximate size in bytes for channel-buffer accounting.
    pub fn buffered_len(&self, pool: &MessagePool) -> usize {
        match self {
            Payload::Ref(id) => pool.peek_len(*id).unwrap_or(0),
            Payload::Value(m) => m.wire_len(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    msg: MimeMessage,
    refs: u32,
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Messages currently resident.
    pub resident: usize,
    /// Total body bytes currently resident.
    pub resident_bytes: usize,
    /// Lifetime insertions.
    pub inserted: u64,
    /// Lifetime evictions (refcount reached zero).
    pub evicted: u64,
}

/// One lock's worth of the store: a slot map plus counters that mirror it.
///
/// The atomics are only written while holding `slots`, so they always agree
/// with the map they describe; readers ([`MessagePool::stats`]) consume them
/// without locking.
#[derive(Debug, Default)]
struct Shard {
    slots: Mutex<HashMap<u64, Entry>>,
    inserted: AtomicU64,
    evicted: AtomicU64,
    resident_bytes: AtomicU64,
}

impl Shard {
    fn evict(&self, map: &mut HashMap<u64, Entry>, id: u64) -> Option<MimeMessage> {
        let e = map.remove(&id)?;
        self.evicted.fetch_add(1, Ordering::Release);
        self.resident_bytes
            .fetch_sub(e.msg.body.len() as u64, Ordering::Release);
        Some(e.msg)
    }
}

/// The centralized, thread-safe message store, sharded by message id.
#[derive(Debug)]
pub struct MessagePool {
    shards: Box<[Shard]>,
    mask: u64,
    next_id: AtomicU64,
}

impl Default for MessagePool {
    fn default() -> Self {
        Self::with_shards(default_shard_count())
    }
}

/// Power-of-two near the core count, clamped to a sane range.
fn default_shard_count() -> usize {
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8);
    cores.next_power_of_two().clamp(1, 64)
}

impl MessagePool {
    /// An empty pool sized to the machine (power-of-two shards near the
    /// core count).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty pool with a fixed shard count (rounded up to a power of
    /// two; `1` reproduces the paper's single-lock pool).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        MessagePool {
            shards: (0..n).map(|_| Shard::default()).collect(),
            mask: n as u64 - 1,
            next_id: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: u64) -> &Shard {
        &self.shards[(id & self.mask) as usize]
    }

    /// Stores a message with `refs` outstanding references and returns its
    /// id. `refs == 0` is clamped to 1.
    pub fn insert(&self, msg: MimeMessage, refs: u32) -> MessageId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard(id);
        let body_len = msg.body.len() as u64;
        let mut slots = shard.slots.lock();
        slots.insert(
            id,
            Entry {
                msg,
                refs: refs.max(1),
            },
        );
        shard.inserted.fetch_add(1, Ordering::Release);
        shard.resident_bytes.fetch_add(body_len, Ordering::Release);
        MessageId(id)
    }

    /// Adds `n` references to an existing entry (fan-out after insertion).
    /// Returns false when the id is unknown (already fully consumed).
    pub fn add_refs(&self, id: MessageId, n: u32) -> bool {
        let mut slots = self.shard(id.0).slots.lock();
        match slots.get_mut(&id.0) {
            Some(e) => {
                e.refs += n;
                true
            }
            None => false,
        }
    }

    /// Reads the message *without* consuming a reference (stubs peeking at
    /// headers for routing do this). The returned message shares the pooled
    /// body buffer — no payload bytes are copied.
    pub fn peek(&self, id: MessageId) -> Option<MimeMessage> {
        self.shard(id.0)
            .slots
            .lock()
            .get(&id.0)
            .map(|e| e.msg.clone())
    }

    /// Reads just the body of a resident message as a shared [`Bytes`]
    /// handle — the cheapest way to inspect a payload without consuming a
    /// reference or touching the headers.
    pub fn peek_body(&self, id: MessageId) -> Option<Bytes> {
        self.shard(id.0)
            .slots
            .lock()
            .get(&id.0)
            .map(|e| e.msg.body.clone())
    }

    /// Body length of a resident message (buffer accounting).
    pub fn peek_len(&self, id: MessageId) -> Option<usize> {
        self.shard(id.0)
            .slots
            .lock()
            .get(&id.0)
            .map(|e| e.msg.wire_len())
    }

    /// Content type of a resident message — feeds priority classification
    /// during shedding without cloning the body handle or the headers.
    pub fn peek_type(&self, id: MessageId) -> Option<MimeType> {
        self.shard(id.0)
            .slots
            .lock()
            .get(&id.0)
            .map(|e| e.msg.content_type())
    }

    /// Takes one reference: returns the message (body shared, not copied)
    /// and evicts the entry when this was the last reference.
    pub fn take_ref(&self, id: MessageId) -> Option<MimeMessage> {
        let shard = self.shard(id.0);
        let mut slots = shard.slots.lock();
        let entry = slots.get_mut(&id.0)?;
        entry.refs -= 1;
        if entry.refs == 0 {
            shard.evict(&mut slots, id.0)
        } else {
            Some(entry.msg.clone())
        }
    }

    /// Drops one reference without reading (used when a queue discards a
    /// pending payload).
    pub fn drop_ref(&self, id: MessageId) {
        let shard = self.shard(id.0);
        let mut slots = shard.slots.lock();
        if let Some(entry) = slots.get_mut(&id.0) {
            entry.refs -= 1;
            if entry.refs == 0 {
                shard.evict(&mut slots, id.0);
            }
        }
    }

    /// Current statistics snapshot, aggregated across shards without
    /// taking any lock.
    ///
    /// Per shard, `evicted` is read before `inserted`: evictions strictly
    /// follow their insertion, so this ordering guarantees
    /// `inserted >= evicted` in the snapshot and `resident` (derived as
    /// the difference) never underflows, even mid-race. The lifetime
    /// invariant `resident + evicted == inserted` holds by construction.
    pub fn stats(&self) -> PoolStats {
        let mut stats = PoolStats::default();
        for shard in self.shards.iter() {
            let evicted = shard.evicted.load(Ordering::Acquire);
            let resident_bytes = shard.resident_bytes.load(Ordering::Acquire);
            let inserted = shard.inserted.load(Ordering::Acquire);
            stats.inserted += inserted;
            stats.evicted += evicted;
            stats.resident += (inserted - evicted) as usize;
            stats.resident_bytes += resident_bytes as usize;
        }
        stats
    }

    /// Wraps a message as a payload according to `mode`, for delivery to
    /// `fanout` consumers. In `Reference` mode the pool stores the message
    /// once; in `Value` mode each consumer gets an independent deep copy
    /// (this method returns the first; use [`MessagePool::wrap_copy`] for
    /// the rest).
    pub fn wrap(&self, msg: MimeMessage, mode: PayloadMode, fanout: u32) -> Payload {
        match mode {
            PayloadMode::Reference => Payload::Ref(self.insert(msg, fanout)),
            PayloadMode::Value => Payload::Value(Box::new(deep_copy(&msg))),
        }
    }

    /// An additional deep copy of a message for value-mode fan-out.
    pub fn wrap_copy(&self, msg: &MimeMessage) -> Payload {
        Payload::Value(Box::new(deep_copy(msg)))
    }

    /// Wraps an *owned* message the caller is done with as a value
    /// payload. No deep copy: the refcounted body moves into the payload
    /// as-is. Use this instead of [`MessagePool::wrap_copy`] when the
    /// message would otherwise be dropped — deep-copying a value that has
    /// exactly one owner buys no isolation, only the memcpy.
    pub fn wrap_owned(&self, msg: MimeMessage) -> Payload {
        Payload::Value(Box::new(msg))
    }

    /// Resolves a payload into an owned message, consuming its reference.
    pub fn resolve(&self, payload: Payload) -> Option<MimeMessage> {
        match payload {
            Payload::Ref(id) => self.take_ref(id),
            Payload::Value(m) => Some(*m),
        }
    }

    /// Releases a payload without reading it.
    pub fn discard(&self, payload: Payload) {
        if let Payload::Ref(id) = payload {
            self.drop_ref(id);
        }
    }
}

/// A genuine deep copy: headers cloned, body bytes memcpy'd into a fresh
/// buffer (defeating `Bytes` sharing) — the cost Figure 7-3 measures.
/// Exactly one copy: straight into a fresh `Bytes`, not via an
/// intermediate `Vec`.
pub fn deep_copy(msg: &MimeMessage) -> MimeMessage {
    // `Headers::clone` is a copy-on-write share (one refcount bump), which
    // is exactly what Figure 7-3's pass-by-value system did *not* have:
    // rebuild the header block entry by entry so every name and value owns
    // fresh storage.
    let mut headers = mobigate_mime::Headers::new();
    for (name, value) in msg.headers.iter() {
        headers.append(name, value);
    }
    MimeMessage {
        headers,
        body: Bytes::copy_from_slice(&msg.body),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mobigate_mime::MimeType;

    fn msg(n: usize) -> MimeMessage {
        MimeMessage::new(&MimeType::new("application", "octet-stream"), vec![7u8; n])
    }

    #[test]
    fn insert_take_evicts_at_zero() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(10), 1);
        assert_eq!(pool.stats().resident, 1);
        let m = pool.take_ref(id).unwrap();
        assert_eq!(m.body.len(), 10);
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(pool.stats().evicted, 1);
        assert!(pool.take_ref(id).is_none());
    }

    #[test]
    fn multi_ref_survives_until_last_take() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(4), 3);
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_some());
        assert_eq!(pool.stats().resident, 1);
        assert!(pool.take_ref(id).is_some());
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn add_refs_extends_lifetime() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(4), 1);
        assert!(pool.add_refs(id, 1));
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_some());
        assert!(!pool.add_refs(id, 1), "fully consumed entries are gone");
    }

    #[test]
    fn take_shares_body_buffer() {
        // Pass-by-reference must not copy the body.
        let pool = MessagePool::new();
        let original = msg(1 << 20);
        let ptr = original.body.as_ptr();
        let id = pool.insert(original, 2);
        let a = pool.take_ref(id).unwrap();
        let b = pool.take_ref(id).unwrap();
        assert_eq!(a.body.as_ptr(), ptr);
        assert_eq!(b.body.as_ptr(), ptr);
    }

    #[test]
    fn deep_copy_detaches_buffer() {
        let m = msg(128);
        let c = deep_copy(&m);
        assert_eq!(c, m);
        assert_ne!(c.body.as_ptr(), m.body.as_ptr());
    }

    #[test]
    fn peek_does_not_consume() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(5), 1);
        assert!(pool.peek(id).is_some());
        assert!(pool.peek(id).is_some());
        assert_eq!(pool.peek_len(id).unwrap(), msg(5).wire_len());
        assert!(pool.take_ref(id).is_some());
        assert!(pool.peek(id).is_none());
    }

    #[test]
    fn drop_ref_discards() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(5), 2);
        pool.drop_ref(id);
        assert_eq!(pool.stats().resident, 1);
        pool.drop_ref(id);
        assert_eq!(pool.stats().resident, 0);
        // Dropping an unknown id is a no-op.
        pool.drop_ref(id);
    }

    #[test]
    fn wrap_and_resolve_reference_mode() {
        let pool = MessagePool::new();
        let p = pool.wrap(msg(9), PayloadMode::Reference, 1);
        assert!(matches!(p, Payload::Ref(_)));
        let m = pool.resolve(p).unwrap();
        assert_eq!(m.body.len(), 9);
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn wrap_and_resolve_value_mode() {
        let pool = MessagePool::new();
        let p = pool.wrap(msg(9), PayloadMode::Value, 1);
        assert!(matches!(p, Payload::Value(_)));
        assert_eq!(pool.stats().resident, 0, "value mode bypasses the pool");
        assert_eq!(pool.resolve(p).unwrap().body.len(), 9);
    }

    #[test]
    fn buffered_len_accounts_both_modes() {
        let pool = MessagePool::new();
        let m = msg(100);
        let expected = m.wire_len();
        let r = pool.wrap(m.clone(), PayloadMode::Reference, 1);
        assert_eq!(r.buffered_len(&pool), expected);
        let v = pool.wrap_copy(&m);
        assert_eq!(v.buffered_len(&pool), expected);
        pool.discard(r);
    }

    #[test]
    fn refs_zero_clamped_to_one() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(1), 0);
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_none());
    }

    #[test]
    fn concurrent_insert_take() {
        use std::sync::Arc;
        let pool = Arc::new(MessagePool::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = pool.insert(msg(i % 64), 1);
                    assert!(pool.take_ref(id).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.inserted, 4000);
        assert_eq!(stats.evicted, 4000);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(MessagePool::with_shards(1).shard_count(), 1);
        assert_eq!(MessagePool::with_shards(3).shard_count(), 4);
        assert_eq!(MessagePool::with_shards(8).shard_count(), 8);
        assert_eq!(MessagePool::with_shards(0).shard_count(), 1);
        assert!(MessagePool::new().shard_count().is_power_of_two());
    }

    #[test]
    fn sequential_ids_round_robin_across_shards() {
        let pool = MessagePool::with_shards(4);
        let ids: Vec<MessageId> = (0..8).map(|_| pool.insert(msg(1), 1)).collect();
        // Consecutive ids land on consecutive shards, so any 4 consecutive
        // inserts touch 4 distinct locks.
        for w in ids.windows(4) {
            let mut shards: Vec<u64> = w.iter().map(|id| id.0 & 3).collect();
            shards.sort_unstable();
            shards.dedup();
            assert_eq!(shards.len(), 4);
        }
    }

    #[test]
    fn single_shard_pool_behaves_identically() {
        let pool = MessagePool::with_shards(1);
        let id = pool.insert(msg(16), 2);
        assert!(pool.add_refs(id, 1));
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_some());
        assert_eq!(pool.stats().resident, 1);
        pool.drop_ref(id);
        let stats = pool.stats();
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.evicted, 1);
    }

    #[test]
    fn peek_shares_body_buffer() {
        // Peeking must not copy payload bytes in pass-by-reference mode.
        let pool = MessagePool::new();
        let original = msg(4096);
        let ptr = original.body.as_ptr();
        let id = pool.insert(original, 1);
        let peeked = pool.peek(id).unwrap();
        assert_eq!(peeked.body.as_ptr(), ptr);
        let body = pool.peek_body(id).unwrap();
        assert_eq!(body.as_ptr(), ptr);
        assert_eq!(body.len(), 4096);
        pool.drop_ref(id);
        assert!(pool.peek_body(id).is_none());
    }

    #[test]
    fn stats_track_resident_bytes_per_shard() {
        let pool = MessagePool::with_shards(4);
        let a = pool.insert(msg(100), 1);
        let b = pool.insert(msg(50), 1);
        assert_eq!(pool.stats().resident_bytes, 150);
        pool.drop_ref(a);
        assert_eq!(pool.stats().resident_bytes, 50);
        pool.drop_ref(b);
        assert_eq!(pool.stats().resident_bytes, 0);
    }

    /// The accounting race the sharded rewrite closes: concurrent
    /// `take_ref`/`drop_ref` on the *last* reference of many messages must
    /// never double-evict or leave `resident + evicted != inserted`.
    #[test]
    fn take_drop_race_keeps_accounting_consistent() {
        use std::sync::Arc;
        let pool = Arc::new(MessagePool::new());
        let ids: Arc<Vec<MessageId>> =
            Arc::new((0..2000).map(|_| pool.insert(msg(8), 2)).collect());
        let mut handles = Vec::new();
        for worker in 0..4 {
            let pool = pool.clone();
            let ids = ids.clone();
            handles.push(std::thread::spawn(move || {
                for id in ids.iter() {
                    if worker % 2 == 0 {
                        pool.take_ref(*id);
                    } else {
                        pool.drop_ref(*id);
                    }
                    // Mid-race snapshots must uphold the invariant too.
                    let s = pool.stats();
                    assert_eq!(s.resident as u64 + s.evicted, s.inserted);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.inserted, 2000);
        assert_eq!(stats.evicted, 2000);
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.resident_bytes, 0);
    }
}
