//! The centralized message store enabling **pass-by-reference** (§6.7).
//!
//! "The MobiGATE infrastructure employs a centralized message storage
//! management, while utilizing memory references to pass messages between
//! streamlets. In particular, the system maintains all incoming messages by
//! storing them in a message pool and passing them between different
//! streamlets by their associated message identifier."
//!
//! Entries are reference-counted: a producer that fans a message out to
//! `n` channels inserts it with `n` references; each consumer's
//! [`MessagePool::take_ref`] hands back the message (sharing the underlying
//! [`bytes::Bytes`] buffer — no copy) and drops one reference; the entry is
//! evicted at zero. [`PayloadMode::Value`] exists to reproduce the paper's
//! pass-by-value baseline (Figure 7-3): each hop deep-copies the body.

use mobigate_mime::MimeMessage;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a pooled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// How channels carry message payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PayloadMode {
    /// Messages live in the [`MessagePool`]; channels carry [`MessageId`]s
    /// (the paper's production configuration, §6.7).
    #[default]
    Reference,
    /// Channels carry deep copies of the whole message — the Figure 7-3
    /// baseline. Every hop pays a full body copy.
    Value,
}

/// What actually travels through a [`crate::queue::MessageQueue`].
#[derive(Debug)]
pub enum Payload {
    /// A pool reference.
    Ref(MessageId),
    /// An owned copy.
    Value(Box<MimeMessage>),
}

impl Payload {
    /// Approximate size in bytes for channel-buffer accounting.
    pub fn buffered_len(&self, pool: &MessagePool) -> usize {
        match self {
            Payload::Ref(id) => pool.peek_len(*id).unwrap_or(0),
            Payload::Value(m) => m.wire_len(),
        }
    }
}

#[derive(Debug)]
struct Entry {
    msg: MimeMessage,
    refs: u32,
}

/// Aggregate pool statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Messages currently resident.
    pub resident: usize,
    /// Total body bytes currently resident.
    pub resident_bytes: usize,
    /// Lifetime insertions.
    pub inserted: u64,
    /// Lifetime evictions (refcount reached zero).
    pub evicted: u64,
}

/// The centralized, thread-safe message store.
#[derive(Debug, Default)]
pub struct MessagePool {
    slots: Mutex<PoolInner>,
    next_id: AtomicU64,
}

#[derive(Debug, Default)]
struct PoolInner {
    map: HashMap<u64, Entry>,
    inserted: u64,
    evicted: u64,
}

impl MessagePool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a message with `refs` outstanding references and returns its
    /// id. `refs == 0` is clamped to 1.
    pub fn insert(&self, msg: MimeMessage, refs: u32) -> MessageId {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.slots.lock();
        inner.map.insert(id, Entry { msg, refs: refs.max(1) });
        inner.inserted += 1;
        MessageId(id)
    }

    /// Adds `n` references to an existing entry (fan-out after insertion).
    /// Returns false when the id is unknown (already fully consumed).
    pub fn add_refs(&self, id: MessageId, n: u32) -> bool {
        let mut inner = self.slots.lock();
        match inner.map.get_mut(&id.0) {
            Some(e) => {
                e.refs += n;
                true
            }
            None => false,
        }
    }

    /// Reads the message *without* consuming a reference (stubs peeking at
    /// headers for routing do this).
    pub fn peek(&self, id: MessageId) -> Option<MimeMessage> {
        self.slots.lock().map.get(&id.0).map(|e| e.msg.clone())
    }

    /// Body length of a resident message (buffer accounting).
    pub fn peek_len(&self, id: MessageId) -> Option<usize> {
        self.slots.lock().map.get(&id.0).map(|e| e.msg.wire_len())
    }

    /// Takes one reference: returns the message (body shared, not copied)
    /// and evicts the entry when this was the last reference.
    pub fn take_ref(&self, id: MessageId) -> Option<MimeMessage> {
        let mut inner = self.slots.lock();
        let entry = inner.map.get_mut(&id.0)?;
        entry.refs -= 1;
        let msg = if entry.refs == 0 {
            let e = inner.map.remove(&id.0).expect("present");
            inner.evicted += 1;
            e.msg
        } else {
            entry.msg.clone()
        };
        Some(msg)
    }

    /// Drops one reference without reading (used when a queue discards a
    /// pending payload).
    pub fn drop_ref(&self, id: MessageId) {
        let mut inner = self.slots.lock();
        if let Some(entry) = inner.map.get_mut(&id.0) {
            entry.refs -= 1;
            if entry.refs == 0 {
                inner.map.remove(&id.0);
                inner.evicted += 1;
            }
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> PoolStats {
        let inner = self.slots.lock();
        PoolStats {
            resident: inner.map.len(),
            resident_bytes: inner.map.values().map(|e| e.msg.body.len()).sum(),
            inserted: inner.inserted,
            evicted: inner.evicted,
        }
    }

    /// Wraps a message as a payload according to `mode`, for delivery to
    /// `fanout` consumers. In `Reference` mode the pool stores the message
    /// once; in `Value` mode each consumer gets an independent deep copy
    /// (this method returns the first; use [`MessagePool::wrap_copy`] for
    /// the rest).
    pub fn wrap(&self, msg: MimeMessage, mode: PayloadMode, fanout: u32) -> Payload {
        match mode {
            PayloadMode::Reference => Payload::Ref(self.insert(msg, fanout)),
            PayloadMode::Value => Payload::Value(Box::new(deep_copy(&msg))),
        }
    }

    /// An additional deep copy of a message for value-mode fan-out.
    pub fn wrap_copy(&self, msg: &MimeMessage) -> Payload {
        Payload::Value(Box::new(deep_copy(msg)))
    }

    /// Resolves a payload into an owned message, consuming its reference.
    pub fn resolve(&self, payload: Payload) -> Option<MimeMessage> {
        match payload {
            Payload::Ref(id) => self.take_ref(id),
            Payload::Value(m) => Some(*m),
        }
    }

    /// Releases a payload without reading it.
    pub fn discard(&self, payload: Payload) {
        if let Payload::Ref(id) = payload {
            self.drop_ref(id);
        }
    }
}

/// A genuine deep copy: headers cloned, body bytes memcpy'd into a fresh
/// buffer (defeating `Bytes` sharing) — the cost Figure 7-3 measures.
pub fn deep_copy(msg: &MimeMessage) -> MimeMessage {
    MimeMessage { headers: msg.headers.clone(), body: msg.body.to_vec().into() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mobigate_mime::MimeType;

    fn msg(n: usize) -> MimeMessage {
        MimeMessage::new(&MimeType::new("application", "octet-stream"), vec![7u8; n])
    }

    #[test]
    fn insert_take_evicts_at_zero() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(10), 1);
        assert_eq!(pool.stats().resident, 1);
        let m = pool.take_ref(id).unwrap();
        assert_eq!(m.body.len(), 10);
        assert_eq!(pool.stats().resident, 0);
        assert_eq!(pool.stats().evicted, 1);
        assert!(pool.take_ref(id).is_none());
    }

    #[test]
    fn multi_ref_survives_until_last_take() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(4), 3);
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_some());
        assert_eq!(pool.stats().resident, 1);
        assert!(pool.take_ref(id).is_some());
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn add_refs_extends_lifetime() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(4), 1);
        assert!(pool.add_refs(id, 1));
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_some());
        assert!(!pool.add_refs(id, 1), "fully consumed entries are gone");
    }

    #[test]
    fn take_shares_body_buffer() {
        // Pass-by-reference must not copy the body.
        let pool = MessagePool::new();
        let original = msg(1 << 20);
        let ptr = original.body.as_ptr();
        let id = pool.insert(original, 2);
        let a = pool.take_ref(id).unwrap();
        let b = pool.take_ref(id).unwrap();
        assert_eq!(a.body.as_ptr(), ptr);
        assert_eq!(b.body.as_ptr(), ptr);
    }

    #[test]
    fn deep_copy_detaches_buffer() {
        let m = msg(128);
        let c = deep_copy(&m);
        assert_eq!(c, m);
        assert_ne!(c.body.as_ptr(), m.body.as_ptr());
    }

    #[test]
    fn peek_does_not_consume() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(5), 1);
        assert!(pool.peek(id).is_some());
        assert!(pool.peek(id).is_some());
        assert_eq!(pool.peek_len(id).unwrap(), msg(5).wire_len());
        assert!(pool.take_ref(id).is_some());
        assert!(pool.peek(id).is_none());
    }

    #[test]
    fn drop_ref_discards() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(5), 2);
        pool.drop_ref(id);
        assert_eq!(pool.stats().resident, 1);
        pool.drop_ref(id);
        assert_eq!(pool.stats().resident, 0);
        // Dropping an unknown id is a no-op.
        pool.drop_ref(id);
    }

    #[test]
    fn wrap_and_resolve_reference_mode() {
        let pool = MessagePool::new();
        let p = pool.wrap(msg(9), PayloadMode::Reference, 1);
        assert!(matches!(p, Payload::Ref(_)));
        let m = pool.resolve(p).unwrap();
        assert_eq!(m.body.len(), 9);
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn wrap_and_resolve_value_mode() {
        let pool = MessagePool::new();
        let p = pool.wrap(msg(9), PayloadMode::Value, 1);
        assert!(matches!(p, Payload::Value(_)));
        assert_eq!(pool.stats().resident, 0, "value mode bypasses the pool");
        assert_eq!(pool.resolve(p).unwrap().body.len(), 9);
    }

    #[test]
    fn buffered_len_accounts_both_modes() {
        let pool = MessagePool::new();
        let m = msg(100);
        let expected = m.wire_len();
        let r = pool.wrap(m.clone(), PayloadMode::Reference, 1);
        assert_eq!(r.buffered_len(&pool), expected);
        let v = pool.wrap_copy(&m);
        assert_eq!(v.buffered_len(&pool), expected);
        pool.discard(r);
    }

    #[test]
    fn refs_zero_clamped_to_one() {
        let pool = MessagePool::new();
        let id = pool.insert(msg(1), 0);
        assert!(pool.take_ref(id).is_some());
        assert!(pool.take_ref(id).is_none());
    }

    #[test]
    fn concurrent_insert_take() {
        use std::sync::Arc;
        let pool = Arc::new(MessagePool::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let pool = pool.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let id = pool.insert(msg(i % 64), 1);
                    assert!(pool.take_ref(id).is_some());
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let stats = pool.stats();
        assert_eq!(stats.resident, 0);
        assert_eq!(stats.inserted, 4000);
        assert_eq!(stats.evicted, 4000);
    }
}
