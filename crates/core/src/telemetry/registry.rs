//! Per-stream hot-path metrics, registered in a sharded registry.
//!
//! Every deployed stream/session owns one [`StreamMetrics`]: relaxed
//! atomic counters plus log₂ histograms, shared (`Arc`) with the queues
//! and streamlet tasks that feed it, so the hot path never touches the
//! registry itself. The registry is sharded exactly like the Coordination
//! Manager's routing table (`DefaultHasher` on the session string, power-
//! of-two mask) so a scrape walks shard locks one at a time and never
//! stalls deploys on other shards. When a stream retires, its counters
//! and histograms are folded into a `retired` accumulator so global
//! totals stay monotonic across session churn.

use super::hist::{Histogram, HistogramSnapshot};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Why a message was dropped — the reason-coded split of the old
/// all-purpose `dropped_full` bucket.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DropReason {
    /// Admission wait exhausted `T` while the queue stayed full (Fig 6-9).
    Full,
    /// Queue closed (sink/source detached or stream ending).
    Closed,
    /// Discarded by `BB_BREAK`/`BK_BREAK` semantics.
    Break,
    /// Expired out of a `pending_out` overflow before space appeared.
    Expired,
    /// Explicitly shed by the overload relief valve.
    Shed,
    /// Rejected at ingress by token-bucket admission control.
    Admission,
}

impl DropReason {
    pub fn name(self) -> &'static str {
        match self {
            DropReason::Full => "full",
            DropReason::Closed => "closed",
            DropReason::Break => "break",
            DropReason::Expired => "expired",
            DropReason::Shed => "shed",
            DropReason::Admission => "admission",
        }
    }
}

/// Hot-path metrics for one stream/session (or the retired accumulator).
#[derive(Default)]
pub struct StreamMetrics {
    // Counters.
    pub posted: AtomicU64,
    pub fetched: AtomicU64,
    pub bytes_in: AtomicU64,
    pub dropped_full: AtomicU64,
    pub dropped_closed: AtomicU64,
    pub dropped_break: AtomicU64,
    pub dropped_expired: AtomicU64,
    pub dropped_shed: AtomicU64,
    pub dropped_admission: AtomicU64,
    pub faults: AtomicU64,
    /// Internal tick counter driving the 1-in-N latency sampling gate
    /// ([`super::QueueProbe::sample_timing`]); not part of snapshots.
    pub timing_ticks: AtomicU64,
    // Histograms.
    /// Wall time of one `post`/`post_all` call, nanoseconds.
    pub post_ns: Histogram,
    /// Admitted message payload sizes, bytes.
    pub msg_bytes: Histogram,
    /// SPSC ring occupancy sampled after each ring push.
    pub ring_depth: Histogram,
    /// Messages handed out per `take_batch` call.
    pub batch_len: Histogram,
    /// Wall time of one streamlet `process`/`process_batch` call, ns.
    pub process_ns: Histogram,
}

impl StreamMetrics {
    /// Charges one drop to the right reason counter.
    #[inline]
    pub fn drop_for(&self, reason: DropReason) -> &AtomicU64 {
        match reason {
            DropReason::Full => &self.dropped_full,
            DropReason::Closed => &self.dropped_closed,
            DropReason::Break => &self.dropped_break,
            DropReason::Expired => &self.dropped_expired,
            DropReason::Shed => &self.dropped_shed,
            DropReason::Admission => &self.dropped_admission,
        }
    }

    /// Sum of every drop reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_full.load(Ordering::Relaxed)
            + self.dropped_closed.load(Ordering::Relaxed)
            + self.dropped_break.load(Ordering::Relaxed)
            + self.dropped_expired.load(Ordering::Relaxed)
            + self.dropped_shed.load(Ordering::Relaxed)
            + self.dropped_admission.load(Ordering::Relaxed)
    }

    /// Folds `other` into `self` (retirement accumulation).
    pub fn absorb(&self, other: &StreamMetrics) {
        for (dst, src) in [
            (&self.posted, &other.posted),
            (&self.fetched, &other.fetched),
            (&self.bytes_in, &other.bytes_in),
            (&self.dropped_full, &other.dropped_full),
            (&self.dropped_closed, &other.dropped_closed),
            (&self.dropped_break, &other.dropped_break),
            (&self.dropped_expired, &other.dropped_expired),
            (&self.dropped_shed, &other.dropped_shed),
            (&self.dropped_admission, &other.dropped_admission),
            (&self.faults, &other.faults),
        ] {
            dst.fetch_add(src.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.post_ns.absorb(&other.post_ns);
        self.msg_bytes.absorb(&other.msg_bytes);
        self.ring_depth.absorb(&other.ring_depth);
        self.batch_len.absorb(&other.batch_len);
        self.process_ns.absorb(&other.process_ns);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> StreamMetricsSnapshot {
        StreamMetricsSnapshot {
            posted: self.posted.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            bytes_in: self.bytes_in.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_break: self.dropped_break.load(Ordering::Relaxed),
            dropped_expired: self.dropped_expired.load(Ordering::Relaxed),
            dropped_shed: self.dropped_shed.load(Ordering::Relaxed),
            dropped_admission: self.dropped_admission.load(Ordering::Relaxed),
            faults: self.faults.load(Ordering::Relaxed),
            post_ns: self.post_ns.snapshot(),
            msg_bytes: self.msg_bytes.snapshot(),
            ring_depth: self.ring_depth.snapshot(),
            batch_len: self.batch_len.snapshot(),
            process_ns: self.process_ns.snapshot(),
        }
    }
}

/// Owned copy of [`StreamMetrics`].
#[derive(Clone, Debug, Default)]
pub struct StreamMetricsSnapshot {
    pub posted: u64,
    pub fetched: u64,
    pub bytes_in: u64,
    pub dropped_full: u64,
    pub dropped_closed: u64,
    pub dropped_break: u64,
    pub dropped_expired: u64,
    pub dropped_shed: u64,
    pub dropped_admission: u64,
    pub faults: u64,
    pub post_ns: HistogramSnapshot,
    pub msg_bytes: HistogramSnapshot,
    pub ring_depth: HistogramSnapshot,
    pub batch_len: HistogramSnapshot,
    pub process_ns: HistogramSnapshot,
}

impl StreamMetricsSnapshot {
    pub fn dropped_total(&self) -> u64 {
        self.dropped_full
            + self.dropped_closed
            + self.dropped_break
            + self.dropped_expired
            + self.dropped_shed
            + self.dropped_admission
    }

    /// Merges another snapshot into this one (aggregation).
    pub fn merge(&mut self, other: &StreamMetricsSnapshot) {
        self.posted += other.posted;
        self.fetched += other.fetched;
        self.bytes_in += other.bytes_in;
        self.dropped_full += other.dropped_full;
        self.dropped_closed += other.dropped_closed;
        self.dropped_break += other.dropped_break;
        self.dropped_expired += other.dropped_expired;
        self.dropped_shed += other.dropped_shed;
        self.dropped_admission += other.dropped_admission;
        self.faults += other.faults;
        self.post_ns.merge(&other.post_ns);
        self.msg_bytes.merge(&other.msg_bytes);
        self.ring_depth.merge(&other.ring_depth);
        self.batch_len.merge(&other.batch_len);
        self.process_ns.merge(&other.process_ns);
    }
}

type Shard = Mutex<HashMap<String, Arc<StreamMetrics>>>;

/// Sharded session-keyed registry of live [`StreamMetrics`].
pub struct MetricsRegistry {
    shards: Box<[Shard]>,
    mask: u64,
    /// Folded metrics of streams that have retired.
    retired: StreamMetrics,
}

impl MetricsRegistry {
    /// A registry with `shards` shards (rounded up to a power of two).
    pub fn new(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        MetricsRegistry {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n as u64 - 1,
            retired: StreamMetrics::default(),
        }
    }

    fn shard_for(&self, key: &str) -> &Mutex<HashMap<String, Arc<StreamMetrics>>> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() & self.mask) as usize]
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Registers (or re-fetches) the metrics handle for `key`.
    pub fn register(&self, key: &str) -> Arc<StreamMetrics> {
        let mut shard = self.shard_for(key).lock();
        shard
            .entry(key.to_string())
            .or_insert_with(|| Arc::new(StreamMetrics::default()))
            .clone()
    }

    /// Looks up a live handle without registering.
    pub fn get(&self, key: &str) -> Option<Arc<StreamMetrics>> {
        self.shard_for(key).lock().get(key).cloned()
    }

    /// Retires `key`: removes it from the live map and folds its final
    /// counters into the retired accumulator. Idempotent.
    pub fn deregister(&self, key: &str) {
        let removed = self.shard_for(key).lock().remove(key);
        if let Some(m) = removed {
            self.retired.absorb(&m);
        }
    }

    /// Number of live entries.
    pub fn live_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Snapshot of every live stream's metrics, one shard lock at a time.
    pub fn per_stream(&self) -> Vec<(String, StreamMetricsSnapshot)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let map = shard.lock();
            for (k, m) in map.iter() {
                out.push((k.clone(), m.snapshot()));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Global totals: retired accumulator plus every live stream.
    pub fn totals(&self) -> StreamMetricsSnapshot {
        let mut total = self.retired.snapshot();
        for shard in self.shards.iter() {
            let map = shard.lock();
            for m in map.values() {
                total.merge(&m.snapshot());
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_get_deregister() {
        let reg = MetricsRegistry::new(4);
        let m = reg.register("app-1");
        m.posted.fetch_add(3, Ordering::Relaxed);
        assert_eq!(reg.live_count(), 1);
        assert!(Arc::ptr_eq(&reg.register("app-1"), &m));
        assert_eq!(reg.get("app-1").unwrap().posted.load(Ordering::Relaxed), 3);
        reg.deregister("app-1");
        assert!(reg.get("app-1").is_none());
        assert_eq!(reg.live_count(), 0);
        // Retired totals keep the counts.
        assert_eq!(reg.totals().posted, 3);
        reg.deregister("app-1"); // idempotent
        assert_eq!(reg.totals().posted, 3);
    }

    #[test]
    fn totals_span_live_and_retired() {
        let reg = MetricsRegistry::new(1);
        let a = reg.register("a");
        let b = reg.register("b");
        a.posted.fetch_add(5, Ordering::Relaxed);
        a.msg_bytes.record(100);
        b.posted.fetch_add(7, Ordering::Relaxed);
        reg.deregister("a");
        let t = reg.totals();
        assert_eq!(t.posted, 12);
        assert_eq!(t.msg_bytes.count, 1);
        assert_eq!(reg.per_stream().len(), 1);
    }
}
