//! The observability plane — hot-path telemetry, lifecycle tracing, and
//! the metrics→event bridge (ROADMAP item 5's measurement half).
//!
//! Everything hangs off one [`Telemetry`] object created by the server
//! when `ServerConfig { telemetry }` enables it:
//!
//! * a sharded [`MetricsRegistry`] of per-stream [`StreamMetrics`]
//!   (relaxed counters + log₂ [`hist::Histogram`]s) fed by [`QueueProbe`]s
//!   installed on every channel of an instrumented stream — the registry
//!   is sharded like `coord_shards` so a scrape never stalls deploys;
//! * a bounded overwrite-oldest [`TraceRing`] of lifecycle
//!   [`trace::TraceEvent`]s (deploy, reconfigure, fuse/fission, fault,
//!   quarantine, session spawn/teardown, drops) with monotonic
//!   nanosecond timestamps, exportable as JSONL;
//! * a [`bridge::MetricsBridge`] that polls measured state and publishes
//!   real `ContextEvent`s (CHANNEL_CONGESTED, HIGH_DROP_RATE,
//!   HIGH_FAULT_RATE, BYTE_BUDGET_EXCEEDED) into the `EventManager`, so
//!   MCL `when (...)` rules react to what the gateway *measures*.
//!
//! When telemetry is disabled nothing here is allocated: the runtime
//! threads an `Option<Arc<Telemetry>>` that stays `None`, and every hot
//! path pays exactly one branch on it.

pub mod bridge;
pub mod hist;
pub mod registry;
pub mod snapshot;
pub mod trace;

pub use bridge::BridgeConfig;
pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{DropReason, MetricsRegistry, StreamMetrics, StreamMetricsSnapshot};
pub use snapshot::MetricsSnapshot;
pub use trace::{TraceEvent, TraceKind, TraceRing};

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// Runtime telemetry switches, carried on `ServerConfig { telemetry }`.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master switch. Off by default: the disabled path allocates nothing
    /// and costs one `Option` branch per instrumented operation.
    pub enabled: bool,
    /// Lifecycle trace ring capacity in events (rounded to a power of
    /// two).
    pub trace_capacity: usize,
    /// Metrics registry shard count (rounded to a power of two). Sized
    /// like `coord_shards`: enough that scrapes touch one shard at a time
    /// while deploys proceed on the others.
    pub registry_shards: usize,
    /// Threshold watcher configuration for the metrics→event bridge.
    pub bridge: BridgeConfig,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            enabled: false,
            trace_capacity: 1024,
            registry_shards: 16,
            bridge: BridgeConfig::default(),
        }
    }
}

impl TelemetryConfig {
    /// An enabled config with default sizing — the common opt-in.
    pub fn enabled() -> Self {
        TelemetryConfig {
            enabled: true,
            ..Default::default()
        }
    }
}

/// The observability plane's root object (one per server).
pub struct Telemetry {
    epoch: Instant,
    registry: MetricsRegistry,
    trace: TraceRing,
    bridge: Mutex<Option<bridge::MetricsBridge>>,
}

impl Telemetry {
    /// Builds the plane per `cfg`. Callers gate on `cfg.enabled`
    /// themselves (the server builds `None` when disabled).
    pub fn new(cfg: &TelemetryConfig) -> Arc<Self> {
        Arc::new(Telemetry {
            epoch: Instant::now(),
            registry: MetricsRegistry::new(cfg.registry_shards),
            trace: TraceRing::new(cfg.trace_capacity),
            bridge: Mutex::new(None),
        })
    }

    /// Monotonic nanoseconds since this plane came up — the timestamp
    /// base of every trace event.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// The per-stream metrics registry.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The lifecycle trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// Records one lifecycle trace event, stamped now.
    pub fn trace_event(
        &self,
        kind: TraceKind,
        stream: Option<&str>,
        instance: Option<&str>,
        detail: impl Into<String>,
    ) {
        self.trace
            .record(self.now_ns(), kind, stream, instance, detail);
    }

    /// JSONL export of the surviving trace events.
    pub fn export_trace_jsonl(&self) -> String {
        self.trace.export_jsonl()
    }

    /// Registers (or re-fetches) stream metrics for `key` and returns a
    /// probe queues and tasks can record through.
    pub fn probe_for(self: &Arc<Self>, key: &str) -> QueueProbe {
        QueueProbe {
            telemetry: self.clone(),
            stream: self.registry.register(key),
            key: Arc::from(key),
        }
    }

    /// Stops the bridge thread, if one is running. Idempotent.
    pub fn stop_bridge(&self) {
        if let Some(b) = self.bridge.lock().take() {
            b.stop();
        }
    }

    pub(crate) fn install_bridge(&self, b: bridge::MetricsBridge) {
        let prev = self.bridge.lock().replace(b);
        if let Some(prev) = prev {
            prev.stop();
        }
    }
}

impl Drop for Telemetry {
    fn drop(&mut self) {
        self.stop_bridge();
    }
}

/// The hot-path recording handle: one per instrumented stream, cloned
/// into each of its queues and streamlet tasks. All methods are relaxed
/// atomics on [`StreamMetrics`] plus (for drops) one trace-ring append.
#[derive(Clone)]
pub struct QueueProbe {
    pub telemetry: Arc<Telemetry>,
    pub stream: Arc<StreamMetrics>,
    /// The registry key (session/stream ID) — names trace events.
    pub key: Arc<str>,
}

impl std::fmt::Debug for QueueProbe {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueProbe")
            .field("key", &self.key)
            .finish()
    }
}

/// Latency histograms time 1 in this many operations. Counters stay
/// exact; only the `Instant::now()` pairs are sampled, so the per-op cost
/// of an instrumented post/process is a couple of relaxed increments
/// instead of two clock reads.
pub const TIMING_SAMPLE: u64 = 64;

impl QueueProbe {
    /// Returns true when this operation should pay for wall-clock timing
    /// (1 in [`TIMING_SAMPLE`]). The gate is one relaxed increment.
    #[inline]
    pub fn sample_timing(&self) -> bool {
        self.stream
            .timing_ticks
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            & (TIMING_SAMPLE - 1)
            == 0
    }

    /// One message admitted into a queue (`len` payload bytes). The
    /// counter is exact; the size histogram samples 1 in
    /// [`TIMING_SAMPLE`], gated by the counter value itself so an admit
    /// costs exactly one relaxed increment.
    #[inline]
    pub fn on_admit(&self, len: usize) {
        let n = self
            .stream
            .posted
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        if n & (TIMING_SAMPLE - 1) == 0 {
            self.stream.msg_bytes.record(len as u64);
        }
    }

    /// Wall time of one post call (ns).
    #[inline]
    pub fn on_post_ns(&self, ns: u64) {
        self.stream.post_ns.record(ns);
    }

    /// Ring occupancy observed right after a lock-free push (sampled).
    #[inline]
    pub fn on_ring_depth(&self, depth: usize) {
        if self.sample_timing() {
            self.stream.ring_depth.record(depth as u64);
        }
    }

    /// `n` messages fetched (single fetch: `n = 1`).
    #[inline]
    pub fn on_fetch(&self, n: u64) {
        self.stream
            .fetched
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// One `take_batch` handed out `n` messages. The fetched counter is
    /// exact; the batch-length histogram is sampled.
    #[inline]
    pub fn on_batch(&self, n: usize) {
        self.on_fetch(n as u64);
        if self.sample_timing() {
            self.stream.batch_len.record(n as u64);
        }
    }

    /// `n` messages dropped for `reason` on queue `queue` — charges the
    /// reason counter and appends one trace event.
    pub fn on_drop(&self, queue: &str, reason: DropReason, n: u64) {
        self.stream
            .drop_for(reason)
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
        self.telemetry.trace_event(
            TraceKind::Drop,
            Some(&self.key),
            None,
            format!("{}x{} on {}", reason.name(), n, queue),
        );
    }

    /// Wall time of one streamlet `process`/`process_batch` call (ns).
    #[inline]
    pub fn on_process_ns(&self, ns: u64) {
        self.stream.process_ns.record(ns);
    }

    /// Ingress bytes injected into the stream (byte-budget watcher feed).
    #[inline]
    pub fn on_bytes_in(&self, n: u64) {
        self.stream
            .bytes_in
            .fetch_add(n, std::sync::atomic::Ordering::Relaxed);
    }

    /// One execution-plane fault attributed to this stream.
    #[inline]
    pub fn on_fault(&self) {
        self.stream
            .faults
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}
