//! Bounded ring buffer of structured lifecycle trace events.
//!
//! The runtime's interesting moments — deploy, reconfigure, fuse/fission,
//! fault, quarantine, session spawn/teardown, drops — are appended to a
//! power-of-two ring that overwrites its oldest entry when full. Writers
//! claim a slot with one `fetch_add` on the cursor and then fill it under
//! that slot's own mutex, so concurrent writers never serialize on each
//! other (different slots) and a full ring costs an overwrite, never a
//! block. Timestamps are nanoseconds since the owning [`super::Telemetry`]
//! was created (monotonic, comparable across threads).

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// What happened. A closed vocabulary so exports stay greppable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    Deploy,
    Undeploy,
    Reconfigure,
    Fuse,
    Fission,
    Fault,
    Restart,
    RestartRefused,
    Quarantine,
    DeadLetter,
    SessionSpawn,
    SessionTeardown,
    Drop,
    BreakerTrip,
    BreakerHalfOpen,
    BreakerClose,
    Shed,
}

impl TraceKind {
    /// The stable wire name used in JSONL exports.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Deploy => "deploy",
            TraceKind::Undeploy => "undeploy",
            TraceKind::Reconfigure => "reconfigure",
            TraceKind::Fuse => "fuse",
            TraceKind::Fission => "fission",
            TraceKind::Fault => "fault",
            TraceKind::Restart => "restart",
            TraceKind::RestartRefused => "restart-refused",
            TraceKind::Quarantine => "quarantine",
            TraceKind::DeadLetter => "dead-letter",
            TraceKind::SessionSpawn => "session-spawn",
            TraceKind::SessionTeardown => "session-teardown",
            TraceKind::Drop => "drop",
            TraceKind::BreakerTrip => "breaker-trip",
            TraceKind::BreakerHalfOpen => "breaker-half-open",
            TraceKind::BreakerClose => "breaker-close",
            TraceKind::Shed => "shed",
        }
    }
}

/// One lifecycle event.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global sequence number (also the slot-claim ticket) — total order.
    pub seq: u64,
    /// Nanoseconds since the telemetry plane came up.
    pub t_ns: u64,
    pub kind: TraceKind,
    /// The stream/session the event concerns, when known.
    pub stream: Option<String>,
    /// The streamlet instance concerned, when known.
    pub instance: Option<String>,
    /// Free-form detail (drop reason, action count, fault cause…).
    pub detail: String,
}

/// Bounded overwrite-oldest ring of [`TraceEvent`]s.
pub struct TraceRing {
    slots: Box<[Mutex<Option<TraceEvent>>]>,
    mask: u64,
    cursor: AtomicU64,
    /// Events lost to overwrite (`max(0, cursor - capacity)` is implied;
    /// this counts them explicitly for the snapshot).
    overwritten: AtomicU64,
}

impl TraceRing {
    /// A ring holding at least `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(8).next_power_of_two();
        TraceRing {
            slots: (0..cap).map(|_| Mutex::new(None)).collect(),
            mask: cap as u64 - 1,
            cursor: AtomicU64::new(0),
            overwritten: AtomicU64::new(0),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    /// Events lost to overwrite so far.
    pub fn overwritten(&self) -> u64 {
        self.overwritten.load(Ordering::Relaxed)
    }

    /// Appends one event, overwriting the oldest when the ring is full.
    pub fn record(
        &self,
        t_ns: u64,
        kind: TraceKind,
        stream: Option<&str>,
        instance: Option<&str>,
        detail: impl Into<String>,
    ) {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq & self.mask) as usize];
        let ev = TraceEvent {
            seq,
            t_ns,
            kind,
            stream: stream.map(str::to_string),
            instance: instance.map(str::to_string),
            detail: detail.into(),
        };
        let mut guard = slot.lock();
        // A slower writer that claimed an *older* ticket for this slot may
        // arrive after us; keep whichever event is newest.
        match guard.as_ref() {
            Some(prev) if prev.seq > seq => {}
            Some(_) => {
                self.overwritten.fetch_add(1, Ordering::Relaxed);
                *guard = Some(ev);
            }
            None => *guard = Some(ev),
        }
    }

    /// The surviving events in sequence order.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.slots.iter().filter_map(|s| s.lock().clone()).collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// JSONL export: one JSON object per line, sequence order. Formatted
    /// by hand (the vendored serde is a no-op shim).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&format!(
                "{{\"seq\":{},\"t_ns\":{},\"kind\":\"{}\"",
                e.seq,
                e.t_ns,
                e.kind.name()
            ));
            if let Some(s) = &e.stream {
                out.push_str(&format!(",\"stream\":\"{}\"", json_escape(s)));
            }
            if let Some(i) = &e.instance {
                out.push_str(&format!(",\"instance\":\"{}\"", json_escape(i)));
            }
            if !e.detail.is_empty() {
                out.push_str(&format!(",\"detail\":\"{}\"", json_escape(&e.detail)));
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Minimal JSON string escaping for the hand-rolled exporter.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let ring = TraceRing::new(16);
        for i in 0..5u64 {
            ring.record(i, TraceKind::Deploy, Some("s"), None, format!("{i}"));
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 5);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn wraparound_keeps_newest() {
        let ring = TraceRing::new(8);
        for i in 0..20u64 {
            ring.record(i, TraceKind::Drop, None, None, "");
        }
        let evs = ring.events();
        assert_eq!(evs.len(), 8);
        // The survivors are exactly the newest 8, in order.
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (12..20).collect::<Vec<_>>());
        assert_eq!(ring.recorded(), 20);
        assert_eq!(ring.overwritten(), 12);
    }

    #[test]
    fn jsonl_escapes_and_shapes() {
        let ring = TraceRing::new(8);
        ring.record(7, TraceKind::Fault, Some("app\"x"), Some("inst"), "a\nb");
        let jsonl = ring.export_jsonl();
        assert!(jsonl.contains("\"kind\":\"fault\""));
        assert!(jsonl.contains("app\\\"x"));
        assert!(jsonl.contains("a\\nb"));
        assert!(jsonl.ends_with('\n'));
        assert_eq!(jsonl.lines().count(), 1);
    }
}
