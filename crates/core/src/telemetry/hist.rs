//! Lock-free log₂-bucketed histograms for hot-path latencies and sizes.
//!
//! A recorded value `v` lands in bucket `⌈log₂(v+1)⌉`: bucket 0 holds the
//! value 0, bucket `i` (i ≥ 1) holds `[2^(i-1), 2^i)`. With 64 buckets the
//! full `u64` range is covered, so `record` never branches on overflow.
//! Everything is relaxed atomics — recorders never contend with each other
//! or with snapshots, which is what lets the probe sit on the queue post
//! and streamlet process paths.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets — covers the full `u64` range.
pub const BUCKETS: usize = 64;

/// A lock-free log₂ histogram: per-bucket counts plus total count and sum.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// Index of the bucket a value falls into (`⌈log₂(v+1)⌉`, capped at 63 so
/// the top bucket absorbs `[2^62, u64::MAX]`).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`2^i - 1`); `u64::MAX` for the last.
pub fn bucket_bound(i: usize) -> u64 {
    if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation. Three relaxed increments, no branches
    /// beyond the bucket computation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Folds another histogram's current contents into this one (used when
    /// a stream retires and its metrics are accumulated into the registry's
    /// `retired` totals so global counts stay monotonic).
    pub fn absorb(&self, other: &Histogram) {
        for i in 0..BUCKETS {
            let n = other.buckets[i].load(Ordering::Relaxed);
            if n != 0 {
                self.buckets[i].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy. Buckets are read individually (relaxed), so a
    /// snapshot taken during concurrent recording may be mid-update between
    /// `count` and a bucket — totals are reconciled from the buckets.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (i, b) in self.buckets.iter().enumerate() {
            buckets[i] = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`].
#[derive(Clone, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Merges another snapshot into this one bucket-by-bucket.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for i in 0..BUCKETS {
            self.buckets[i] = self.buckets[i].saturating_add(other.buckets[i]);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Total observations according to the buckets (authoritative under
    /// concurrent snapshots).
    pub fn bucket_total(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, b| a.saturating_add(*b))
    }

    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0..=1.0) — a
    /// log₂-granular estimate, exact enough for threshold dashboards.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        let total = self.bucket_total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*n);
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64 - 1 + 1 - 1);
    }

    #[test]
    fn bucket_bounds_nest() {
        // Every value's bucket bound is >= the value and the previous
        // bucket's bound is < the value.
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 1 << 40] {
            let i = bucket_index(v);
            assert!(bucket_bound(i) >= v, "bound({i}) < {v}");
            if i > 0 {
                assert!(bucket_bound(i - 1) < v);
            }
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in 0..100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.bucket_total(), 100);
        assert_eq!(s.sum, (0..100).sum::<u64>());
        assert!((s.mean() - 49.5).abs() < 1e-9);
        // p50 of 0..100 is <= 63 (bucket bound of values around 50).
        assert!(s.quantile_bound(0.5) >= 49);
        assert!(s.quantile_bound(1.0) >= 99);
    }

    #[test]
    fn absorb_accumulates() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(1000);
        a.absorb(&b);
        let s = a.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[bucket_index(5)], 2);
        assert_eq!(s.buckets[bucket_index(1000)], 1);
    }
}
