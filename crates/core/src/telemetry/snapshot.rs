//! The unified metrics snapshot and its Prometheus-style renderer.
//!
//! [`MetricsSnapshot`] supersedes reading the scattered `*Stats` structs
//! one by one: the server assembles stream totals (live + retired),
//! per-stream breakdowns, the message/streamlet pools, the event
//! manager, the supervisor, and trace-ring counters into one coherent
//! point-in-time value. `render_prometheus` emits the text exposition
//! format (`# HELP`/`# TYPE`, cumulative `_bucket{le=...}` histograms)
//! so any scraper — or a test — can consume it.

use super::hist::{bucket_bound, HistogramSnapshot, BUCKETS};
use super::registry::StreamMetricsSnapshot;
use crate::events::EventStats;
use crate::executor::ExecutorStats;
use crate::pool::PoolStats;
use crate::pooling::PoolingStats;
use crate::supervisor::{DeadLetterStats, SupervisorStats};

/// One coherent point-in-time view of everything the gateway measures.
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Stream-plane totals: retired accumulator plus every live stream.
    pub totals: StreamMetricsSnapshot,
    /// Per-live-stream breakdown, sorted by session key.
    pub per_stream: Vec<(String, StreamMetricsSnapshot)>,
    /// Live streams currently registered.
    pub live_streams: usize,
    /// Stateless streamlet-instance pool (§3.3.4).
    pub streamlet_pool: PoolingStats,
    /// Central message pool.
    pub msg_pool: PoolStats,
    /// Event manager counters.
    pub events: EventStats,
    /// Supervisor counters, when supervision is enabled.
    pub supervisor: Option<SupervisorStats>,
    /// Dead-letter queue counters, when supervision is enabled.
    pub dead_letters: Option<DeadLetterStats>,
    /// Lifecycle trace events ever recorded.
    pub trace_recorded: u64,
    /// Lifecycle trace events lost to ring overwrite.
    pub trace_overwritten: u64,
    /// Per-worker scheduler counters, when the executor back end keeps
    /// them (the reactor's steal/park/pump counts).
    pub executor: Option<ExecutorStats>,
    /// Memory-plane buffer pool counters, when the pool is enabled.
    pub buf_pool: Option<crate::membuf::BufferPoolStats>,
}

impl MetricsSnapshot {
    /// Renders the snapshot in the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(4096);

        counter(
            &mut out,
            "mobigate_posted_total",
            "Messages admitted into stream queues.",
            self.totals.posted,
        );
        counter(
            &mut out,
            "mobigate_fetched_total",
            "Messages fetched from stream queues.",
            self.totals.fetched,
        );
        counter(
            &mut out,
            "mobigate_bytes_in_total",
            "Ingress payload bytes injected into streams.",
            self.totals.bytes_in,
        );

        help_type(
            &mut out,
            "mobigate_dropped_total",
            "Messages dropped, by reason.",
            "counter",
        );
        for (reason, v) in [
            ("full", self.totals.dropped_full),
            ("closed", self.totals.dropped_closed),
            ("break", self.totals.dropped_break),
            ("expired", self.totals.dropped_expired),
            ("shed", self.totals.dropped_shed),
            ("admission", self.totals.dropped_admission),
        ] {
            out.push_str(&format!(
                "mobigate_dropped_total{{reason=\"{reason}\"}} {v}\n"
            ));
        }

        counter(
            &mut out,
            "mobigate_faults_total",
            "Execution-plane faults attributed to streams.",
            self.totals.faults,
        );
        gauge(
            &mut out,
            "mobigate_live_streams",
            "Streams currently registered for metrics.",
            self.live_streams as u64,
        );

        histogram(
            &mut out,
            "mobigate_post_ns",
            "Wall time of one queue post call (ns).",
            &self.totals.post_ns,
        );
        histogram(
            &mut out,
            "mobigate_msg_bytes",
            "Admitted message payload sizes (bytes).",
            &self.totals.msg_bytes,
        );
        histogram(
            &mut out,
            "mobigate_ring_depth",
            "SPSC ring occupancy after each push.",
            &self.totals.ring_depth,
        );
        histogram(
            &mut out,
            "mobigate_batch_len",
            "Messages handed out per take_batch call.",
            &self.totals.batch_len,
        );
        histogram(
            &mut out,
            "mobigate_process_ns",
            "Wall time of one streamlet process call (ns).",
            &self.totals.process_ns,
        );

        counter(
            &mut out,
            "mobigate_pool_hits_total",
            "Streamlet checkouts served from the pool.",
            self.streamlet_pool.hits,
        );
        counter(
            &mut out,
            "mobigate_pool_misses_total",
            "Streamlet checkouts that built a fresh instance.",
            self.streamlet_pool.misses,
        );
        counter(
            &mut out,
            "mobigate_pool_returned_total",
            "Streamlet instances returned to the pool.",
            self.streamlet_pool.returned,
        );
        counter(
            &mut out,
            "mobigate_pool_discarded_total",
            "Streamlet instances discarded at the per-key cap.",
            self.streamlet_pool.discarded,
        );

        gauge(
            &mut out,
            "mobigate_msg_pool_resident",
            "Messages resident in the central pool.",
            self.msg_pool.resident as u64,
        );
        gauge(
            &mut out,
            "mobigate_msg_pool_resident_bytes",
            "Body bytes resident in the central pool.",
            self.msg_pool.resident_bytes as u64,
        );
        counter(
            &mut out,
            "mobigate_msg_pool_inserted_total",
            "Lifetime message-pool insertions.",
            self.msg_pool.inserted,
        );
        counter(
            &mut out,
            "mobigate_msg_pool_evicted_total",
            "Lifetime message-pool evictions.",
            self.msg_pool.evicted,
        );

        counter(
            &mut out,
            "mobigate_events_published_total",
            "Context events handed to multicast.",
            self.events.published,
        );
        counter(
            &mut out,
            "mobigate_events_delivered_total",
            "Individual event deliveries to subscribers.",
            self.events.delivered,
        );
        counter(
            &mut out,
            "mobigate_events_filtered_total",
            "Deliveries suppressed by source filtering.",
            self.events.filtered,
        );

        if let Some(s) = &self.supervisor {
            counter(
                &mut out,
                "mobigate_supervisor_faults_total",
                "Faults handled by the supervisor.",
                s.faults,
            );
            counter(
                &mut out,
                "mobigate_supervisor_restarts_total",
                "Successful supervised restarts.",
                s.restarts,
            );
            counter(
                &mut out,
                "mobigate_supervisor_quarantined_total",
                "Instances quarantined.",
                s.quarantined,
            );
            counter(
                &mut out,
                "mobigate_supervisor_dead_lettered_total",
                "Poison messages evicted to the dead-letter queue.",
                s.dead_lettered,
            );
            counter(
                &mut out,
                "mobigate_supervisor_breaker_trips_total",
                "Circuit-breaker trips (faults parked behind an open breaker).",
                s.breaker_trips,
            );
        }
        if let Some(d) = &self.dead_letters {
            counter(
                &mut out,
                "mobigate_dead_letters_enqueued_total",
                "Messages ever enqueued to the dead-letter queue.",
                d.enqueued,
            );
            counter(
                &mut out,
                "mobigate_dead_letters_discarded_total",
                "Dead letters dropped at capacity.",
                d.discarded,
            );
        }

        if let Some(ex) = &self.executor {
            for (name, help, pick) in [
                (
                    "mobigate_executor_pumps_total",
                    "Task pump calls executed, per scheduler worker.",
                    (|w| w.pumps) as fn(&crate::executor::WorkerStats) -> u64,
                ),
                (
                    "mobigate_executor_steals_total",
                    "Tasks stolen from sibling run queues, per scheduler worker.",
                    |w| w.steals,
                ),
                (
                    "mobigate_executor_parks_total",
                    "Times a scheduler worker slept with nothing runnable.",
                    |w| w.parks,
                ),
            ] {
                help_type(&mut out, name, help, "counter");
                for (i, w) in ex.workers.iter().enumerate() {
                    out.push_str(&format!("{name}{{worker=\"{i}\"}} {}\n", pick(w)));
                }
            }
        }

        if let Some(bp) = &self.buf_pool {
            for (name, help, v) in [
                (
                    "mobigate_membuf_hits_total",
                    "Buffer-pool checkouts served from a recycled slab.",
                    bp.hits,
                ),
                (
                    "mobigate_membuf_misses_total",
                    "Buffer-pool checkouts that allocated a fresh slab.",
                    bp.misses,
                ),
                (
                    "mobigate_membuf_resizes_total",
                    "Recycled slabs grown to fit a checkout's size hint.",
                    bp.resizes,
                ),
                (
                    "mobigate_membuf_recycled_total",
                    "Slabs returned to the pool and retained.",
                    bp.recycled,
                ),
                (
                    "mobigate_membuf_discarded_total",
                    "Slab returns freed instead of retained.",
                    bp.discarded,
                ),
            ] {
                counter(&mut out, name, help, v);
            }
            help_type(
                &mut out,
                "mobigate_membuf_population",
                "Slabs currently retained in the pool.",
                "gauge",
            );
            out.push_str(&format!("mobigate_membuf_population {}\n", bp.population));
            help_type(
                &mut out,
                "mobigate_membuf_outstanding",
                "Slabs checked out and not yet returned.",
                "gauge",
            );
            out.push_str(&format!("mobigate_membuf_outstanding {}\n", bp.outstanding));
        }

        counter(
            &mut out,
            "mobigate_trace_recorded_total",
            "Lifecycle trace events recorded.",
            self.trace_recorded,
        );
        counter(
            &mut out,
            "mobigate_trace_overwritten_total",
            "Lifecycle trace events lost to ring overwrite.",
            self.trace_overwritten,
        );

        out
    }
}

fn help_type(out: &mut String, name: &str, help: &str, ty: &str) {
    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {ty}\n"));
}

fn counter(out: &mut String, name: &str, help: &str, v: u64) {
    help_type(out, name, help, "counter");
    out.push_str(&format!("{name} {v}\n"));
}

fn gauge(out: &mut String, name: &str, help: &str, v: u64) {
    help_type(out, name, help, "gauge");
    out.push_str(&format!("{name} {v}\n"));
}

/// Renders one log₂ histogram as cumulative `_bucket{le=...}` lines plus
/// `_sum`/`_count`. Empty buckets past the last occupied one are elided
/// (the `+Inf` bucket always closes the series).
fn histogram(out: &mut String, name: &str, help: &str, h: &HistogramSnapshot) {
    help_type(out, name, help, "histogram");
    let total = h.bucket_total();
    let last = (0..BUCKETS).rev().find(|&i| h.buckets[i] != 0);
    let mut cum = 0u64;
    if let Some(last) = last {
        for i in 0..=last {
            cum = cum.saturating_add(h.buckets[i]);
            out.push_str(&format!(
                "{name}_bucket{{le=\"{}\"}} {cum}\n",
                bucket_bound(i)
            ));
        }
    }
    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {total}\n"));
    out.push_str(&format!("{name}_sum {}\n", h.sum));
    out.push_str(&format!("{name}_count {total}\n"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_counters_and_histograms() {
        let mut snap = MetricsSnapshot::default();
        snap.totals.posted = 10;
        snap.totals.dropped_break = 2;
        snap.totals.post_ns.buckets[3] = 4;
        snap.totals.post_ns.count = 4;
        snap.totals.post_ns.sum = 20;
        snap.supervisor = Some(SupervisorStats {
            faults: 1,
            restarts: 1,
            quarantined: 0,
            dead_lettered: 0,
            breaker_trips: 0,
        });
        let text = snap.render_prometheus();
        assert!(text.contains("# TYPE mobigate_posted_total counter"));
        assert!(text.contains("mobigate_posted_total 10"));
        assert!(text.contains("mobigate_dropped_total{reason=\"break\"} 2"));
        assert!(text.contains("mobigate_post_ns_bucket{le=\"7\"} 4"));
        assert!(text.contains("mobigate_post_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("mobigate_post_ns_sum 20"));
        assert!(text.contains("mobigate_supervisor_faults_total 1"));
        // Every exposition line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.split(' ').count() == 2,
                "{line}"
            );
        }
    }
}
