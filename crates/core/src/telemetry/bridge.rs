//! The metrics→event bridge: threshold watchers that turn *measured*
//! runtime state into real `ContextEvent`s.
//!
//! A background thread polls every live stream at a fixed interval and
//! compares measurements against configured thresholds:
//!
//! | watcher            | measurement                        | event                |
//! |--------------------|------------------------------------|----------------------|
//! | queue high-water   | resident queued bytes per stream   | `CHANNEL_CONGESTED`  |
//! | drop rate          | drops per poll interval            | `HIGH_DROP_RATE`     |
//! | fault rate         | faults per poll interval           | `HIGH_FAULT_RATE`    |
//! | byte budget        | cumulative ingress bytes           | `BYTE_BUDGET_EXCEEDED` |
//! | admission pressure | admission rejections per poll      | `OVERLOAD`           |
//!
//! Events are published **targeted at the stream's name** (its event
//! identity), so an MCL `when (CHANNEL_CONGESTED) { ... }` rule in that
//! stream's program fires from the measurement — the closed adaptation
//! loop ROADMAP item 5 asks for. Watchers are edge-triggered: a threshold
//! publishes once when crossed and re-arms only after the condition
//! clears (drop/fault rates re-arm on a quiet interval; the byte budget
//! is latched — cumulative bytes never go down).
//!
//! The thread holds only `Weak` references to the coordination and event
//! managers, so it can never keep a shut-down server alive; it exits when
//! either side goes away or [`MetricsBridge::stop`] is called.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use super::Telemetry;
use crate::coordination::CoordinationManager;
use crate::events::{ContextEvent, EventManager};
use crate::EventKind;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

/// Thresholds for the metrics→event bridge watchers.
#[derive(Clone, Debug)]
pub struct BridgeConfig {
    /// Runs the bridge thread (only meaningful with telemetry enabled).
    pub enabled: bool,
    /// Poll period of the watcher thread.
    pub poll_interval: Duration,
    /// `CHANNEL_CONGESTED` when a stream's resident queued bytes
    /// (buffered channel bytes + parked pending outputs) reach this.
    pub queue_high_water_bytes: u64,
    /// `HIGH_DROP_RATE` when a stream drops at least this many messages
    /// within one poll interval.
    pub drop_rate_per_poll: u64,
    /// `HIGH_FAULT_RATE` when a stream faults at least this many times
    /// within one poll interval.
    pub fault_rate_per_poll: u64,
    /// `BYTE_BUDGET_EXCEEDED` when a session's cumulative ingress bytes
    /// exceed this budget. `None` disables the watcher.
    pub session_byte_budget: Option<u64>,
    /// `OVERLOAD` when a stream's admission rejections within one poll
    /// interval reach this count — the signal that load shedding should
    /// engage downstream of the bucket.
    pub admission_rejects_per_poll: u64,
}

impl Default for BridgeConfig {
    fn default() -> Self {
        BridgeConfig {
            enabled: true,
            poll_interval: Duration::from_millis(100),
            queue_high_water_bytes: 4 << 20,
            drop_rate_per_poll: 100,
            fault_rate_per_poll: 5,
            session_byte_budget: None,
            admission_rejects_per_poll: 100,
        }
    }
}

/// Per-stream watcher memory (edge-trigger state + last counter values).
#[derive(Default)]
struct WatchState {
    congested: bool,
    last_drops: u64,
    drop_latched: bool,
    last_faults: u64,
    fault_latched: bool,
    budget_latched: bool,
    last_admission: u64,
    admission_latched: bool,
}

/// Handle to the running bridge thread.
pub struct MetricsBridge {
    stop: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl MetricsBridge {
    /// Spawns the watcher thread. `telemetry` supplies per-stream
    /// counters, `coordination` the live stream set, `events` the
    /// publication sink.
    pub fn start(
        cfg: BridgeConfig,
        telemetry: Weak<Telemetry>,
        coordination: Weak<CoordinationManager>,
        events: Weak<EventManager>,
    ) -> Self {
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let stop2 = stop.clone();
        let thread = std::thread::Builder::new()
            .name("mobigate-bridge".into())
            .spawn(move || run(cfg, telemetry, coordination, events, stop2))
            .ok();
        MetricsBridge { stop, thread }
    }

    /// Stops and joins the watcher thread. Idempotent.
    pub fn stop(mut self) {
        {
            let (lock, cv) = &*self.stop;
            *lock.lock() = true;
            cv.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn run(
    cfg: BridgeConfig,
    telemetry: Weak<Telemetry>,
    coordination: Weak<CoordinationManager>,
    events: Weak<EventManager>,
    stop: Arc<(Mutex<bool>, Condvar)>,
) {
    let mut watch: HashMap<String, WatchState> = HashMap::new();
    loop {
        {
            let (lock, cv) = &*stop;
            let mut stopped = lock.lock();
            if !*stopped {
                cv.wait_for(&mut stopped, cfg.poll_interval);
            }
            if *stopped {
                return;
            }
        }
        let (Some(telemetry), Some(coordination), Some(events)) = (
            telemetry.upgrade(),
            coordination.upgrade(),
            events.upgrade(),
        ) else {
            return;
        };
        let streams = coordination.streams();
        let mut seen: Vec<&str> = Vec::with_capacity(streams.len());
        for stream in &streams {
            let session = stream.session().as_str().to_string();
            seen.push(stream.session().as_str());
            let metrics = telemetry.registry().get(&session);
            let state = watch.entry(session.clone()).or_default();

            // Queue high-water → CHANNEL_CONGESTED (level edge-triggered:
            // publishes on each rise through the mark).
            let resident = stream.stats().resident_bytes();
            if resident >= cfg.queue_high_water_bytes {
                if !state.congested {
                    state.congested = true;
                    events.multicast(&ContextEvent::targeted(
                        EventKind::ChannelCongested,
                        stream.name(),
                    ));
                }
            } else {
                state.congested = false;
            }

            if let Some(m) = &metrics {
                // Drop rate → HIGH_DROP_RATE.
                let drops = m.dropped_total();
                let delta = drops.saturating_sub(state.last_drops);
                state.last_drops = drops;
                if delta >= cfg.drop_rate_per_poll {
                    if !state.drop_latched {
                        state.drop_latched = true;
                        events.multicast(&ContextEvent::targeted(
                            EventKind::HighDropRate,
                            stream.name(),
                        ));
                    }
                } else {
                    state.drop_latched = false;
                }

                // Fault rate → HIGH_FAULT_RATE.
                let faults = m.faults.load(std::sync::atomic::Ordering::Relaxed);
                let fdelta = faults.saturating_sub(state.last_faults);
                state.last_faults = faults;
                if fdelta >= cfg.fault_rate_per_poll {
                    if !state.fault_latched {
                        state.fault_latched = true;
                        events.multicast(&ContextEvent::targeted(
                            EventKind::HighFaultRate,
                            stream.name(),
                        ));
                    }
                } else {
                    state.fault_latched = false;
                }

                // Admission pressure → OVERLOAD (edge-triggered like the
                // drop-rate watcher): a stream whose bucket is rejecting
                // hard should also shed its lowest-priority backlog.
                let rejects = m
                    .dropped_admission
                    .load(std::sync::atomic::Ordering::Relaxed);
                let adelta = rejects.saturating_sub(state.last_admission);
                state.last_admission = rejects;
                if adelta >= cfg.admission_rejects_per_poll {
                    if !state.admission_latched {
                        state.admission_latched = true;
                        events
                            .multicast(&ContextEvent::targeted(EventKind::Overload, stream.name()));
                    }
                } else {
                    state.admission_latched = false;
                }

                // Byte budget → BYTE_BUDGET_EXCEEDED (latched: cumulative
                // ingress bytes are monotonic).
                if let Some(budget) = cfg.session_byte_budget {
                    let bytes = m.bytes_in.load(std::sync::atomic::Ordering::Relaxed);
                    if bytes > budget && !state.budget_latched {
                        state.budget_latched = true;
                        events.multicast(&ContextEvent::targeted(
                            EventKind::ByteBudgetExceeded,
                            stream.name(),
                        ));
                    }
                }
            }
        }
        // Forget watcher state of retired sessions.
        watch.retain(|k, _| seen.contains(&k.as_str()));
    }
}
