//! The Coordination Manager (§3.3.1).
//!
//! Holds the configuration tables of every running coordination stream,
//! generates the per-instance session IDs (§4.4.3), deploys streams against
//! the shared runtime services, and bridges the Event Manager to streams —
//! "another important function of the Coordination Manager is to filter
//! events from the Event Manager and to broadcast them among coordination
//! streams."
//!
//! Per-message routing never consults these tables on the hot path: each
//! `StreamletHandle` memoizes its port → channel routes behind an epoch
//! counter (`streamlet.rs::Shared::resolve_route`) that every rewiring
//! bumps, so reconfigurations here invalidate the caches without the data
//! path ever taking the coordination locks.
//!
//! ## Sharding (session plane)
//!
//! The routing table itself ("the configuration table acts as the routing
//! table", §3.3.1) is split into power-of-two shards keyed by session ID,
//! matching the already-sharded `MessagePool`: deploying, reconfiguring,
//! or tearing down one session locks only the shard its session hashes
//! to, so churn on one user never serializes against lookups — or other
//! churn — on the other `shards − 1` of the population.

use crate::error::CoreError;
use crate::events::{ContextEvent, EventManager, EventSubscriber};
use crate::stream::{RunningStream, StreamDeps};
use mobigate_mcl::config::{ConfigTable, Program, StreamletSpec};
use mobigate_mime::SessionId;
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

type StreamShard = Mutex<HashMap<SessionId, Arc<RunningStream>>>;

/// Deploys and tracks running streams.
pub struct CoordinationManager {
    deps: StreamDeps,
    events: Arc<EventManager>,
    shards: Box<[StreamShard]>,
    mask: usize,
    next_session: AtomicU64,
}

impl CoordinationManager {
    /// A manager over shared runtime services, sized to the machine.
    pub fn new(deps: StreamDeps, events: Arc<EventManager>) -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_shards(deps, events, cores.next_power_of_two().clamp(1, 64))
    }

    /// A manager with a fixed routing-table shard count (rounded up to a
    /// power of two; `1` reproduces the original single-lock table).
    pub fn with_shards(deps: StreamDeps, events: Arc<EventManager>, shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        CoordinationManager {
            deps,
            events,
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
            mask: n - 1,
            next_session: AtomicU64::new(1),
        }
    }

    /// Number of routing-table shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a session's routing-table row lives in.
    fn shard_for(&self, session: &SessionId) -> &StreamShard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        session.as_str().hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Generates the next unique session ID (§4.4.3: "the system
    /// automatically generates a unique session ID for each instance of a
    /// stream").
    pub fn next_session_id(&self, stream_name: &str) -> SessionId {
        let n = self.next_session.fetch_add(1, Ordering::Relaxed);
        SessionId::new(format!("{stream_name}-{n}"))
    }

    /// Deploys one configuration table under an explicit session identity
    /// and subscribes the stream to the event categories its `when` rules
    /// react to (plus System Command, which every stream obeys for
    /// PAUSE/RESUME/END). This is the bottom of every deployment path —
    /// `deploy` routes compiled programs here, and the session plane
    /// (`session.rs`) feeds it template-instantiated tables directly,
    /// skipping recompilation.
    pub fn deploy_table(
        &self,
        table: &ConfigTable,
        defs: &BTreeMap<String, StreamletSpec>,
        session: SessionId,
    ) -> Result<Arc<RunningStream>, CoreError> {
        let stream = RunningStream::deploy(table, defs, self.deps.clone(), session.clone())?;

        // Subscribe to the categories of interest (§6.4: streams subscribe
        // to events of interest and ignore the flood of the rest).
        let sub: Arc<dyn EventSubscriber> = stream.clone();
        for c in stream.subscribed_categories() {
            self.events.subscribe(c, &sub);
        }

        self.shard_for(&session)
            .lock()
            .insert(session, stream.clone());
        Ok(stream)
    }

    /// Deploys one stream of a compiled program under a generated session.
    pub fn deploy(
        &self,
        program: &Program,
        stream_name: &str,
    ) -> Result<Arc<RunningStream>, CoreError> {
        let table = program
            .streams
            .get(stream_name)
            .ok_or_else(|| CoreError::NotFound {
                kind: "stream",
                name: stream_name.to_string(),
            })?;
        let session = self.next_session_id(stream_name);
        self.deploy_table(table, &program.streamlet_defs, session)
    }

    /// Deploys the program's `main` stream.
    pub fn deploy_main(&self, program: &Program) -> Result<Arc<RunningStream>, CoreError> {
        let name = program
            .main_stream
            .clone()
            .ok_or_else(|| CoreError::Deploy {
                message: "program has no `main` stream".into(),
            })?;
        self.deploy(program, &name)
    }

    /// Shuts a stream down and forgets it. Returns whether it existed.
    ///
    /// Teardown protocol: the routing-table row is removed first (new
    /// lookups miss immediately), the stream is unsubscribed from every
    /// event category it registered for (so 10k session teardowns do not
    /// leave 10k dead weak entries for multicast to prune), and only then
    /// is the stream shut down — outside the shard lock, because shutdown
    /// waits on executor tasks and checks instances back into the pool.
    pub fn undeploy(&self, session: &SessionId) -> bool {
        let removed = self.shard_for(session).lock().remove(session);
        match removed {
            Some(stream) => {
                let sub: Arc<dyn EventSubscriber> = stream.clone();
                for c in stream.subscribed_categories() {
                    self.events.unsubscribe(c, &sub);
                }
                stream.shutdown();
                true
            }
            None => false,
        }
    }

    /// Live streams snapshot (all shards; no global order).
    pub fn streams(&self) -> Vec<Arc<RunningStream>> {
        self.shards
            .iter()
            .flat_map(|s| s.lock().values().cloned().collect::<Vec<_>>())
            .collect()
    }

    /// Number of live streams.
    pub fn stream_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Looks up a stream by session — one shard lock, untouched by churn
    /// on sessions hashing elsewhere.
    pub fn stream(&self, session: &SessionId) -> Option<Arc<RunningStream>> {
        self.shard_for(session).lock().get(session).cloned()
    }

    /// Raises a context event through the Event Manager; returns the number
    /// of deliveries.
    pub fn raise(&self, event: &ContextEvent) -> usize {
        self.events.multicast(event)
    }

    /// The shared event manager.
    pub fn events(&self) -> &Arc<EventManager> {
        &self.events
    }

    /// The shared runtime services streams deploy against.
    pub fn deps(&self) -> &StreamDeps {
        &self.deps
    }

    /// Shuts every stream down.
    pub fn shutdown_all(&self) {
        for shard in self.shards.iter() {
            // Collect under the lock, shut down outside it.
            let drained: Vec<_> = shard.lock().drain().map(|(_, s)| s).collect();
            for stream in drained {
                stream.shutdown();
            }
        }
    }
}

impl Drop for CoordinationManager {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::StreamletDirectory;
    use crate::pool::{MessagePool, PayloadMode};
    use crate::pooling::StreamletPool;
    use crate::streamlet::{Emitter, StreamletCtx, StreamletLogic};
    use mobigate_mcl::compile::compile;
    use mobigate_mcl::events::EventKind;
    use mobigate_mime::MimeMessage;
    use std::time::Duration;

    struct Echo;
    impl StreamletLogic for Echo {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            ctx.emit("po", m);
            Ok(())
        }
    }

    fn manager() -> CoordinationManager {
        let directory = Arc::new(StreamletDirectory::new());
        directory.register("echo", "", || Box::new(Echo));
        let deps = StreamDeps {
            msg_pool: Arc::new(MessagePool::new()),
            directory,
            streamlet_pool: Arc::new(StreamletPool::new(8)),
            mode: PayloadMode::Reference,
            route_opts: Default::default(),
            executor: crate::executor::default_executor(),
            supervisor: None,
            batching: Default::default(),
            fusion: false,
            telemetry: None,
            overload: Default::default(),
            admission: None,
            buf_pool: None,
        };
        CoordinationManager::new(deps, Arc::new(EventManager::new()))
    }

    const SRC: &str = r#"
        streamlet echo { port { in pi : */*; out po : */*; } }
        main stream app {
            streamlet e = new-streamlet (echo);
            when (LOW_BANDWIDTH) { }
        }
    "#;

    #[test]
    fn deploy_main_and_route() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let stream = mgr.deploy_main(&program).unwrap();
        stream.post_input(MimeMessage::text("hi")).unwrap();
        assert!(stream.take_output(Duration::from_secs(5)).is_some());
        assert_eq!(mgr.streams().len(), 1);
    }

    #[test]
    fn sessions_are_unique_per_deployment() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let a = mgr.deploy_main(&program).unwrap();
        let b = mgr.deploy_main(&program).unwrap();
        assert_ne!(a.session(), b.session());
        assert_eq!(mgr.streams().len(), 2);
    }

    #[test]
    fn undeploy_removes_and_shuts_down() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let s = mgr.deploy_main(&program).unwrap();
        let session = s.session().clone();
        assert!(mgr.stream(&session).is_some());
        assert!(mgr.undeploy(&session));
        assert!(!mgr.undeploy(&session));
        assert!(mgr.stream(&session).is_none());
    }

    #[test]
    fn deploy_unknown_stream_fails() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        assert!(mgr.deploy(&program, "ghost").is_err());
    }

    #[test]
    fn deploy_main_requires_main() {
        let mgr = manager();
        let program = compile("stream notmain { }").unwrap();
        assert!(matches!(
            mgr.deploy_main(&program),
            Err(CoreError::Deploy { .. })
        ));
    }

    #[test]
    fn events_reach_subscribed_streams() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let _stream = mgr.deploy_main(&program).unwrap();
        // The app subscribed NetworkVariation (when rule) + SystemCommand.
        let delivered = mgr.raise(&ContextEvent::broadcast(EventKind::LowBandwidth));
        assert_eq!(delivered, 1);
        let delivered = mgr.raise(&ContextEvent::broadcast(EventKind::LowEnergy));
        assert_eq!(delivered, 0, "not subscribed to HardwareVariation");
    }

    #[test]
    fn end_event_is_obeyed() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let stream = mgr.deploy_main(&program).unwrap();
        mgr.raise(&ContextEvent::targeted(EventKind::End, "app"));
        stream.post_input(MimeMessage::text("late")).unwrap();
        assert!(stream.take_output(Duration::from_millis(100)).is_none());
    }
}
