//! The Coordination Manager (§3.3.1).
//!
//! Holds the configuration tables of every running coordination stream,
//! generates the per-instance session IDs (§4.4.3), deploys streams against
//! the shared runtime services, and bridges the Event Manager to streams —
//! "another important function of the Coordination Manager is to filter
//! events from the Event Manager and to broadcast them among coordination
//! streams."
//!
//! Per-message routing never consults these tables on the hot path: each
//! `StreamletHandle` memoizes its port → channel routes behind an epoch
//! counter (`streamlet.rs::Shared::resolve_route`) that every rewiring
//! bumps, so reconfigurations here invalidate the caches without the data
//! path ever taking the coordination locks.

use crate::error::CoreError;
use crate::events::{ContextEvent, EventManager, EventSubscriber};
use crate::stream::{RunningStream, StreamDeps};
use mobigate_mcl::config::Program;
use mobigate_mcl::events::EventCategory;
use mobigate_mime::SessionId;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Deploys and tracks running streams.
pub struct CoordinationManager {
    deps: StreamDeps,
    events: Arc<EventManager>,
    streams: Mutex<HashMap<SessionId, Arc<RunningStream>>>,
    next_session: AtomicU64,
}

impl CoordinationManager {
    /// A manager over shared runtime services.
    pub fn new(deps: StreamDeps, events: Arc<EventManager>) -> Self {
        CoordinationManager {
            deps,
            events,
            streams: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(1),
        }
    }

    /// Generates the next unique session ID (§4.4.3: "the system
    /// automatically generates a unique session ID for each instance of a
    /// stream").
    pub fn next_session_id(&self, stream_name: &str) -> SessionId {
        let n = self.next_session.fetch_add(1, Ordering::Relaxed);
        SessionId::new(format!("{stream_name}-{n}"))
    }

    /// Deploys one stream of a compiled program and subscribes it to the
    /// event categories its `when` rules react to (plus System Command,
    /// which every stream obeys for PAUSE/RESUME/END).
    pub fn deploy(
        &self,
        program: &Program,
        stream_name: &str,
    ) -> Result<Arc<RunningStream>, CoreError> {
        let table = program
            .streams
            .get(stream_name)
            .ok_or_else(|| CoreError::NotFound {
                kind: "stream",
                name: stream_name.to_string(),
            })?;
        let session = self.next_session_id(stream_name);
        let stream = RunningStream::deploy(
            table,
            &program.streamlet_defs,
            self.deps.clone(),
            session.clone(),
        )?;

        // Subscribe to the categories of interest (§6.4: streams subscribe
        // to events of interest and ignore the flood of the rest).
        let sub: Arc<dyn EventSubscriber> = stream.clone();
        let mut categories: Vec<EventCategory> = table
            .when_rules
            .iter()
            .map(|r| r.event.category())
            .collect();
        categories.push(EventCategory::SystemCommand);
        if self.deps.fusion {
            // Fault-driven fission: the stream must observe STREAMLET_FAULT
            // events to split a quarantined fused unit around its poisoned
            // member (see `stream.rs::fission_quarantined`).
            categories.push(EventCategory::RuntimeFault);
        }
        categories.sort_by_key(|c| c.id());
        categories.dedup();
        for c in categories {
            self.events.subscribe(c, &sub);
        }

        self.streams.lock().insert(session, stream.clone());
        Ok(stream)
    }

    /// Deploys the program's `main` stream.
    pub fn deploy_main(&self, program: &Program) -> Result<Arc<RunningStream>, CoreError> {
        let name = program
            .main_stream
            .clone()
            .ok_or_else(|| CoreError::Deploy {
                message: "program has no `main` stream".into(),
            })?;
        self.deploy(program, &name)
    }

    /// Shuts a stream down and forgets it. Returns whether it existed.
    pub fn undeploy(&self, session: &SessionId) -> bool {
        match self.streams.lock().remove(session) {
            Some(stream) => {
                stream.shutdown();
                true
            }
            None => false,
        }
    }

    /// Live streams snapshot.
    pub fn streams(&self) -> Vec<Arc<RunningStream>> {
        self.streams.lock().values().cloned().collect()
    }

    /// Looks up a stream by session.
    pub fn stream(&self, session: &SessionId) -> Option<Arc<RunningStream>> {
        self.streams.lock().get(session).cloned()
    }

    /// Raises a context event through the Event Manager; returns the number
    /// of deliveries.
    pub fn raise(&self, event: &ContextEvent) -> usize {
        self.events.multicast(event)
    }

    /// The shared event manager.
    pub fn events(&self) -> &Arc<EventManager> {
        &self.events
    }

    /// Shuts every stream down.
    pub fn shutdown_all(&self) {
        for (_, stream) in self.streams.lock().drain() {
            stream.shutdown();
        }
    }
}

impl Drop for CoordinationManager {
    fn drop(&mut self) {
        self.shutdown_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::directory::StreamletDirectory;
    use crate::pool::{MessagePool, PayloadMode};
    use crate::pooling::StreamletPool;
    use crate::streamlet::{Emitter, StreamletCtx, StreamletLogic};
    use mobigate_mcl::compile::compile;
    use mobigate_mcl::events::EventKind;
    use mobigate_mime::MimeMessage;
    use std::time::Duration;

    struct Echo;
    impl StreamletLogic for Echo {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            ctx.emit("po", m);
            Ok(())
        }
    }

    fn manager() -> CoordinationManager {
        let directory = Arc::new(StreamletDirectory::new());
        directory.register("echo", "", || Box::new(Echo));
        let deps = StreamDeps {
            msg_pool: Arc::new(MessagePool::new()),
            directory,
            streamlet_pool: Arc::new(StreamletPool::new(8)),
            mode: PayloadMode::Reference,
            route_opts: Default::default(),
            executor: crate::executor::default_executor(),
            supervisor: None,
            batching: Default::default(),
            fusion: false,
        };
        CoordinationManager::new(deps, Arc::new(EventManager::new()))
    }

    const SRC: &str = r#"
        streamlet echo { port { in pi : */*; out po : */*; } }
        main stream app {
            streamlet e = new-streamlet (echo);
            when (LOW_BANDWIDTH) { }
        }
    "#;

    #[test]
    fn deploy_main_and_route() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let stream = mgr.deploy_main(&program).unwrap();
        stream.post_input(MimeMessage::text("hi")).unwrap();
        assert!(stream.take_output(Duration::from_secs(5)).is_some());
        assert_eq!(mgr.streams().len(), 1);
    }

    #[test]
    fn sessions_are_unique_per_deployment() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let a = mgr.deploy_main(&program).unwrap();
        let b = mgr.deploy_main(&program).unwrap();
        assert_ne!(a.session(), b.session());
        assert_eq!(mgr.streams().len(), 2);
    }

    #[test]
    fn undeploy_removes_and_shuts_down() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let s = mgr.deploy_main(&program).unwrap();
        let session = s.session().clone();
        assert!(mgr.stream(&session).is_some());
        assert!(mgr.undeploy(&session));
        assert!(!mgr.undeploy(&session));
        assert!(mgr.stream(&session).is_none());
    }

    #[test]
    fn deploy_unknown_stream_fails() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        assert!(mgr.deploy(&program, "ghost").is_err());
    }

    #[test]
    fn deploy_main_requires_main() {
        let mgr = manager();
        let program = compile("stream notmain { }").unwrap();
        assert!(matches!(
            mgr.deploy_main(&program),
            Err(CoreError::Deploy { .. })
        ));
    }

    #[test]
    fn events_reach_subscribed_streams() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let _stream = mgr.deploy_main(&program).unwrap();
        // The app subscribed NetworkVariation (when rule) + SystemCommand.
        let delivered = mgr.raise(&ContextEvent::broadcast(EventKind::LowBandwidth));
        assert_eq!(delivered, 1);
        let delivered = mgr.raise(&ContextEvent::broadcast(EventKind::LowEnergy));
        assert_eq!(delivered, 0, "not subscribed to HardwareVariation");
    }

    #[test]
    fn end_event_is_obeyed() {
        let mgr = manager();
        let program = compile(SRC).unwrap();
        let stream = mgr.deploy_main(&program).unwrap();
        mgr.raise(&ContextEvent::targeted(EventKind::End, "app"));
        stream.post_input(MimeMessage::text("late")).unwrap();
        assert!(stream.take_output(Duration::from_millis(100)).is_none());
    }
}
