//! The MobiGATE server facade (Figure 3-2 in one object).
//!
//! `MobiGate` bundles the Streamlet Directory, the streamlet pool, the
//! central message pool, the Event Manager, and the Coordination Manager,
//! and exposes the paper's working surface: register streamlet
//! implementations, deploy MCL scripts, inject flows, raise context events.
//!
//! Deployment runs the Chapter-5 semantic analyses first and rejects
//! inconsistent compositions ("the overall MCL description can be validated
//! to ensure that potential conflicts … are resolved at compilation time",
//! §5.3); [`MobiGate::deploy_mcl_unchecked`] skips the analyses for
//! experiments that need a deliberately odd topology.

use crate::coordination::CoordinationManager;
use crate::directory::StreamletDirectory;
use crate::error::CoreError;
use crate::events::{ContextEvent, EventManager};
use crate::executor::{default_executor, Executor, Reactor, WorkerPool};
use crate::membuf::{BufferPool, MembufConfig};
use crate::overload::{AdmissionController, OverloadConfig};
use crate::pool::{MessagePool, PayloadMode};
use crate::pooling::StreamletPool;
use crate::session::SessionManager;
use crate::stream::{BatchConfig, RunningStream, StreamDeps};
use crate::supervisor::{DeadLetterQueue, RestartPolicy, Supervisor};
use crate::telemetry::{bridge::MetricsBridge, MetricsSnapshot, Telemetry, TelemetryConfig};
use mobigate_mcl::analysis;
use mobigate_mcl::compile::compile;
use mobigate_mcl::config::Program;
use mobigate_mcl::template::StreamTemplate;
use mobigate_mime::SessionId;
use std::sync::Arc;

/// Which back end schedules the execution plane's streamlets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutorConfig {
    /// One OS thread per streamlet — the paper-faithful default
    /// (`Streamlet extends Thread`).
    #[default]
    ThreadPerStreamlet,
    /// A shared pool of `workers` threads driving a run-queue of runnable
    /// streamlets, so deep compositions don't cost a thread per hop.
    WorkerPool {
        /// Number of pool worker threads (clamped to at least 1).
        workers: usize,
    },
    /// Per-worker run queues with work stealing and waker-driven
    /// scheduling — thousands of mostly-idle sessions per core on a
    /// fixed, flat thread count.
    Reactor {
        /// Number of reactor worker threads (clamped to at least 1).
        workers: usize,
    },
}

impl ExecutorConfig {
    /// Instantiates the configured executor.
    pub fn build(self) -> Arc<dyn Executor> {
        match self {
            ExecutorConfig::ThreadPerStreamlet => default_executor(),
            ExecutorConfig::WorkerPool { workers } => WorkerPool::new(workers),
            ExecutorConfig::Reactor { workers } => Reactor::new(workers),
        }
    }
}

/// Fault-tolerance knobs for the execution plane (see `supervisor.rs`).
#[derive(Clone)]
pub struct SupervisionConfig {
    /// When false, no supervisor is built: a faulted instance stays
    /// `Faulted` forever (panics are still isolated from the executor).
    pub enabled: bool,
    /// Default restart policy applied to every deployed instance.
    pub policy: RestartPolicy,
    /// Capacity of the poison-message dead-letter queue.
    pub dead_letter_capacity: usize,
    /// Seed of the supervisor's restart-backoff jitter PRNG. A fixed seed
    /// makes restart schedules bit-for-bit reproducible across runs; vary
    /// it to decorrelate restart storms across gateway replicas.
    pub jitter_seed: u64,
}

impl Default for SupervisionConfig {
    fn default() -> Self {
        SupervisionConfig {
            enabled: true,
            policy: RestartPolicy::default(),
            dead_letter_capacity: 64,
            jitter_seed: Supervisor::DEFAULT_JITTER_SEED,
        }
    }
}

/// Server-wide runtime knobs, grouped so ablations can vary one axis at a
/// time.
#[derive(Clone)]
pub struct ServerConfig {
    /// Reference vs. value payload passing (Figure 7-3).
    pub mode: PayloadMode,
    /// Runtime type-check options (§4.1).
    pub route_opts: crate::streamlet::RouteOpts,
    /// Execution back end for streamlets.
    pub executor: ExecutorConfig,
    /// Message-pool shard count (rounded up to a power of two). `None`
    /// derives it from the machine's available parallelism.
    pub pool_shards: Option<usize>,
    /// Coordination-plane shard count — splits the Coordination Manager's
    /// routing table and the Event Manager's per-category subscriber
    /// lists (rounded up to a power of two; `1` reproduces the paper's
    /// single-lock planes). `None` derives it from available parallelism.
    pub coord_shards: Option<usize>,
    /// Streamlet supervision (panic isolation is always on; this governs
    /// restarts, quarantine, and the dead-letter queue).
    pub supervision: SupervisionConfig,
    /// Hot-path batching: per-wake drain ceiling and the SPSC channel
    /// fast path.
    pub batching: BatchConfig,
    /// Chain fusion: statically collapse maximal runs of fusable streamlets
    /// into single execution units at deploy time, with event-driven
    /// fission on reconfiguration or member quarantine (see `fusion.rs`).
    pub fusion: bool,
    /// Observability plane: hot-path metrics, lifecycle traces, and the
    /// metrics→event bridge. Disabled by default — the off path allocates
    /// nothing and costs one branch per instrumented operation.
    pub telemetry: TelemetryConfig,
    /// Overload protection: token-bucket admission control at ingress,
    /// priority-aware load shedding, and per-instance circuit breakers.
    /// Disabled by default — enabling it is the graceful-degradation
    /// posture for gateways facing bursty client populations.
    pub overload: OverloadConfig,
    /// Memory plane: the recycled-slab buffer pool backing
    /// [`RunningStream::post_wire`] ingress bodies. Enabled by default;
    /// disabling reproduces the plain-allocation baseline for ablations.
    pub membuf: MembufConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            mode: PayloadMode::Reference,
            route_opts: Default::default(),
            executor: ExecutorConfig::default(),
            pool_shards: None,
            coord_shards: None,
            supervision: SupervisionConfig::default(),
            batching: BatchConfig::default(),
            fusion: false,
            telemetry: TelemetryConfig::default(),
            overload: OverloadConfig::default(),
            membuf: MembufConfig::default(),
        }
    }
}

/// The assembled MobiGATE server.
pub struct MobiGate {
    directory: Arc<StreamletDirectory>,
    streamlet_pool: Arc<StreamletPool>,
    msg_pool: Arc<MessagePool>,
    events: Arc<EventManager>,
    /// Shared (`Arc`) so session managers can deploy/undeploy against it;
    /// the server's `Drop` still shuts every stream down first (see
    /// below), whatever clones are outstanding.
    coordination: Arc<CoordinationManager>,
    mode: PayloadMode,
    /// Declared after `coordination` on purpose: streams shut down (ending
    /// their streamlets) before the supervisor stops restarting them and
    /// before the executor's workers are joined.
    supervisor: Option<Arc<Supervisor>>,
    executor: Arc<dyn Executor>,
    /// The observability plane, when `ServerConfig { telemetry }` enabled
    /// it. `None` otherwise — nothing is allocated, nothing is polled.
    telemetry: Option<Arc<Telemetry>>,
    /// Gateway-wide admission controller, when `ServerConfig { overload }`
    /// enabled admission control. Shared with every stream's deps.
    admission: Option<Arc<AdmissionController>>,
    /// Memory plane: the recycled-slab buffer pool, when enabled.
    buf_pool: Option<Arc<BufferPool>>,
}

impl Drop for MobiGate {
    fn drop(&mut self) {
        // Stop the bridge's watcher thread before tearing streams down so
        // it never observes a half-shut-down coordination plane.
        if let Some(t) = &self.telemetry {
            t.stop_bridge();
        }
        // An outstanding `Arc<CoordinationManager>` (a SessionManager kept
        // alive past the gate) must not keep streams running against an
        // executor whose workers the next field drops are about to join.
        self.coordination.shutdown_all();
    }
}

impl Default for MobiGate {
    fn default() -> Self {
        Self::new(PayloadMode::Reference)
    }
}

impl MobiGate {
    /// Builds a server with the given payload-passing mode.
    pub fn new(mode: PayloadMode) -> Self {
        Self::with_services(
            mode,
            Arc::new(StreamletDirectory::new()),
            Arc::new(StreamletPool::new(64)),
        )
    }

    /// Builds a server over caller-supplied directory/pool (ablations swap
    /// in [`StreamletPool::disabled`]).
    pub fn with_services(
        mode: PayloadMode,
        directory: Arc<StreamletDirectory>,
        streamlet_pool: Arc<StreamletPool>,
    ) -> Self {
        Self::with_options(mode, directory, streamlet_pool, Default::default())
    }

    /// Builds a server with explicit routing options (e.g. the §4.1
    /// runtime type check enabled).
    pub fn with_options(
        mode: PayloadMode,
        directory: Arc<StreamletDirectory>,
        streamlet_pool: Arc<StreamletPool>,
        route_opts: crate::streamlet::RouteOpts,
    ) -> Self {
        Self::with_config(
            ServerConfig {
                mode,
                route_opts,
                ..Default::default()
            },
            directory,
            streamlet_pool,
        )
    }

    /// Builds a server from a full [`ServerConfig`] (executor back end,
    /// message-pool sharding, payload mode, routing options).
    pub fn with_config(
        config: ServerConfig,
        directory: Arc<StreamletDirectory>,
        streamlet_pool: Arc<StreamletPool>,
    ) -> Self {
        let msg_pool = Arc::new(match config.pool_shards {
            Some(n) => MessagePool::with_shards(n),
            None => MessagePool::new(),
        });
        let executor = config.executor.build();
        let events = Arc::new(match config.coord_shards {
            Some(n) => EventManager::with_shards(n),
            None => EventManager::new(),
        });
        let supervisor = if config.supervision.enabled {
            Some(Supervisor::with_options(
                events.clone(),
                config.supervision.policy.clone(),
                config.supervision.dead_letter_capacity,
                config.supervision.jitter_seed,
                config
                    .overload
                    .breaker_on()
                    .then(|| config.overload.breaker.clone()),
            ))
        } else {
            None
        };
        let admission = config
            .overload
            .admission_on()
            .then(|| AdmissionController::new(config.overload.admission.clone()));
        let telemetry = if config.telemetry.enabled {
            let t = Telemetry::new(&config.telemetry);
            if let Some(sup) = &supervisor {
                sup.set_telemetry(t.clone());
            }
            Some(t)
        } else {
            None
        };
        let buf_pool = BufferPool::from_config(&config.membuf);
        let deps = StreamDeps {
            msg_pool: msg_pool.clone(),
            directory: directory.clone(),
            streamlet_pool: streamlet_pool.clone(),
            mode: config.mode,
            route_opts: config.route_opts,
            executor: executor.clone(),
            supervisor: supervisor.clone(),
            batching: config.batching,
            fusion: config.fusion,
            telemetry: telemetry.clone(),
            overload: config.overload.clone(),
            admission: admission.clone(),
            buf_pool: buf_pool.clone(),
        };
        let coordination = Arc::new(match config.coord_shards {
            Some(n) => CoordinationManager::with_shards(deps, events.clone(), n),
            None => CoordinationManager::new(deps, events.clone()),
        });
        if let Some(t) = &telemetry {
            if config.telemetry.bridge.enabled {
                let bridge = MetricsBridge::start(
                    config.telemetry.bridge.clone(),
                    Arc::downgrade(t),
                    Arc::downgrade(&coordination),
                    Arc::downgrade(&events),
                );
                t.install_bridge(bridge);
            }
        }
        MobiGate {
            directory,
            streamlet_pool,
            msg_pool,
            events,
            coordination,
            mode: config.mode,
            supervisor,
            executor,
            telemetry,
            admission,
            buf_pool,
        }
    }

    /// The streamlet implementation registry.
    pub fn directory(&self) -> &Arc<StreamletDirectory> {
        &self.directory
    }

    /// The stateless-instance pool.
    pub fn streamlet_pool(&self) -> &Arc<StreamletPool> {
        &self.streamlet_pool
    }

    /// The central message pool.
    pub fn message_pool(&self) -> &Arc<MessagePool> {
        &self.msg_pool
    }

    /// The event manager.
    pub fn events(&self) -> &Arc<EventManager> {
        &self.events
    }

    /// The coordination manager (shared with session managers).
    pub fn coordination(&self) -> &Arc<CoordinationManager> {
        &self.coordination
    }

    /// The configured payload mode.
    pub fn mode(&self) -> PayloadMode {
        self.mode
    }

    /// The execution back end scheduling this server's streamlets.
    pub fn executor(&self) -> &Arc<dyn Executor> {
        &self.executor
    }

    /// The streamlet supervisor, when supervision is enabled.
    pub fn supervisor(&self) -> Option<&Arc<Supervisor>> {
        self.supervisor.as_ref()
    }

    /// The poison-message dead-letter queue (inspection API), when
    /// supervision is enabled.
    pub fn dead_letters(&self) -> Option<&Arc<DeadLetterQueue>> {
        self.supervisor.as_ref().map(|s| s.dead_letters())
    }

    /// The observability plane, when enabled.
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// The admission controller, when overload protection enabled it.
    pub fn admission(&self) -> Option<&Arc<AdmissionController>> {
        self.admission.as_ref()
    }

    /// The memory plane's buffer pool, when enabled.
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.buf_pool.as_ref()
    }

    /// Assembles one coherent [`MetricsSnapshot`] across every subsystem
    /// (stream totals + per-stream breakdown, pools, events, supervisor,
    /// trace ring). `None` when telemetry is disabled. Render it with
    /// [`MetricsSnapshot::render_prometheus`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let t = self.telemetry.as_ref()?;
        let registry = t.registry();
        Some(MetricsSnapshot {
            totals: registry.totals(),
            per_stream: registry.per_stream(),
            live_streams: registry.live_count(),
            streamlet_pool: self.streamlet_pool.stats(),
            msg_pool: self.msg_pool.stats(),
            events: self.events.stats(),
            supervisor: self.supervisor.as_ref().map(|s| s.stats()),
            dead_letters: self.supervisor.as_ref().map(|s| s.dead_letters().stats()),
            trace_recorded: t.trace().recorded(),
            trace_overwritten: t.trace().overwritten(),
            executor: self.executor.stats(),
            buf_pool: self.buf_pool.as_ref().map(|p| p.stats()),
        })
    }

    /// JSONL export of the lifecycle trace ring. `None` when telemetry is
    /// disabled.
    pub fn export_trace_jsonl(&self) -> Option<String> {
        self.telemetry.as_ref().map(|t| t.export_trace_jsonl())
    }

    /// Compiles `source` and returns the program without deploying.
    pub fn compile(&self, source: &str) -> Result<Program, CoreError> {
        compile(source).map_err(|e| CoreError::Deploy {
            message: e.to_string(),
        })
    }

    /// The single compile-and-resolve path every script entry point shares:
    /// compiles `source`, resolves the `main` stream, and (when `checked`)
    /// runs the Chapter-5 consistency gate.
    fn compile_main(&self, source: &str, checked: bool) -> Result<(Program, String), CoreError> {
        let program = self.compile(source)?;
        let name = program
            .main_stream
            .clone()
            .ok_or_else(|| CoreError::Deploy {
                message: "script has no `main` stream".into(),
            })?;
        if checked {
            // Chapter-5 consistency gate.
            if let Some(report) = analysis::analyze(&program, &name) {
                if !report.is_consistent() {
                    return Err(CoreError::Deploy {
                        message: format!("composition inconsistent:\n{}", report.summary()),
                    });
                }
            }
        }
        Ok((program, name))
    }

    /// Compiles, analyzes, and deploys the `main` stream of an MCL script.
    pub fn deploy_mcl(&self, source: &str) -> Result<Arc<RunningStream>, CoreError> {
        let (program, name) = self.compile_main(source, true)?;
        self.coordination.deploy(&program, &name)
    }

    /// Deploys without the semantic-analysis gate.
    pub fn deploy_mcl_unchecked(&self, source: &str) -> Result<Arc<RunningStream>, CoreError> {
        let (program, name) = self.compile_main(source, false)?;
        self.coordination.deploy(&program, &name)
    }

    /// Compiles an MCL script into a session plane: the `main` stream
    /// becomes a validated template and the returned [`SessionManager`]
    /// stamps out one independent per-user stream per `spawn`, each with
    /// its own `Content-Session` identity. Compilation and the Chapter-5
    /// analyses run once here, not once per session.
    pub fn session_manager(&self, source: &str) -> Result<SessionManager, CoreError> {
        // The template runs the consistency gate itself.
        let (program, name) = self.compile_main(source, false)?;
        let template =
            StreamTemplate::from_program(&program, &name).map_err(|e| CoreError::Deploy {
                message: e.to_string(),
            })?;
        Ok(SessionManager::new(template, self.coordination.clone()))
    }

    /// Tears one stream down: drains its in-flight messages (bounded),
    /// detaches its channels, checks stateless instances back into the
    /// §3.3.4 pool, and forgets its routing-table row. Returns whether
    /// the session existed. (Before the session plane, streams only died
    /// with the server.)
    pub fn undeploy(&self, session: &SessionId) -> bool {
        if let Some(stream) = self.coordination.stream(session) {
            stream.drain(crate::session::DEFAULT_DRAIN_TIMEOUT);
        }
        self.coordination.undeploy(session)
    }

    /// Deploys a named (non-main) stream of an already-compiled program.
    pub fn deploy_stream(
        &self,
        program: &Program,
        name: &str,
    ) -> Result<Arc<RunningStream>, CoreError> {
        self.coordination.deploy(program, name)
    }

    /// Raises a context event; returns the number of deliveries.
    pub fn raise_event(&self, event: &ContextEvent) -> usize {
        self.coordination.raise(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamlet::{Emitter, StreamletCtx, StreamletLogic};
    use mobigate_mime::MimeMessage;
    use std::time::Duration;

    struct Rev;
    impl StreamletLogic for Rev {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let mut b = msg.body.to_vec();
            b.reverse();
            let mut out = msg.clone();
            out.set_body(b);
            ctx.emit("po", out);
            Ok(())
        }
    }

    fn server() -> MobiGate {
        let gate = MobiGate::default();
        gate.directory()
            .register("builtin/rev", "reverse bytes", || Box::new(Rev));
        gate
    }

    #[test]
    fn deploy_and_process() {
        let gate = server();
        let stream = gate
            .deploy_mcl(
                r#"
                streamlet rev {
                    port { in pi : text; out po : text; }
                    attribute { type = STATELESS; library = "builtin/rev"; }
                }
                main stream app {
                    streamlet r = new-streamlet (rev);
                }
                "#,
            )
            .unwrap();
        stream.post_input(MimeMessage::text("abc")).unwrap();
        let out = stream.take_output(Duration::from_secs(5)).unwrap();
        assert_eq!(&out.body[..], b"cba");
    }

    #[test]
    fn worker_pool_config_runs_streams() {
        let gate = MobiGate::with_config(
            ServerConfig {
                executor: ExecutorConfig::WorkerPool { workers: 4 },
                pool_shards: Some(4),
                ..Default::default()
            },
            Arc::new(StreamletDirectory::new()),
            Arc::new(crate::pooling::StreamletPool::new(8)),
        );
        assert_eq!(gate.executor().name(), "worker-pool");
        assert_eq!(gate.message_pool().shard_count(), 4);
        gate.directory()
            .register("builtin/rev", "reverse bytes", || Box::new(Rev));
        let stream = gate
            .deploy_mcl(
                r#"
                streamlet rev {
                    port { in pi : text; out po : text; }
                    attribute { type = STATELESS; library = "builtin/rev"; }
                }
                main stream app {
                    streamlet r = new-streamlet (rev);
                }
                "#,
            )
            .unwrap();
        stream.post_input(MimeMessage::text("abc")).unwrap();
        let out = stream.take_output(Duration::from_secs(5)).unwrap();
        assert_eq!(&out.body[..], b"cba");
        stream.shutdown();
    }

    #[test]
    fn deploy_rejects_feedback_loop() {
        let gate = server();
        let err = gate
            .deploy_mcl(
                r#"
                streamlet rev {
                    port { in pi : text; out po : text; }
                    attribute { type = STATELESS; library = "builtin/rev"; }
                }
                main stream app {
                    streamlet a = new-streamlet (rev);
                    streamlet b = new-streamlet (rev);
                    connect (a.po, b.pi);
                    connect (b.po, a.pi);
                }
                "#,
            )
            .err()
            .expect("deployment must be rejected");
        assert!(err.to_string().contains("feedback loop"), "{err}");
    }

    #[test]
    fn unchecked_deploy_skips_the_gate() {
        let gate = server();
        // The same cyclic composition deploys when explicitly unchecked.
        let stream = gate
            .deploy_mcl_unchecked(
                r#"
                streamlet rev {
                    port { in pi : text; out po : text; }
                    attribute { type = STATELESS; library = "builtin/rev"; }
                }
                main stream app {
                    streamlet a = new-streamlet (rev);
                    streamlet b = new-streamlet (rev);
                    connect (a.po, b.pi);
                    connect (b.po, a.pi);
                }
                "#,
            )
            .unwrap();
        stream.shutdown();
    }

    #[test]
    fn deploy_reports_compile_errors() {
        let gate = server();
        let err = gate
            .deploy_mcl("main stream app { connect (x.o, y.i); }")
            .err()
            .expect("deployment must fail");
        assert!(matches!(err, CoreError::Deploy { .. }));
        assert!(err.to_string().contains("undefined"));
    }

    #[test]
    fn deploy_requires_main() {
        let gate = server();
        assert!(gate.deploy_mcl("stream s { }").is_err());
    }

    #[test]
    fn missing_library_fails_at_deploy() {
        let gate = server();
        let err = gate
            .deploy_mcl(
                r#"
                streamlet ghost {
                    port { in pi : text; out po : text; }
                    attribute { type = STATELESS; library = "no/such"; }
                }
                main stream app { streamlet g = new-streamlet (ghost); }
                "#,
            )
            .err()
            .expect("deployment must fail");
        assert!(matches!(err, CoreError::UnknownLibrary(_)), "{err}");
    }
}
