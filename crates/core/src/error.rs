//! Runtime error type.

use std::fmt;
use std::time::Duration;

/// Errors raised by the MobiGATE runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// No factory registered for a streamlet library key.
    UnknownLibrary(String),
    /// A named instance/channel/port was not found at runtime.
    NotFound { kind: &'static str, name: String },
    /// A lifecycle operation was invalid in the current state (e.g.
    /// activating an ended streamlet).
    Lifecycle { name: String, message: String },
    /// A channel operation violated its category (e.g. detaching a KK
    /// channel).
    Channel { name: String, message: String },
    /// A streamlet's `process` implementation failed.
    Process { streamlet: String, message: String },
    /// Reconfiguration could not complete (safety conditions of Fig 6-8
    /// not satisfiable within the deadline, etc.).
    Reconfig { message: String },
    /// Deployment failed (bad configuration table, MCL error text, …).
    Deploy { message: String },
    /// A bounded wait on an instance (e.g. a pause acknowledgement) expired.
    Timeout { waited: Duration, instance: String },
    /// Admission control rejected an ingress post: the session's or the
    /// gateway's token bucket was empty. The message never entered the
    /// pool; the rejection is charged to the `admission` drop reason.
    Overloaded { session: String },
    /// An ingress wire buffer failed to parse as a MIME message.
    Malformed { message: String },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownLibrary(lib) => {
                write!(
                    f,
                    "no streamlet implementation registered for library `{lib}`"
                )
            }
            CoreError::NotFound { kind, name } => write!(f, "{kind} `{name}` not found"),
            CoreError::Lifecycle { name, message } => {
                write!(f, "lifecycle error on `{name}`: {message}")
            }
            CoreError::Channel { name, message } => {
                write!(f, "channel error on `{name}`: {message}")
            }
            CoreError::Process { streamlet, message } => {
                write!(f, "streamlet `{streamlet}` failed: {message}")
            }
            CoreError::Reconfig { message } => write!(f, "reconfiguration failed: {message}"),
            CoreError::Deploy { message } => write!(f, "deployment failed: {message}"),
            CoreError::Timeout { waited, instance } => {
                write!(f, "timed out after {waited:?} waiting on `{instance}`")
            }
            CoreError::Overloaded { session } => {
                write!(f, "admission control rejected ingress for `{session}`")
            }
            CoreError::Malformed { message } => {
                write!(f, "malformed wire message: {message}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(CoreError::UnknownLibrary("x/y".into())
            .to_string()
            .contains("x/y"));
        assert!(CoreError::NotFound {
            kind: "port",
            name: "pi".into()
        }
        .to_string()
        .contains("pi"));
        assert!(CoreError::Process {
            streamlet: "s".into(),
            message: "boom".into()
        }
        .to_string()
        .contains("boom"));
    }
}
