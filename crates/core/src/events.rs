//! The MobiGATE event system (§6.4, Figures 6-5..6-7).
//!
//! Client variations are modeled as [`ContextEvent`] objects with three
//! attributes — `eventID`, `categoryID`, `evtSource` — and classified into
//! the four Table 6-1 categories. The [`EventManager`] maintains one
//! subscriber list per category (`subscriberList` in Figure 6-7); streams
//! subscribe to categories of interest and ignore the rest, "to avoid
//! overheads incurred in processing the flood of events". Events are
//! **multicast**: every subscriber of the category receives the event, and
//! a subscriber additionally filters on `evtSource` (an event targeted at a
//! specific stream application is ignored by others).
//!
//! ## Sharding (session plane)
//!
//! With thousands of per-user sessions subscribed, one `RwLock` per
//! category would make every deploy (a `subscribe` write) contend with
//! every `when`-rule delivery. Each category's subscriber list is
//! therefore split into power-of-two shards keyed by the *subscriber
//! name* — the same identity `evtSource` targets — so a targeted event
//! locks exactly one shard (the one its target lives in) and a session's
//! subscribe/unsubscribe never touches the shard another session's
//! delivery is reading. Broadcasts still sweep every shard; they are the
//! rare whole-gateway signals (LOW_BANDWIDTH et al.), not the per-session
//! hot path. Delivery semantics are shard-count independent; only the
//! `filtered` counter narrows (a targeted event no longer *sees* — and so
//! no longer counts — non-matching subscribers parked in other shards).

use crate::supervisor::FaultInfo;
use mobigate_mcl::events::{EventCategory, EventKind};
use parking_lot::RwLock;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// A context event (Figure 6-5). The paper's events carry no data payload
/// (§4.2.3) — they purely trigger the evolution of coordinated streamlets.
/// The supervision extension attaches optional [`FaultInfo`] to
/// `STREAMLET_FAULT` events so observers can see which instance failed and
/// why; `when` matching still keys on `kind` alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ContextEvent {
    /// Which event.
    pub kind: EventKind,
    /// Originating source: `None` broadcasts to every subscriber of the
    /// category; `Some(stream)` targets one stream application.
    pub source: Option<String>,
    /// Fault details, present only on supervisor-raised events.
    pub fault: Option<FaultInfo>,
}

impl ContextEvent {
    /// A broadcast event.
    pub fn broadcast(kind: EventKind) -> Self {
        ContextEvent {
            kind,
            source: None,
            fault: None,
        }
    }

    /// An event targeted at one stream application.
    pub fn targeted(kind: EventKind, source: impl Into<String>) -> Self {
        ContextEvent {
            kind,
            source: Some(source.into()),
            fault: None,
        }
    }

    /// A supervisor-raised `STREAMLET_FAULT` event, targeted at the owning
    /// stream when known.
    pub fn fault(info: FaultInfo, source: Option<String>) -> Self {
        ContextEvent {
            kind: EventKind::StreamletFault,
            source,
            fault: Some(info),
        }
    }

    /// The `categoryID` of the event (Figure 6-5).
    pub fn category(&self) -> EventCategory {
        self.kind.category()
    }
}

/// Implemented by entities that react to events (streams override the
/// paper's `onEvent(ContextEvent evt)`).
pub trait EventSubscriber: Send + Sync {
    /// The subscriber's stream-application name (matched against
    /// `evtSource`).
    fn subscriber_name(&self) -> String;

    /// Reacts to an event of a subscribed category.
    fn on_event(&self, event: &ContextEvent);
}

/// Delivery counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventStats {
    /// Events handed to `multicast`.
    pub published: u64,
    /// Individual deliveries to subscribers.
    pub delivered: u64,
    /// Deliveries suppressed by source filtering.
    pub filtered: u64,
}

/// One shard: a subscriber list per category, indexed by
/// `EventCategory::id()` (`subscriberList` in Figure 6-7).
struct EventShard {
    lists: Vec<RwLock<Vec<Weak<dyn EventSubscriber>>>>,
}

impl EventShard {
    fn new() -> Self {
        EventShard {
            lists: (0..EventCategory::COUNT)
                .map(|_| RwLock::new(Vec::new()))
                .collect(),
        }
    }
}

/// The Event Manager (Figure 6-7): category-indexed subscriber lists plus
/// multicast, sharded by subscriber name (see the module docs).
pub struct EventManager {
    shards: Box<[EventShard]>,
    mask: usize,
    published: AtomicU64,
    delivered: AtomicU64,
    filtered: AtomicU64,
}

impl Default for EventManager {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::with_shards(cores.next_power_of_two().clamp(1, 64))
    }
}

impl EventManager {
    /// A manager with empty subscriber lists, sized to the machine.
    pub fn new() -> Self {
        Self::default()
    }

    /// A manager with a fixed shard count (rounded up to a power of two;
    /// `1` reproduces the paper's single `subscriberList` per category).
    pub fn with_shards(shards: usize) -> Self {
        let n = shards.max(1).next_power_of_two();
        EventManager {
            shards: (0..n).map(|_| EventShard::new()).collect(),
            mask: n - 1,
            published: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            filtered: AtomicU64::new(0),
        }
    }

    /// Number of shards each category's subscriber list is split into.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a subscriber (or `evtSource` target) named `name` lives
    /// in. Keyed by name so targeted delivery and the target's own
    /// subscribe/unsubscribe agree on a single shard.
    fn shard_for(&self, name: &str) -> &EventShard {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[(h.finish() as usize) & self.mask]
    }

    /// Subscribes `app` to a category (paper `subscribeEvt`). Subscribers
    /// are held weakly: a dropped stream unsubscribes itself implicitly.
    pub fn subscribe(&self, category: EventCategory, app: &Arc<dyn EventSubscriber>) {
        self.shard_for(&app.subscriber_name()).lists[category.id()]
            .write()
            .push(Arc::downgrade(app));
    }

    /// Unsubscribes `app` from a category (paper `unsubscribeEvt`).
    pub fn unsubscribe(&self, category: EventCategory, app: &Arc<dyn EventSubscriber>) {
        let target = Arc::as_ptr(app) as *const ();
        self.shard_for(&app.subscriber_name()).lists[category.id()]
            .write()
            .retain(|w| {
                w.upgrade()
                    .map(|s| Arc::as_ptr(&s) as *const () != target)
                    .unwrap_or(false)
            });
    }

    /// Number of live subscribers in a category (all shards).
    pub fn subscriber_count(&self, category: EventCategory) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard.lists[category.id()]
                    .read()
                    .iter()
                    .filter(|w| w.strong_count() > 0)
                    .count()
            })
            .sum()
    }

    /// Multicasts an event to the subscribers of its category
    /// (Figure 6-7's `multicastEvent`). An `evtSource`-targeted event is
    /// delivered only to the stream whose name matches (§6.4: "the Event
    /// Manager is required to check the attribute evtSource … and verify
    /// whether the corresponding stream application has subscribed") — and
    /// since a subscriber's shard is derived from that same name, a
    /// targeted event locks exactly one shard. Broadcasts sweep all
    /// shards. Returns the number of deliveries.
    pub fn multicast(&self, event: &ContextEvent) -> usize {
        self.published.fetch_add(1, Ordering::Relaxed);
        let mut count = 0;
        match &event.source {
            Some(src) => {
                count += self.multicast_shard(self.shard_for(src), event);
            }
            None => {
                for shard in self.shards.iter() {
                    count += self.multicast_shard(shard, event);
                }
            }
        }
        count
    }

    fn multicast_shard(&self, shard: &EventShard, event: &ContextEvent) -> usize {
        let subs: Vec<Arc<dyn EventSubscriber>> = {
            let mut list = shard.lists[event.category().id()].write();
            // Opportunistically drop dead subscribers.
            list.retain(|w| w.strong_count() > 0);
            list.iter().filter_map(Weak::upgrade).collect()
        };
        let mut count = 0;
        for sub in subs {
            match &event.source {
                Some(src) if *src != sub.subscriber_name() => {
                    self.filtered.fetch_add(1, Ordering::Relaxed);
                }
                _ => {
                    sub.on_event(event);
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    count += 1;
                }
            }
        }
        count
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> EventStats {
        EventStats {
            published: self.published.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            filtered: self.filtered.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;

    struct Recorder {
        name: String,
        seen: Mutex<Vec<EventKind>>,
    }
    impl Recorder {
        fn new(name: &str) -> Arc<Self> {
            Arc::new(Recorder {
                name: name.into(),
                seen: Mutex::new(Vec::new()),
            })
        }
    }
    impl EventSubscriber for Recorder {
        fn subscriber_name(&self) -> String {
            self.name.clone()
        }
        fn on_event(&self, event: &ContextEvent) {
            self.seen.lock().push(event.kind);
        }
    }

    fn as_sub(r: &Arc<Recorder>) -> Arc<dyn EventSubscriber> {
        r.clone()
    }

    #[test]
    fn multicast_reaches_category_subscribers_only() {
        let mgr = EventManager::new();
        let net = Recorder::new("netapp");
        let hw = Recorder::new("hwapp");
        mgr.subscribe(EventCategory::NetworkVariation, &as_sub(&net));
        mgr.subscribe(EventCategory::HardwareVariation, &as_sub(&hw));

        let n = mgr.multicast(&ContextEvent::broadcast(EventKind::LowBandwidth));
        assert_eq!(n, 1);
        assert_eq!(net.seen.lock().as_slice(), &[EventKind::LowBandwidth]);
        assert!(hw.seen.lock().is_empty());
    }

    #[test]
    fn targeted_events_filter_by_source() {
        // One shard so the `filtered` counter observes the non-matching
        // subscriber (with more shards it may never be scanned at all).
        let mgr = EventManager::with_shards(1);
        let a = Recorder::new("appA");
        let b = Recorder::new("appB");
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&a));
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&b));

        let n = mgr.multicast(&ContextEvent::targeted(EventKind::End, "appB"));
        assert_eq!(n, 1);
        assert!(a.seen.lock().is_empty());
        assert_eq!(b.seen.lock().len(), 1);
        assert_eq!(mgr.stats().filtered, 1);
    }

    #[test]
    fn shard_count_rounds_up_to_power_of_two() {
        assert_eq!(EventManager::with_shards(1).shard_count(), 1);
        assert_eq!(EventManager::with_shards(3).shard_count(), 4);
        assert_eq!(EventManager::with_shards(16).shard_count(), 16);
        assert_eq!(EventManager::with_shards(0).shard_count(), 1);
    }

    #[test]
    fn delivery_is_shard_count_independent() {
        // The same subscriber population and event sequence deliver
        // identically whatever the shard count: a subscriber lives in the
        // shard its *name* hashes to, which is exactly the shard a
        // targeted event scans.
        for shards in [1usize, 2, 8, 64] {
            let mgr = EventManager::with_shards(shards);
            let subs: Vec<_> = (0..17).map(|i| Recorder::new(&format!("s{i}"))).collect();
            for s in &subs {
                mgr.subscribe(EventCategory::NetworkVariation, &as_sub(s));
                mgr.subscribe(EventCategory::SystemCommand, &as_sub(s));
            }
            assert_eq!(
                mgr.multicast(&ContextEvent::broadcast(EventKind::LowBandwidth)),
                17,
                "broadcast with {shards} shards"
            );
            for (i, s) in subs.iter().enumerate() {
                let n = mgr.multicast(&ContextEvent::targeted(EventKind::End, format!("s{i}")));
                assert_eq!(n, 1, "target s{i} with {shards} shards");
                assert_eq!(
                    s.seen
                        .lock()
                        .iter()
                        .filter(|k| **k == EventKind::End)
                        .count(),
                    1
                );
            }
            // A target nobody owns reaches nobody.
            assert_eq!(
                mgr.multicast(&ContextEvent::targeted(EventKind::End, "ghost")),
                0
            );
        }
    }

    #[test]
    fn unsubscribe_finds_the_right_shard() {
        for shards in [1usize, 4, 32] {
            let mgr = EventManager::with_shards(shards);
            let subs: Vec<_> = (0..9).map(|i| Recorder::new(&format!("u{i}"))).collect();
            for s in &subs {
                mgr.subscribe(EventCategory::SystemCommand, &as_sub(s));
            }
            for s in &subs {
                mgr.unsubscribe(EventCategory::SystemCommand, &as_sub(s));
            }
            assert_eq!(mgr.subscriber_count(EventCategory::SystemCommand), 0);
            assert_eq!(mgr.multicast(&ContextEvent::broadcast(EventKind::End)), 0);
        }
    }

    #[test]
    fn broadcast_reaches_all_subscribers() {
        let mgr = EventManager::new();
        let subs: Vec<_> = (0..5).map(|i| Recorder::new(&format!("app{i}"))).collect();
        for s in &subs {
            mgr.subscribe(EventCategory::NetworkVariation, &as_sub(s));
        }
        let n = mgr.multicast(&ContextEvent::broadcast(EventKind::Disconnection));
        assert_eq!(n, 5);
    }

    #[test]
    fn unsubscribe_stops_delivery() {
        let mgr = EventManager::new();
        let a = Recorder::new("a");
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&a));
        mgr.unsubscribe(EventCategory::SystemCommand, &as_sub(&a));
        let n = mgr.multicast(&ContextEvent::broadcast(EventKind::Pause));
        assert_eq!(n, 0);
        assert_eq!(mgr.subscriber_count(EventCategory::SystemCommand), 0);
    }

    #[test]
    fn dropped_subscribers_are_pruned() {
        let mgr = EventManager::new();
        {
            let tmp = Recorder::new("temp");
            mgr.subscribe(EventCategory::NetworkVariation, &as_sub(&tmp));
            assert_eq!(mgr.subscriber_count(EventCategory::NetworkVariation), 1);
        }
        // The Arc is gone; the weak entry must not deliver or count.
        assert_eq!(mgr.subscriber_count(EventCategory::NetworkVariation), 0);
        assert_eq!(
            mgr.multicast(&ContextEvent::broadcast(EventKind::LowBandwidth)),
            0
        );
    }

    #[test]
    fn subscribing_one_category_ignores_others() {
        // §6.4: streams subscribe events of interest, "while filtering away
        // those which are not necessary".
        let mgr = EventManager::new();
        let a = Recorder::new("a");
        mgr.subscribe(EventCategory::HardwareVariation, &as_sub(&a));
        mgr.multicast(&ContextEvent::broadcast(EventKind::LowBandwidth)); // network
        mgr.multicast(&ContextEvent::broadcast(EventKind::LowEnergy)); // hardware
        assert_eq!(a.seen.lock().as_slice(), &[EventKind::LowEnergy]);
    }

    #[test]
    fn stats_account_published_and_delivered() {
        let mgr = EventManager::new();
        let a = Recorder::new("a");
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&a));
        mgr.multicast(&ContextEvent::broadcast(EventKind::Pause));
        mgr.multicast(&ContextEvent::broadcast(EventKind::Resume));
        let s = mgr.stats();
        assert_eq!(s.published, 2);
        assert_eq!(s.delivered, 2);
    }

    #[test]
    fn double_subscription_delivers_twice() {
        // Matching the paper's Vector semantics: subscribing twice means two
        // deliveries (callers manage their own subscriptions).
        let mgr = EventManager::new();
        let a = Recorder::new("a");
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&a));
        mgr.subscribe(EventCategory::SystemCommand, &as_sub(&a));
        let n = mgr.multicast(&ContextEvent::broadcast(EventKind::End));
        assert_eq!(n, 2);
    }
}
