//! Chain fusion: the runtime half of the fusion/fission engine.
//!
//! The static half (`mobigate-mcl::fusion`) finds maximal runs of fusable
//! streamlets; this module executes such a run as **one** scheduled unit.
//! A [`FusedLogic`] is an ordinary [`StreamletLogic`] installed on a
//! single [`StreamletHandle`](crate::StreamletHandle): each incoming
//! message is threaded through the member logics back-to-back on the same
//! driver, stage by stage, so the interior `MessageQueue`s — and their
//! admission locks, pool reference handoffs, and wakeups — disappear
//! entirely. The stream keeps the member roster in the shared state
//! ([`FusedShared`]), which is what makes **fission** possible: the
//! coordination plane can pause the unit, take the member logics back out
//! ([`FusedShared::take_members`]), and re-materialize discrete instances
//! with real channels, without ever copying or losing a message.
//!
//! Supervision resolves to the *member*, not the unit: a member panic is
//! re-thrown with the member's name and recorded index
//! ([`FusedShared::faulted_member`]), so the supervisor's rebuild closure
//! replaces only that member's logic, and quarantine-fission can split the
//! unit around exactly the poisoned stage.

use crate::error::CoreError;
#[cfg(test)]
use crate::streamlet::Emitter;
use crate::streamlet::{StreamletCtx, StreamletLogic};
use mobigate_mime::MimeMessage;
use parking_lot::Mutex;
use std::panic::AssertUnwindSafe;
use std::sync::Arc;

/// One member of a fused run: identity (for fault attribution, rebuild,
/// and fission) plus the live logic object.
pub struct FusedMember {
    /// Original instance name from the configuration table.
    pub instance: String,
    /// Definition name (fission re-creates the instance row from this).
    pub def: String,
    /// Directory key of the implementing component (member rebuild).
    pub key: String,
    /// The single input port of the member's definition.
    pub in_port: String,
    /// The single output port of the member's definition.
    pub out_port: String,
    /// The live logic; `None` while poisoned (awaiting rebuild) or after
    /// fission took it.
    pub logic: Option<Box<dyn StreamletLogic>>,
    /// Member-attributed `process` errors (the counter the member's own
    /// handle would have charged when running unfused).
    pub errors: u64,
}

/// State shared between a fused unit's logic, its supervisor rebuild
/// closure, and the owning stream (for fission). The members `Mutex` is
/// uncontended on the hot path: exactly one driver runs a task at a time,
/// and the other lockers (rebuild, fission) only run while the task is
/// parked or paused.
pub struct FusedShared {
    unit: String,
    members: Mutex<Vec<FusedMember>>,
    /// Index of the member whose panic poisoned the unit, if any.
    faulted: Mutex<Option<usize>>,
}

impl FusedShared {
    /// Creates the shared roster for unit `unit`.
    pub fn new(unit: impl Into<String>, members: Vec<FusedMember>) -> Arc<Self> {
        Arc::new(FusedShared {
            unit: unit.into(),
            members: Mutex::new(members),
            faulted: Mutex::new(None),
        })
    }

    /// The fused unit's instance name.
    pub fn unit_name(&self) -> &str {
        &self.unit
    }

    /// Member instance names in pipeline order.
    pub fn member_names(&self) -> Vec<String> {
        self.members
            .lock()
            .iter()
            .map(|m| m.instance.clone())
            .collect()
    }

    /// Member-attributed error counters, pipeline order.
    pub fn member_errors(&self) -> Vec<(String, u64)> {
        self.members
            .lock()
            .iter()
            .map(|m| (m.instance.clone(), m.errors))
            .collect()
    }

    /// The member whose panic poisoned the unit: (index, instance name).
    pub fn faulted_member(&self) -> Option<(usize, String)> {
        let idx = (*self.faulted.lock())?;
        let members = self.members.lock();
        members.get(idx).map(|m| (idx, m.instance.clone()))
    }

    /// Directory key of the faulted member (rebuild closures resolve the
    /// replacement logic through this).
    pub fn faulted_member_key(&self) -> Option<(usize, String)> {
        let idx = (*self.faulted.lock())?;
        let members = self.members.lock();
        members.get(idx).map(|m| (idx, m.key.clone()))
    }

    /// Installs fresh logic for member `idx` and clears the fault marker
    /// (the supervisor's member-level restart).
    pub fn install_member_logic(&self, idx: usize, logic: Box<dyn StreamletLogic>) {
        {
            let mut members = self.members.lock();
            if let Some(m) = members.get_mut(idx) {
                m.logic = Some(logic);
            }
        }
        *self.faulted.lock() = None;
    }

    /// Drains the entire member roster (logic objects included) for
    /// fission. The unit's `FusedLogic` processes nothing afterwards; the
    /// caller must have paused the owning handle first.
    pub fn take_members(&self) -> Vec<FusedMember> {
        std::mem::take(&mut *self.members.lock())
    }

    /// Number of members currently in the roster.
    pub fn len(&self) -> usize {
        self.members.lock().len()
    }

    /// True when the roster was drained by fission.
    pub fn is_empty(&self) -> bool {
        self.members.lock().is_empty()
    }
}

/// The [`StreamletLogic`] adapter that drives a fused run. Stage-by-stage
/// threading: every message of the invocation passes member `i` before any
/// message reaches member `i + 1`, which is exactly the order a FIFO
/// channel between them would have enforced — fused and unfused pipelines
/// are observationally equivalent under non-saturating load (fusion has no
/// interior queues, so interior Figure 6-9 overflow drops cannot occur).
pub struct FusedLogic {
    shared: Arc<FusedShared>,
    /// Interior-loop scratch, reused across invocations so the fused hot
    /// path allocates nothing in steady state: the current stage's feed,
    /// the next stage's feed, the per-stage emission buffer, and retired
    /// port-name strings. A member panic unwinds past these; whatever was
    /// lent to the stage context at that moment is lost and the fields
    /// self-heal as empty vecs (the whole batch goes to redelivery anyway).
    batch: Vec<MimeMessage>,
    next: Vec<MimeMessage>,
    stage_outs: Vec<(String, MimeMessage)>,
    spare: Vec<String>,
}

impl FusedLogic {
    /// A logic view over the shared roster (the supervisor creates a fresh
    /// one per member-level restart; they all drive the same members).
    pub fn new(shared: Arc<FusedShared>) -> Self {
        FusedLogic {
            shared,
            batch: Vec::new(),
            next: Vec::new(),
            stage_outs: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Runs `self.batch` through every member. Emissions on a member's
    /// single output port feed the next stage; the last stage's feed is
    /// emitted on its own port name (the fused handle's output binding uses
    /// the same name). Any *other* emission is surfaced as `instance.port`
    /// — never bound, so it drops as unrouted exactly like the open circuit
    /// it would have been unfused.
    fn thread(&mut self, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        self.next.clear();
        let mut members = self.shared.members.lock();
        let last = members.len().saturating_sub(1);
        for (i, member) in members.iter_mut().enumerate() {
            if self.batch.is_empty() {
                break;
            }
            let Some(logic) = member.logic.as_mut() else {
                // Poisoned member awaiting rebuild: the outer handle is
                // normally Faulted before this can run, but a racing
                // activation must not silently eat messages — fault the
                // unit so the batch lands in redelivery.
                std::panic::panic_any(format!(
                    "fused member {} has no logic installed",
                    member.instance
                ));
            };
            let feed = std::mem::take(&mut self.batch);
            let outs_buf = std::mem::take(&mut self.stage_outs);
            let spare = std::mem::take(&mut self.spare);
            let use_batch = feed.len() > 1 && logic.supports_batch();
            let session = ctx.session();
            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                // Error semantics mirror the member's own handle exactly:
                // a per-message `Err` discards that invocation's emissions
                // and counts one error; a batched `Err` discards the whole
                // batch's emissions under one error count (what
                // `process_batched` does for a discrete streamlet). One
                // context serves the whole stage; rollback marks give each
                // message its own discard scope.
                let mut errors = 0u64;
                let mut mctx =
                    StreamletCtx::with_buffers(&member.instance, session, outs_buf, spare);
                if use_batch {
                    if logic.process_batch(feed, &mut mctx).is_err() {
                        errors += 1;
                        mctx.truncate_outputs(0);
                    }
                } else {
                    for msg in feed {
                        let mark = mctx.outputs_len();
                        if logic.process(msg, &mut mctx).is_err() {
                            errors += 1;
                            mctx.truncate_outputs(mark);
                        }
                    }
                }
                (errors, mctx.into_parts())
            }));
            let (errors, (mut outs, spare)) = match outcome {
                Ok(pair) => pair,
                Err(payload) => {
                    // Member-attributed fault: drop the poisoned logic,
                    // record which stage it was, and re-throw so the
                    // handle's panic boundary does its normal redelivery +
                    // Faulted bookkeeping for the whole unit.
                    member.logic = None;
                    *self.shared.faulted.lock() = Some(i);
                    let text = crate::streamlet::panic_message(payload.as_ref());
                    std::panic::resume_unwind(Box::new(format!(
                        "fused member {}: {text}",
                        member.instance
                    )));
                }
            };
            member.errors += errors;
            self.spare = spare;
            for (mut port, msg) in outs.drain(..) {
                if port == member.out_port {
                    if i == last {
                        ctx.emit_owned(port, msg);
                    } else {
                        self.next.push(msg);
                        port.clear();
                        self.spare.push(port);
                    }
                } else {
                    use std::fmt::Write as _;
                    let mut name = self.spare.pop().unwrap_or_default();
                    name.clear();
                    let _ = write!(name, "{}.{port}", member.instance);
                    ctx.emit_owned(name, msg);
                    port.clear();
                    self.spare.push(port);
                }
            }
            self.stage_outs = outs;
            std::mem::swap(&mut self.batch, &mut self.next);
        }
        self.batch.clear();
        Ok(())
    }
}

impl StreamletLogic for FusedLogic {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        self.batch.clear();
        self.batch.push(msg);
        self.thread(ctx)
    }

    fn supports_batch(&self) -> bool {
        true
    }

    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        self.batch.clear();
        self.batch.extend(msgs);
        self.thread(ctx)
    }

    fn on_activate(&mut self) {
        for m in self.shared.members.lock().iter_mut() {
            if let Some(logic) = m.logic.as_mut() {
                logic.on_activate();
            }
        }
    }

    fn on_pause(&mut self) {
        for m in self.shared.members.lock().iter_mut() {
            if let Some(logic) = m.logic.as_mut() {
                logic.on_pause();
            }
        }
    }

    fn on_end(&mut self) {
        for m in self.shared.members.lock().iter_mut() {
            if let Some(logic) = m.logic.as_mut() {
                logic.on_end();
            }
        }
    }

    fn reset(&mut self) {
        for m in self.shared.members.lock().iter_mut() {
            if let Some(logic) = m.logic.as_mut() {
                logic.reset();
            }
        }
    }

    /// Member-addressed control: `"<member>.<key>"` routes to that member's
    /// own control handler; a bare key is offered to every member in order
    /// until one accepts it.
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        let mut members = self.shared.members.lock();
        if let Some((member, mkey)) = key.split_once('.') {
            for m in members.iter_mut() {
                if m.instance == member {
                    if let Some(logic) = m.logic.as_mut() {
                        return logic.control(mkey, value);
                    }
                }
            }
        } else {
            for m in members.iter_mut() {
                if let Some(logic) = m.logic.as_mut() {
                    if logic.control(key, value).is_ok() {
                        return Ok(());
                    }
                }
            }
        }
        Err(CoreError::NotFound {
            kind: "control parameter",
            name: format!("{key}={value}"),
        })
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    struct Append(&'static str);
    impl StreamletLogic for Append {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let mut body = msg.body.to_vec();
            body.extend_from_slice(self.0.as_bytes());
            let mut out = msg.clone();
            out.set_body(body);
            ctx.emit("po", out);
            Ok(())
        }
        fn supports_batch(&self) -> bool {
            true
        }
    }

    struct FailOn(&'static str);
    impl StreamletLogic for FailOn {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            if msg.body.starts_with(self.0.as_bytes()) {
                return Err(CoreError::Process {
                    streamlet: "failer".into(),
                    message: "refused".into(),
                });
            }
            ctx.emit("po", msg);
            Ok(())
        }
    }

    struct PanicOn(&'static str);
    impl StreamletLogic for PanicOn {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            assert!(!msg.body.starts_with(self.0.as_bytes()), "poison");
            ctx.emit("po", msg);
            Ok(())
        }
    }

    fn member(name: &str, logic: Box<dyn StreamletLogic>) -> FusedMember {
        FusedMember {
            instance: name.to_string(),
            def: "d".into(),
            key: "builtin/d".into(),
            in_port: "pi".into(),
            out_port: "po".into(),
            logic: Some(logic),
            errors: 0,
        }
    }

    fn texts(outs: &[(String, MimeMessage)]) -> Vec<String> {
        outs.iter()
            .map(|(_, m)| String::from_utf8_lossy(&m.body).into_owned())
            .collect()
    }

    #[test]
    fn threads_messages_through_all_members_in_order() {
        let shared = FusedShared::new(
            "fused:a..c",
            vec![
                member("a", Box::new(Append(".a"))),
                member("b", Box::new(Append(".b"))),
                member("c", Box::new(Append(".c"))),
            ],
        );
        let mut fused = FusedLogic::new(shared);
        let mut ctx = StreamletCtx::new("fused:a..c", None);
        fused
            .process_batch(
                vec![MimeMessage::text("m1"), MimeMessage::text("m2")],
                &mut ctx,
            )
            .unwrap();
        let outs = ctx.into_outputs();
        assert_eq!(texts(&outs), vec!["m1.a.b.c", "m2.a.b.c"]);
        assert!(outs.iter().all(|(p, _)| p == "po"), "last stage's port");
    }

    #[test]
    fn member_error_drops_only_that_message() {
        let shared = FusedShared::new(
            "u",
            vec![
                member("a", Box::new(Append(".a"))),
                member("b", Box::new(FailOn("bad"))),
                member("c", Box::new(Append(".c"))),
            ],
        );
        let mut fused = FusedLogic::new(shared.clone());
        let mut ctx = StreamletCtx::new("u", None);
        fused
            .process_batch(
                vec![
                    MimeMessage::text("ok1"),
                    MimeMessage::text("bad"),
                    MimeMessage::text("ok2"),
                ],
                &mut ctx,
            )
            .unwrap();
        assert_eq!(texts(&ctx.into_outputs()), vec!["ok1.a.c", "ok2.a.c"]);
        assert_eq!(
            shared.member_errors(),
            vec![("a".into(), 0), ("b".into(), 1), ("c".into(), 0)]
        );
    }

    #[test]
    fn member_panic_attributes_and_poisons_only_that_member() {
        let shared = FusedShared::new(
            "u",
            vec![
                member("a", Box::new(Append(".a"))),
                member("boom", Box::new(PanicOn("poison"))),
                member("c", Box::new(Append(".c"))),
            ],
        );
        let mut fused = FusedLogic::new(shared.clone());
        let mut ctx = StreamletCtx::new("u", None);
        let payload = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = fused.process(MimeMessage::text("poison"), &mut ctx);
        }))
        .unwrap_err();
        let text = crate::streamlet::panic_message(payload.as_ref());
        assert!(text.contains("fused member boom"), "got: {text}");
        assert_eq!(shared.faulted_member(), Some((1, "boom".into())));
        // Only the poisoned member lost its logic.
        let members = shared.take_members();
        assert!(members[0].logic.is_some());
        assert!(members[1].logic.is_none());
        assert!(members[2].logic.is_some());
    }

    #[test]
    fn rebuild_installs_fresh_member_logic() {
        let shared = FusedShared::new(
            "u",
            vec![
                member("a", Box::new(Append(".a"))),
                member("boom", Box::new(PanicOn("poison"))),
            ],
        );
        let mut fused = FusedLogic::new(shared.clone());
        let mut ctx = StreamletCtx::new("u", None);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let _ = fused.process(MimeMessage::text("poison"), &mut ctx);
        }));
        let (idx, key) = shared.faulted_member_key().unwrap();
        assert_eq!((idx, key.as_str()), (1, "builtin/d"));
        shared.install_member_logic(idx, Box::new(Append(".b2")));
        assert!(shared.faulted_member().is_none());
        let mut fresh = FusedLogic::new(shared);
        let mut ctx = StreamletCtx::new("u", None);
        fresh.process(MimeMessage::text("x"), &mut ctx).unwrap();
        assert_eq!(texts(&ctx.into_outputs()), vec!["x.a.b2"]);
    }

    #[test]
    fn side_emissions_surface_with_member_prefix() {
        struct Teer;
        impl StreamletLogic for Teer {
            fn process(
                &mut self,
                msg: MimeMessage,
                ctx: &mut StreamletCtx,
            ) -> Result<(), CoreError> {
                ctx.emit("side", msg.clone());
                ctx.emit("po", msg);
                Ok(())
            }
        }
        let shared = FusedShared::new(
            "u",
            vec![
                member("t", Box::new(Teer)),
                member("z", Box::new(Append(".z"))),
            ],
        );
        let mut fused = FusedLogic::new(shared);
        let mut ctx = StreamletCtx::new("u", None);
        fused.process(MimeMessage::text("m"), &mut ctx).unwrap();
        let outs = ctx.into_outputs();
        let ports: Vec<&str> = outs.iter().map(|(p, _)| p.as_str()).collect();
        assert_eq!(ports, vec!["t.side", "po"]);
    }

    #[test]
    fn member_addressed_control_routes() {
        struct Knob {
            #[allow(dead_code)]
            v: String,
        }
        impl StreamletLogic for Knob {
            fn process(
                &mut self,
                msg: MimeMessage,
                ctx: &mut StreamletCtx,
            ) -> Result<(), CoreError> {
                ctx.emit("po", msg);
                Ok(())
            }
            fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
                if key == "v" {
                    self.v = value.to_string();
                    Ok(())
                } else {
                    Err(CoreError::NotFound {
                        kind: "control parameter",
                        name: key.to_string(),
                    })
                }
            }
        }
        let shared = FusedShared::new(
            "u",
            vec![
                member("k1", Box::new(Knob { v: String::new() })),
                member("k2", Box::new(Knob { v: String::new() })),
            ],
        );
        let mut fused = FusedLogic::new(shared);
        fused.control("k2.v", "x").unwrap();
        fused.control("v", "y").unwrap(); // first taker (k1)
        assert!(fused.control("k1.nope", "x").is_err());
        assert!(fused.control("ghost.v", "x").is_err());
    }
}
