//! `MessageQueue` — the channel object of the coordination plane (§6.2).
//!
//! A queue connects producer streamlets to consumer streamlets. Following
//! the paper:
//!
//! * producer/consumer attachment is tracked by `pCount` / `cCount`
//!   (Figure 6-3);
//! * `postMessage` on a full queue waits a bounded time `T` and then
//!   **drops** the message (Figure 6-9) — slow streamlets must not stall
//!   fast ones (§6.7);
//! * synchronous channels are zero-length buffers (at most one message in
//!   flight, producer blocked until it is taken); asynchronous channels are
//!   FIFO buffers bounded in **bytes** (the MCL `buffer` attribute,
//!   Kbytes);
//! * the channel *category* (S/BB/BK/KB/KK, Figure 4-4) governs what
//!   happens to pending units when one side detaches.
//!
//! Buffer accounting admits one oversized message into an empty queue so a
//! message larger than the buffer can still traverse the channel (otherwise
//! a 1024 KB image could never cross a 100 KB channel and the stream would
//! stall forever).

// Hot-path modules must surface failures as `CoreError`s, never abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::overload::PriorityClass;
use crate::pool::{MessagePool, Payload};
use crate::spsc::SpscRing;
use crate::telemetry::{DropReason, QueueProbe};
use mobigate_mcl::ast::{ChannelCategory, ChannelKind};
use mobigate_mime::MimeType;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Slot count of the SPSC fast-path ring (bounds *messages*; the byte
/// budget still comes from [`QueueConfig::capacity_bytes`]).
const SPSC_SLOTS: usize = 256;

/// Wakes streamlet worker threads when any of their input queues receives a
/// message (or a lifecycle change occurs).
///
/// Wakeups **coalesce**: an atomic "armed" flag records that a wake is
/// already pending, and while it is set further [`Notifier::notify`] calls
/// return without touching the sequence mutex or the hook. The contract is
/// that consumers *disarm* before re-checking their work sources —
/// [`Notifier::snapshot`], [`Notifier::wait_unless`] and [`Notifier::wait`]
/// all disarm on entry, as does `StreamletTask::pump` — so a skipped
/// notification is always covered by a re-check that observes its effects.
#[derive(Default)]
pub struct Notifier {
    seq: Mutex<u64>,
    cv: Condvar,
    /// A wake is pending and its consumer has not yet re-checked: further
    /// notifies are redundant and skipped.
    armed: AtomicBool,
    /// Mirrors `hook.is_some()` so the common no-hook case never locks.
    has_hook: AtomicBool,
    /// Optional wake hook, invoked on every non-coalesced
    /// [`Notifier::notify`] — this is how a
    /// [`crate::executor::WorkerPool`] turns queue posts and lifecycle
    /// transitions into run-queue scheduling instead of waking a dedicated
    /// blocked thread.
    hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notifier")
            .field("seq", &*self.seq.lock())
            .field("armed", &self.armed.load(Ordering::Relaxed))
            .field("hooked", &self.hook.lock().is_some())
            .finish()
    }
}

impl Notifier {
    /// Creates a notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes all waiters and fires the wake hook, if any. Returns without
    /// doing either when a previous wake is still unconsumed (the consumer
    /// has not disarmed since): repeated posts to an already-woken consumer
    /// cost one atomic swap.
    pub fn notify(&self) {
        if self.armed.swap(true, Ordering::SeqCst) {
            // Already armed: the pending wake's consumer will disarm and
            // then re-check, observing whatever this notify announces.
            return;
        }
        {
            let mut seq = self.seq.lock();
            *seq += 1;
            self.cv.notify_all();
        }
        // Outside the seq lock: the hook takes scheduler locks of its own.
        // The atomic guard keeps hookless notifiers (the common case —
        // thread-per-streamlet installs no hook) off this mutex entirely.
        if self.has_hook.load(Ordering::Acquire) {
            if let Some(hook) = &*self.hook.lock() {
                hook();
            }
        }
    }

    /// Clears the coalescing flag. Consumers call this *before* re-checking
    /// the condition they sleep on; any notify after the disarm then does a
    /// full (non-coalesced) wake.
    pub fn disarm(&self) {
        // A swap (RMW), not a store: reading the producer's `swap(true)`
        // synchronizes-with it, so everything the producer published
        // before a coalesced notify (e.g. a lock-free ring push) is
        // visible to the re-check that follows this disarm.
        self.armed.swap(false, Ordering::SeqCst);
    }

    /// Installs the wake hook (replacing any previous one). Executors call
    /// this when adopting a streamlet so every notification also schedules
    /// its task.
    pub fn set_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.hook.lock() = Some(Box::new(hook));
        self.has_hook.store(true, Ordering::Release);
    }

    /// Removes the wake hook.
    pub fn clear_hook(&self) {
        self.has_hook.store(false, Ordering::Release);
        *self.hook.lock() = None;
    }

    /// Current notification sequence. Take a snapshot *before* checking
    /// the condition you wait on, then use [`Notifier::wait_unless`]: any
    /// notify between the snapshot and the wait is then never missed.
    /// Disarms wake coalescing, per the consumer contract.
    pub fn snapshot(&self) -> u64 {
        self.disarm();
        *self.seq.lock()
    }

    /// Waits until notified or `timeout` elapses. Returns immediately when
    /// a notification already happened after `since` was snapshotted.
    pub fn wait_unless(&self, since: u64, timeout: Duration) {
        self.disarm();
        let mut seq = self.seq.lock();
        if *seq != since {
            return;
        }
        self.cv.wait_for(&mut seq, timeout);
    }

    /// Waits until notified or `timeout` elapses (racy convenience: a
    /// notification issued just before the call can be missed — prefer
    /// `snapshot` + `wait_unless` in loops).
    pub fn wait(&self, timeout: Duration) {
        self.disarm();
        let mut seq = self.seq.lock();
        self.cv.wait_for(&mut seq, timeout);
    }
}

/// Construction parameters of a queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Channel instance name (diagnostics).
    pub name: String,
    /// Sync (rendezvous) or async (buffered).
    pub kind: ChannelKind,
    /// Disconnection category.
    pub category: ChannelCategory,
    /// Buffer capacity in bytes (ignored for sync channels).
    pub capacity_bytes: usize,
    /// Figure 6-9's `T`: how long `post` waits on a full queue before
    /// dropping the message.
    pub full_wait: Duration,
    /// The MIME type the channel carries (runtime type check on post).
    pub ty: MimeType,
    /// Enables the lock-free SPSC fast path: while the queue has at most
    /// one producer and one consumer attached, posts go through a bounded
    /// ring instead of the monitor mutex. Ignored for sync channels.
    pub spsc: bool,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            name: "<anon>".into(),
            kind: ChannelKind::Async,
            category: ChannelCategory::BK,
            capacity_bytes: 100 * 1024,
            full_wait: Duration::from_millis(50),
            ty: MimeType::any(),
            spsc: true,
        }
    }
}

impl QueueConfig {
    /// Builds a config from a compiled MCL [`mobigate_mcl::ChannelSpec`].
    pub fn from_spec(name: &str, spec: &mobigate_mcl::ChannelSpec) -> Self {
        QueueConfig {
            name: name.to_string(),
            kind: spec.kind,
            category: spec.category,
            capacity_bytes: (spec.buffer_kb as usize) * 1024,
            full_wait: Duration::from_millis(50),
            ty: spec.ty.clone(),
            spsc: true,
        }
    }
}

/// Outcome of a `post`.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PostResult {
    /// Enqueued (or handed over, for sync channels).
    Posted,
    /// Queue stayed full for `T`; the message was dropped (Figure 6-9).
    Dropped,
    /// The sink side is disconnected; the message was discarded.
    Closed,
}

/// Outcome of a `fetch`.
#[derive(Debug)]
pub enum FetchResult {
    /// A message payload.
    Msg(Payload),
    /// Timed out with nothing available.
    Empty,
    /// The source side is gone and the queue is drained — no more messages
    /// will ever arrive.
    Disconnected,
}

/// Lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successfully enqueued messages.
    pub posted: u64,
    /// Successfully fetched messages.
    pub fetched: u64,
    /// Messages dropped because the queue stayed full past `T`.
    pub dropped_full: u64,
    /// Messages discarded because the sink was disconnected.
    pub dropped_closed: u64,
    /// Pending messages discarded by a category-mandated break.
    pub dropped_break: u64,
    /// Parked pending outputs whose Figure 6-9 deadline expired before
    /// the queue had room.
    pub dropped_expired: u64,
    /// Pending messages discarded by the overload relief valve
    /// ([`MessageQueue::shed_oldest`]).
    pub dropped_shed: u64,
    /// Ingress posts rejected by token-bucket admission control before a
    /// payload was ever created.
    pub dropped_admission: u64,
}

impl QueueStats {
    /// Sum of every drop reason.
    pub fn dropped_total(&self) -> u64 {
        self.dropped_full
            + self.dropped_closed
            + self.dropped_break
            + self.dropped_expired
            + self.dropped_shed
            + self.dropped_admission
    }
}

#[derive(Debug)]
struct QState {
    queue: VecDeque<Payload>,
    bytes: usize,
    source_open: bool,
    sink_open: bool,
}

/// The channel object. Cheaply shareable via `Arc`.
#[derive(Debug)]
pub struct MessageQueue {
    cfg: QueueConfig,
    state: Mutex<QState>,
    /// Signals consumers (message available) and producers (space
    /// available); a single condvar keeps the monitor simple, exactly like
    /// the paper's `wait`/`notifyAll` usage.
    cv: Condvar,
    pool: Arc<MessagePool>,
    pcount: AtomicUsize,
    ccount: AtomicUsize,
    posted: AtomicU64,
    fetched: AtomicU64,
    dropped_full: AtomicU64,
    dropped_closed: AtomicU64,
    dropped_break: AtomicU64,
    dropped_expired: AtomicU64,
    dropped_shed: AtomicU64,
    dropped_admission: AtomicU64,
    /// Telemetry recording handle of the owning stream, when the
    /// observability plane is enabled. `None` costs one branch per
    /// instrumented operation.
    probe: Option<QueueProbe>,
    listeners: RwLock<Vec<Arc<Notifier>>>,
    /// Producer-side peers of `listeners`: notified whenever capacity
    /// frees up, so pool-driven producers with parked outputs wake
    /// edge-triggered instead of polling the full queue.
    space_listeners: RwLock<Vec<Arc<Notifier>>>,
    /// Mirror of `space_listeners.len()`, maintained under its write
    /// lock: lets the wake fan-out skip the read lock entirely in the
    /// common no-parked-producer case.
    space_listener_count: AtomicUsize,
    /// SPSC fast-path ring, allocated once for async channels with
    /// [`QueueConfig::spsc`] set. Consumers *always* drain it before the
    /// mutex queue, so FIFO holds across activation changes.
    ring: Option<SpscRing>,
    /// True while fast-path posts are allowed: at most one producer and
    /// one consumer, sink open, and both buffers were empty at the last
    /// (re)activation point. Maintained under the state lock; read
    /// lock-free by producers (`SeqCst` both sides, so a post that
    /// causally follows a deactivating attach never sees a stale `true`).
    spsc_active: AtomicBool,
    /// Consumers blocked in [`MessageQueue::fetch`]: a fast-path post must
    /// briefly take the state lock to wake them (Dekker-style handshake —
    /// the consumer registers *before* its final emptiness re-check).
    sleepers: AtomicUsize,
}

impl MessageQueue {
    /// Creates a queue backed by `pool` for reference accounting.
    pub fn new(cfg: QueueConfig, pool: Arc<MessagePool>) -> Arc<Self> {
        Self::with_probe(cfg, pool, None)
    }

    /// Creates a queue carrying an optional telemetry probe: every post,
    /// fetch, and drop is mirrored into the owning stream's metrics.
    pub fn with_probe(
        cfg: QueueConfig,
        pool: Arc<MessagePool>,
        probe: Option<QueueProbe>,
    ) -> Arc<Self> {
        let ring = (cfg.spsc && cfg.kind == ChannelKind::Async).then(|| SpscRing::new(SPSC_SLOTS));
        let spsc_active = ring.is_some();
        Arc::new(MessageQueue {
            cfg,
            state: Mutex::new(QState {
                queue: VecDeque::new(),
                bytes: 0,
                source_open: true,
                sink_open: true,
            }),
            cv: Condvar::new(),
            pool,
            pcount: AtomicUsize::new(0),
            ccount: AtomicUsize::new(0),
            posted: AtomicU64::new(0),
            fetched: AtomicU64::new(0),
            dropped_full: AtomicU64::new(0),
            dropped_closed: AtomicU64::new(0),
            dropped_break: AtomicU64::new(0),
            dropped_expired: AtomicU64::new(0),
            dropped_shed: AtomicU64::new(0),
            dropped_admission: AtomicU64::new(0),
            probe,
            listeners: RwLock::new(Vec::new()),
            space_listeners: RwLock::new(Vec::new()),
            space_listener_count: AtomicUsize::new(0),
            ring,
            spsc_active: AtomicBool::new(spsc_active),
            sleepers: AtomicUsize::new(0),
        })
    }

    /// Charges `n` drops to `reason` — the single bookkeeping site for
    /// every drop path, mirroring into the telemetry probe when present.
    fn charge_drop(&self, reason: DropReason, n: u64) {
        let ctr = match reason {
            DropReason::Full => &self.dropped_full,
            DropReason::Closed => &self.dropped_closed,
            DropReason::Break => &self.dropped_break,
            DropReason::Expired => &self.dropped_expired,
            DropReason::Shed => &self.dropped_shed,
            DropReason::Admission => &self.dropped_admission,
        };
        ctr.fetch_add(n, Ordering::Relaxed);
        if let Some(p) = &self.probe {
            p.on_drop(&self.cfg.name, reason, n);
        }
    }

    /// Mirrors one admitted message into the probe, when present.
    #[inline]
    fn probe_admit(&self, len: usize) {
        if let Some(p) = &self.probe {
            p.on_admit(len);
        }
    }

    /// Re-evaluates SPSC eligibility. Called under the state lock at every
    /// attachment change. Deactivation is immediate; (re)activation
    /// additionally requires both buffers empty, so ring entries always
    /// predate mutex-queue entries and the drain order (ring first)
    /// preserves FIFO.
    fn refresh_spsc(&self, st: &QState) {
        let Some(ring) = &self.ring else { return };
        let eligible = self.pcount.load(Ordering::SeqCst) <= 1
            && self.ccount.load(Ordering::SeqCst) <= 1
            && st.sink_open;
        if !eligible {
            self.spsc_active.store(false, Ordering::SeqCst);
        } else if st.queue.is_empty() && ring.is_empty() {
            self.spsc_active.store(true, Ordering::SeqCst);
        }
    }

    /// True when the SPSC fast path is currently switched in.
    pub fn spsc_active(&self) -> bool {
        self.spsc_active.load(Ordering::SeqCst)
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Producer count (paper `pCount`).
    pub fn pcount(&self) -> usize {
        self.pcount.load(Ordering::Acquire)
    }

    /// Consumer count (paper `cCount`).
    pub fn ccount(&self) -> usize {
        self.ccount.load(Ordering::Acquire)
    }

    /// Registers a notifier woken on every post (consumer-side wakeup).
    pub fn add_listener(&self, n: Arc<Notifier>) {
        self.listeners.write().push(n);
    }

    /// Unregisters a notifier.
    pub fn remove_listener(&self, n: &Arc<Notifier>) {
        self.listeners.write().retain(|l| !Arc::ptr_eq(l, n));
    }

    /// Registers a notifier woken whenever buffered capacity frees up — a
    /// fetch, a pending drop, or a sink close (producer-side wakeup).
    /// Pool-driven producers with outputs parked behind this (full) queue
    /// sleep on it instead of spinning through the run queue.
    pub fn add_space_listener(&self, n: Arc<Notifier>) {
        let mut ls = self.space_listeners.write();
        ls.push(n);
        self.space_listener_count.store(ls.len(), Ordering::Release);
    }

    /// Unregisters a space notifier.
    pub fn remove_space_listener(&self, n: &Arc<Notifier>) {
        let mut ls = self.space_listeners.write();
        ls.retain(|l| !Arc::ptr_eq(l, n));
        self.space_listener_count.store(ls.len(), Ordering::Release);
    }

    fn wake_space_listeners(&self) {
        // Fast path: most queues never have a parked producer, yet every
        // fetch/shed/close used to pay the RwLock read just to find the
        // list empty. One relaxed-ish load skips that. A producer that
        // registers concurrently re-checks for space *after* attaching
        // (the flush-before-input discipline), so a miss here cannot
        // strand it.
        if self.space_listener_count.load(Ordering::Acquire) == 0 {
            return;
        }
        for l in self.space_listeners.read().iter() {
            l.notify();
        }
    }

    /// Attaches a producer (paper `incr_pCount`); reopens the source side.
    /// A second producer immediately deactivates the SPSC fast path.
    pub fn attach_source(&self) {
        self.pcount.fetch_add(1, Ordering::SeqCst);
        let mut st = self.state.lock();
        st.source_open = true;
        self.refresh_spsc(&st);
        drop(st);
        self.cv.notify_all();
    }

    /// Attaches a consumer (paper `incr_cCount`); reopens the sink side.
    /// A second consumer immediately deactivates the SPSC fast path.
    pub fn attach_sink(&self) {
        self.ccount.fetch_add(1, Ordering::SeqCst);
        let mut st = self.state.lock();
        st.sink_open = true;
        self.refresh_spsc(&st);
        drop(st);
        self.cv.notify_all();
        self.wake_listeners();
    }

    /// Detaches a producer, applying the category semantics when the last
    /// producer leaves. Returns `Err` for KK channels, which "cannot be
    /// disconnected at either side".
    pub fn detach_source(&self) -> Result<(), crate::CoreError> {
        if self.cfg.category == ChannelCategory::KK {
            return Err(crate::CoreError::Channel {
                name: self.cfg.name.clone(),
                message: "KK channels cannot be disconnected".into(),
            });
        }
        let prev = self.pcount.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "detach_source without attach");
        let mut st = self.state.lock();
        if prev == 1 {
            st.source_open = false;
            match self.cfg.category {
                // BB: breaking one side breaks the other; pending dropped.
                ChannelCategory::BB => {
                    st.sink_open = false;
                    self.drop_pending(&mut st);
                }
                // KB reverses BK: a source break also breaks the target.
                ChannelCategory::KB => {
                    st.sink_open = false;
                    self.drop_pending(&mut st);
                }
                // BK: pending units keep flowing to the target; S/sync has
                // no pending by construction.
                ChannelCategory::BK | ChannelCategory::S | ChannelCategory::KK => {}
            }
        }
        self.refresh_spsc(&st);
        drop(st);
        if prev == 1 {
            self.cv.notify_all();
            self.wake_listeners();
            self.wake_space_listeners();
        }
        Ok(())
    }

    /// Detaches a consumer (category-symmetric to [`Self::detach_source`]).
    pub fn detach_sink(&self) -> Result<(), crate::CoreError> {
        if self.cfg.category == ChannelCategory::KK {
            return Err(crate::CoreError::Channel {
                name: self.cfg.name.clone(),
                message: "KK channels cannot be disconnected".into(),
            });
        }
        let prev = self.ccount.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "detach_sink without attach");
        let mut st = self.state.lock();
        if prev == 1 {
            st.sink_open = false;
            match self.cfg.category {
                ChannelCategory::BB => {
                    st.source_open = false;
                    self.drop_pending(&mut st);
                }
                // BK: a sink break also breaks the source; pending dropped.
                ChannelCategory::BK => {
                    st.source_open = false;
                    self.drop_pending(&mut st);
                }
                // KB: pending units are retained for a future sink.
                ChannelCategory::KB | ChannelCategory::S | ChannelCategory::KK => {}
            }
        }
        self.refresh_spsc(&st);
        drop(st);
        if prev == 1 {
            self.cv.notify_all();
            // A closed sink unblocks parked producers too: their next
            // flush discards into the pool instead of waiting for room.
            self.wake_space_listeners();
        }
        Ok(())
    }

    fn drop_pending(&self, st: &mut QState) {
        let mut n = st.queue.len() as u64;
        for p in st.queue.drain(..) {
            self.pool.discard(p);
        }
        st.bytes = 0;
        // The fast-path ring is pending buffer too; the state lock we hold
        // serializes us with every other popper.
        if let Some(ring) = &self.ring {
            while let Some((p, _)) = ring.pop() {
                self.pool.discard(p);
                n += 1;
            }
        }
        if n > 0 {
            self.charge_drop(DropReason::Break, n);
        }
    }

    fn wake_listeners(&self) {
        for l in self.listeners.read().iter() {
            l.notify();
        }
    }

    /// Wakes a consumer after a lock-free ring post: listeners always (the
    /// armed flag makes redundant notifies one atomic swap), and blocked
    /// `fetch` callers only when the sleeper count says someone is waiting
    /// — taking the state lock then is what makes the handshake lossless.
    fn wake_after_ring_post(&self) {
        // Store-buffer hazard: the ring push ends in Release stores, and a
        // plain SeqCst *load* of `sleepers` may still be satisfied before
        // those stores drain — letting the producer see 0 sleepers while
        // the consumer (who registered and then saw an empty ring) sleeps.
        // The fence orders the push before the read, pairing with the
        // consumer's SeqCst register-then-recheck in `fetch`.
        std::sync::atomic::fence(Ordering::SeqCst);
        if self.sleepers.load(Ordering::SeqCst) > 0 {
            drop(self.state.lock());
            self.cv.notify_all();
        }
        self.wake_listeners();
    }

    /// Posts a payload (Figure 6-9 semantics). Sync channels block until
    /// the message is taken or `T` elapses (rendezvous-or-drop).
    ///
    /// While the SPSC specialization is active (one producer, one
    /// consumer) the post is lock-free: the payload goes straight into the
    /// ring, and only consumers blocked inside [`MessageQueue::fetch`]
    /// cost a lock acquisition to wake.
    pub fn post(&self, payload: Payload) -> PostResult {
        let len = payload.buffered_len(&self.pool);
        let t0 = self
            .probe
            .as_ref()
            .filter(|p| p.sample_timing())
            .map(|_| Instant::now());
        let res = match self.try_ring_post(payload, len) {
            Ok(()) => PostResult::Posted,
            Err(payload) => self.post_locked(payload, len),
        };
        if let (Some(p), Some(t0)) = (&self.probe, t0) {
            p.on_post_ns(t0.elapsed().as_nanos() as u64);
        }
        res
    }

    /// Lock-free fast path; hands the payload back whenever it does not
    /// apply (SPSC inactive, full ring, or over the byte budget — the
    /// locked path then waits out Figure 6-9's `T`).
    fn try_ring_post(&self, payload: Payload, len: usize) -> Result<(), Payload> {
        if !self.spsc_active.load(Ordering::SeqCst) {
            return Err(payload);
        }
        let Some(ring) = &self.ring else {
            return Err(payload);
        };
        // Byte-budget admission mirrors the mutex path: an empty buffer
        // always admits one (possibly oversized) message. The check and
        // the push are not atomic together, but overshoot needs a second
        // producer racing a stale activation flag — transient and bounded
        // by one message.
        if !ring.is_empty() && ring.bytes() + len > self.cfg.capacity_bytes {
            return Err(payload);
        }
        ring.push(payload, len)?;
        self.posted.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.probe {
            p.on_admit(len);
            p.on_ring_depth(ring.len());
        }
        self.wake_after_ring_post();
        Ok(())
    }

    /// Admits `payload` into whichever buffer is current — the ring while
    /// SPSC is active, the mutex queue otherwise — if the byte budget
    /// allows (an empty channel admits one oversized message). Caller
    /// holds the state lock.
    fn try_admit(&self, st: &mut QState, payload: Payload, len: usize) -> Result<(), Payload> {
        let ring_bytes = self.ring.as_ref().map_or(0, SpscRing::bytes);
        let ring_empty = self.ring.as_ref().is_none_or(SpscRing::is_empty);
        let empty = st.queue.is_empty() && ring_empty;
        if !empty && st.bytes + ring_bytes + len > self.cfg.capacity_bytes {
            return Err(payload);
        }
        if self.spsc_active.load(Ordering::SeqCst) {
            if let Some(ring) = &self.ring {
                // Ring slots can fill before the byte budget does; the
                // caller then waits for the consumer like any full queue.
                return ring.push(payload, len);
            }
        }
        st.queue.push_back(payload);
        st.bytes += len;
        Ok(())
    }

    /// The monitor-based post path (the paper's Figure 6-9 pseudocode).
    fn post_locked(&self, payload: Payload, len: usize) -> PostResult {
        let deadline = Instant::now() + self.cfg.full_wait;
        let mut st = self.state.lock();
        if !st.sink_open {
            drop(st);
            self.pool.discard(payload);
            self.charge_drop(DropReason::Closed, 1);
            return PostResult::Closed;
        }
        match self.cfg.kind {
            ChannelKind::Async => {
                let mut payload = payload;
                loop {
                    match self.try_admit(&mut st, payload, len) {
                        Ok(()) => {
                            self.posted.fetch_add(1, Ordering::Relaxed);
                            self.probe_admit(len);
                            drop(st);
                            self.cv.notify_all();
                            self.wake_listeners();
                            return PostResult::Posted;
                        }
                        Err(p) => payload = p,
                    }
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        match self.try_admit(&mut st, payload, len) {
                            Ok(()) => {
                                self.posted.fetch_add(1, Ordering::Relaxed);
                                self.probe_admit(len);
                                drop(st);
                                self.cv.notify_all();
                                self.wake_listeners();
                                return PostResult::Posted;
                            }
                            Err(p) => {
                                drop(st);
                                self.pool.discard(p);
                                self.charge_drop(DropReason::Full, 1);
                                return PostResult::Dropped;
                            }
                        }
                    }
                    if !st.sink_open {
                        drop(st);
                        self.pool.discard(payload);
                        self.charge_drop(DropReason::Closed, 1);
                        return PostResult::Closed;
                    }
                }
            }
            ChannelKind::Sync => {
                // Zero-length buffer: admit when empty, then wait until the
                // consumer takes it.
                while !st.queue.is_empty() {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        drop(st);
                        self.pool.discard(payload);
                        self.charge_drop(DropReason::Full, 1);
                        return PostResult::Dropped;
                    }
                }
                if !st.sink_open {
                    drop(st);
                    self.pool.discard(payload);
                    self.charge_drop(DropReason::Closed, 1);
                    return PostResult::Closed;
                }
                st.queue.push_back(payload);
                st.bytes += len;
                self.posted.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                self.wake_listeners();
                // Rendezvous: wait until taken (or deadline).
                while !st.queue.is_empty() {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        // Consumer never came: withdraw the message.
                        if let Some(p) = st.queue.pop_front() {
                            st.bytes = st.bytes.saturating_sub(len);
                            drop(st);
                            self.pool.discard(p);
                            self.posted.fetch_sub(1, Ordering::Relaxed);
                            self.charge_drop(DropReason::Full, 1);
                            return PostResult::Dropped;
                        }
                        break;
                    }
                }
                // The rendezvous completed: only now is the admission
                // final (a withdrawn message must never have been counted).
                self.probe_admit(len);
                PostResult::Posted
            }
        }
    }

    /// Posts a run of payloads under a single lock acquisition, sharing
    /// one Figure 6-9 wait budget `T` across the run. Per-message byte
    /// accounting and drop-on-full semantics are identical to calling
    /// [`MessageQueue::post`] once per payload; sync (zero-length)
    /// channels rendezvous per message and SPSC-active channels post
    /// lock-free per message, so both simply delegate. Returns one
    /// `PostResult` per payload, in order.
    pub fn post_all(&self, mut payloads: Vec<Payload>) -> Vec<PostResult> {
        let mut results = Vec::with_capacity(payloads.len());
        self.post_run(&mut payloads, |r| results.push(r));
        results
    }

    /// [`MessageQueue::post_all`] for callers that reuse one scratch
    /// buffer per hop and don't need per-message results: drains
    /// `payloads` in place (capacity is retained for the next run) with
    /// identical admission, wait-budget, and drop semantics.
    pub fn post_all_from(&self, payloads: &mut Vec<Payload>) {
        self.post_run(payloads, |_| {});
    }

    fn post_run(&self, payloads: &mut Vec<Payload>, mut record: impl FnMut(PostResult)) {
        if payloads.is_empty() {
            return;
        }
        if self.cfg.kind == ChannelKind::Sync || self.spsc_active.load(Ordering::SeqCst) {
            // Per-message delegation records its own post timings.
            for p in payloads.drain(..) {
                record(self.post(p));
            }
            return;
        }
        let t0 = self
            .probe
            .as_ref()
            .filter(|p| p.sample_timing())
            .map(|_| Instant::now());
        let deadline = Instant::now() + self.cfg.full_wait;
        let mut admitted = 0u64;
        let mut st = self.state.lock();
        'run: for payload in payloads.drain(..) {
            if !st.sink_open {
                self.pool.discard(payload);
                self.charge_drop(DropReason::Closed, 1);
                record(PostResult::Closed);
                continue;
            }
            let len = payload.buffered_len(&self.pool);
            let mut payload = payload;
            loop {
                match self.try_admit(&mut st, payload, len) {
                    Ok(()) => {
                        admitted += 1;
                        self.probe_admit(len);
                        record(PostResult::Posted);
                        if st.queue.len() == 1 {
                            // Empty→non-empty: blocked fetchers wake as
                            // soon as we release (or wait on) the lock.
                            self.cv.notify_all();
                        }
                        // Make the wake visible *during* the run, not just
                        // at its end: if the queue fills before the run
                        // completes, we wait on the consumer below — and a
                        // consumer that was never woken would leave us
                        // stuck until the drop deadline. The coalescing
                        // armed flag keeps the repeat notifies down to one
                        // atomic swap each.
                        self.wake_listeners();
                        continue 'run;
                    }
                    Err(p) => payload = p,
                }
                if self.cv.wait_until(&mut st, deadline).timed_out() {
                    match self.try_admit(&mut st, payload, len) {
                        Ok(()) => {
                            admitted += 1;
                            self.probe_admit(len);
                            record(PostResult::Posted);
                        }
                        Err(p) => {
                            self.pool.discard(p);
                            self.charge_drop(DropReason::Full, 1);
                            record(PostResult::Dropped);
                        }
                    }
                    continue 'run;
                }
                if !st.sink_open {
                    self.pool.discard(payload);
                    self.charge_drop(DropReason::Closed, 1);
                    record(PostResult::Closed);
                    continue 'run;
                }
            }
        }
        drop(st);
        if admitted > 0 {
            self.posted.fetch_add(admitted, Ordering::Relaxed);
            self.cv.notify_all();
            self.wake_listeners();
        }
        if let (Some(p), Some(t0)) = (&self.probe, t0) {
            p.on_post_ns(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Non-blocking post: admits the payload if the channel has room right
    /// now, otherwise hands it straight back without waiting out Figure
    /// 6-9's `T`. A closed sink discards the payload (as `post` does) and
    /// reports `Closed`.
    ///
    /// Sync (rendezvous) channels admit into their zero-length slot only
    /// while it is empty; an occupied slot hands the payload back. The
    /// blocking `post` additionally waits for the consumer to *take* the
    /// message — here that discipline moves to the caller: a pool-driven
    /// producer parks the refused payload in its pending-output buffer
    /// and retries on the queue's space wakeup (fired by the fetch that
    /// empties the slot), so the rendezvous pacing survives without a
    /// parked worker thread.
    ///
    /// Pool executors use this so a full downstream queue parks the
    /// *message* (in the producer's pending-output buffer) instead of the
    /// *worker thread* — a chain deeper than the worker count would
    /// otherwise deadlock with every worker blocked inside a post.
    pub fn post_nowait(&self, payload: Payload) -> Result<PostResult, Payload> {
        let len = payload.buffered_len(&self.pool);
        let payload = match self.try_ring_post(payload, len) {
            Ok(()) => return Ok(PostResult::Posted),
            Err(p) => p,
        };
        let mut st = self.state.lock();
        if !st.sink_open {
            drop(st);
            self.pool.discard(payload);
            self.charge_drop(DropReason::Closed, 1);
            return Ok(PostResult::Closed);
        }
        if self.cfg.kind == ChannelKind::Sync {
            if !st.queue.is_empty() {
                return Err(payload);
            }
            st.queue.push_back(payload);
            st.bytes += len;
            self.posted.fetch_add(1, Ordering::Relaxed);
            self.probe_admit(len);
            drop(st);
            self.cv.notify_all();
            self.wake_listeners();
            return Ok(PostResult::Posted);
        }
        match self.try_admit(&mut st, payload, len) {
            Ok(()) => {
                self.posted.fetch_add(1, Ordering::Relaxed);
                self.probe_admit(len);
                drop(st);
                self.cv.notify_all();
                self.wake_listeners();
                Ok(PostResult::Posted)
            }
            Err(p) => Err(p),
        }
    }

    /// Non-blocking batch post under one lock acquisition: admits a prefix
    /// of `payloads` while room lasts and returns the rest untouched. The
    /// `Vec<PostResult>` covers only the handled prefix (admitted or
    /// closed-discarded); leftover payloads carry no result — the caller
    /// still owns them.
    pub fn post_all_nowait(&self, payloads: Vec<Payload>) -> (Vec<PostResult>, Vec<Payload>) {
        if payloads.is_empty() {
            return (Vec::new(), Vec::new());
        }
        if self.cfg.kind == ChannelKind::Sync || self.spsc_active.load(Ordering::SeqCst) {
            // Per-message delegation: a rendezvous slot admits at most one
            // payload (the rest go back to the caller untouched), and the
            // SPSC ring path is lock-free per message anyway.
            let mut results = Vec::new();
            let mut iter = payloads.into_iter();
            for payload in iter.by_ref() {
                match self.post_nowait(payload) {
                    Ok(r) => results.push(r),
                    Err(p) => {
                        let mut rest = vec![p];
                        rest.extend(iter);
                        return (results, rest);
                    }
                }
            }
            return (results, Vec::new());
        }
        let mut results = Vec::new();
        let mut admitted = 0u64;
        let mut rest = Vec::new();
        let mut st = self.state.lock();
        let mut iter = payloads.into_iter();
        for payload in iter.by_ref() {
            if !st.sink_open {
                self.pool.discard(payload);
                self.charge_drop(DropReason::Closed, 1);
                results.push(PostResult::Closed);
                continue;
            }
            let len = payload.buffered_len(&self.pool);
            match self.try_admit(&mut st, payload, len) {
                Ok(()) => {
                    admitted += 1;
                    self.probe_admit(len);
                    results.push(PostResult::Posted);
                }
                Err(p) => {
                    // Full: stop here so per-queue FIFO order survives.
                    rest.push(p);
                    rest.extend(iter);
                    break;
                }
            }
        }
        drop(st);
        if admitted > 0 {
            self.posted.fetch_add(admitted, Ordering::Relaxed);
            self.cv.notify_all();
            self.wake_listeners();
        }
        (results, rest)
    }

    /// [`MessageQueue::post_all_nowait`] for callers reusing one scratch
    /// buffer: handles a prefix of `payloads` in place (admitted, or
    /// discarded on a closed sink) and returns how many were consumed.
    /// On return the vec holds only the refused tail, in order, still
    /// owned by the caller; its capacity is retained either way.
    pub fn post_all_nowait_into(&self, payloads: &mut Vec<Payload>) -> usize {
        if payloads.is_empty() {
            return 0;
        }
        let mut handled = 0usize;
        // Pop-from-the-back over the reversed vec hands out owned
        // payloads front-first without shifting or reallocating; the
        // (rare) refused tail pays one more reverse to restore order.
        payloads.reverse();
        if self.cfg.kind == ChannelKind::Sync || self.spsc_active.load(Ordering::SeqCst) {
            while let Some(payload) = payloads.pop() {
                match self.post_nowait(payload) {
                    Ok(_) => handled += 1,
                    Err(p) => {
                        payloads.push(p);
                        payloads.reverse();
                        return handled;
                    }
                }
            }
            return handled;
        }
        let mut admitted = 0u64;
        let mut st = self.state.lock();
        while let Some(payload) = payloads.pop() {
            if !st.sink_open {
                self.pool.discard(payload);
                self.charge_drop(DropReason::Closed, 1);
                handled += 1;
                continue;
            }
            let len = payload.buffered_len(&self.pool);
            match self.try_admit(&mut st, payload, len) {
                Ok(()) => {
                    admitted += 1;
                    self.probe_admit(len);
                    handled += 1;
                }
                Err(p) => {
                    // Full: stop here so per-queue FIFO order survives.
                    payloads.push(p);
                    payloads.reverse();
                    break;
                }
            }
        }
        drop(st);
        if admitted > 0 {
            self.posted.fetch_add(admitted, Ordering::Relaxed);
            self.cv.notify_all();
            self.wake_listeners();
        }
        handled
    }

    /// Accounts a payload that waited out Figure 6-9's `T` *outside* the
    /// queue (in a producer's pending-output buffer) and must now be
    /// dropped: discarded to the pool and charged to `dropped_expired` —
    /// its own reason code, distinct from an in-queue `dropped_full`
    /// (which blocked a `post`), so overflow and expiry stay separable.
    pub fn discard_expired(&self, payload: Payload) {
        self.pool.discard(payload);
        self.charge_drop(DropReason::Expired, 1);
    }

    /// Overload relief valve: discards up to `max_n` pending messages,
    /// charging them to the `shed` drop reason, and returns how many were
    /// shed. The runtime's congestion handler (a `CHANNEL_CONGESTED`
    /// event from the metrics→event bridge) and operator hooks call this
    /// to trade old data for headroom instead of stalling producers.
    ///
    /// Selection is **priority-aware** over the mutex queue: lowest
    /// [`PriorityClass`] first (bulk `image/*`/`video/*`/`audio/*` before
    /// interactive `text/*`/`application/*`), oldest within a class. SPSC
    /// ring entries have no selective removal and always predate the
    /// mutex queue's, so they shed first in plain FIFO order — build
    /// shed-managed queues with [`QueueConfig::spsc`] off to get the full
    /// priority policy.
    pub fn shed_oldest(&self, max_n: usize) -> usize {
        if max_n == 0 {
            return 0;
        }
        let mut st = self.state.lock();
        let mut n = 0usize;
        if let Some(ring) = &self.ring {
            while n < max_n {
                let Some((p, _)) = ring.pop() else {
                    break;
                };
                self.pool.discard(p);
                n += 1;
            }
        }
        if n < max_n && !st.queue.is_empty() {
            let classes: Vec<PriorityClass> =
                st.queue.iter().map(|p| self.payload_class(p)).collect();
            let mut shed = vec![false; classes.len()];
            let mut remaining = max_n - n;
            for class in [
                PriorityClass::Bulk,
                PriorityClass::Normal,
                PriorityClass::Interactive,
            ] {
                if remaining == 0 {
                    break;
                }
                for (i, c) in classes.iter().enumerate() {
                    if remaining == 0 {
                        break;
                    }
                    if *c == class {
                        shed[i] = true;
                        remaining -= 1;
                    }
                }
            }
            let old = std::mem::take(&mut st.queue);
            for (i, p) in old.into_iter().enumerate() {
                if shed[i] {
                    st.bytes = st.bytes.saturating_sub(p.buffered_len(&self.pool));
                    self.pool.discard(p);
                    n += 1;
                } else {
                    st.queue.push_back(p);
                }
            }
        }
        drop(st);
        if n > 0 {
            self.charge_drop(DropReason::Shed, n as u64);
            self.cv.notify_all();
            self.wake_space_listeners();
        }
        n
    }

    /// Priority class of a pending payload, by its MIME top-level type.
    /// A `Ref` whose pool entry vanished classifies as `Normal`.
    fn payload_class(&self, p: &Payload) -> PriorityClass {
        match p {
            Payload::Value(m) => PriorityClass::of(&m.content_type()),
            Payload::Ref(id) => self
                .pool
                .peek_type(*id)
                .map_or(PriorityClass::Normal, |t| PriorityClass::of(&t)),
        }
    }

    /// Accounts `n` ingress posts rejected by admission control. No
    /// payload ever existed (rejection happens before the message enters
    /// the pool), so only the reason counter — and its probe/trace mirror
    /// — is charged.
    pub fn charge_admission_rejected(&self, n: u64) {
        self.charge_drop(DropReason::Admission, n);
    }

    /// The Figure 6-9 full-wait budget `T` configured for this channel.
    pub fn full_wait(&self) -> Duration {
        self.cfg.full_wait
    }

    /// True when a [`MessageQueue::post_nowait`] of a `len`-byte payload
    /// would make progress right now — room in the byte budget, an empty
    /// buffer (oversized admission), or a closed sink (the post discards
    /// and reports `Closed`). Advisory: the answer can go stale the moment
    /// the lock drops, so callers treat `true` as "worth retrying", not a
    /// guarantee.
    pub fn has_space(&self, len: usize) -> bool {
        let st = self.state.lock();
        if !st.sink_open {
            return true;
        }
        if self.cfg.kind == ChannelKind::Sync {
            // The rendezvous slot is the only capacity there is; the byte
            // budget below would wrongly report room while it is occupied
            // (and a retrying producer would spin instead of sleeping on
            // the space wakeup).
            return st.queue.is_empty();
        }
        let ring_bytes = self.ring.as_ref().map_or(0, SpscRing::bytes);
        let ring_empty = self.ring.as_ref().is_none_or(SpscRing::is_empty);
        if st.queue.is_empty() && ring_empty {
            return true;
        }
        st.bytes + ring_bytes + len <= self.cfg.capacity_bytes
    }

    /// True for sync (zero-length, rendezvous) channels.
    pub fn is_sync(&self) -> bool {
        self.cfg.kind == ChannelKind::Sync
    }

    /// Pops the oldest pending payload: ring first (entries there always
    /// predate mutex-queue entries — the SPSC path only activates on an
    /// empty channel), then the mutex queue. The ring manages its own byte
    /// counter; only mutex-queue pops adjust `st.bytes`. Caller holds the
    /// state lock, which serializes every popper.
    fn pop_one(&self, st: &mut QState) -> Option<Payload> {
        if let Some(ring) = &self.ring {
            if let Some((p, _)) = ring.pop() {
                return Some(p);
            }
        }
        let p = st.queue.pop_front()?;
        st.bytes = st.bytes.saturating_sub(p.buffered_len(&self.pool));
        Some(p)
    }

    /// Buffered length of the oldest pending payload. Caller holds the
    /// state lock.
    fn peek_front_len(&self, st: &QState) -> Option<usize> {
        if let Some(ring) = &self.ring {
            if let Some(len) = ring.peek_len() {
                return Some(len);
            }
        }
        st.queue.front().map(|p| p.buffered_len(&self.pool))
    }

    /// Non-blocking fetch.
    pub fn try_fetch(&self) -> FetchResult {
        let mut st = self.state.lock();
        if let Some(p) = self.pop_one(&mut st) {
            self.fetched.fetch_add(1, Ordering::Relaxed);
            if let Some(pr) = &self.probe {
                pr.on_fetch(1);
            }
            drop(st);
            self.cv.notify_all();
            self.wake_space_listeners();
            return FetchResult::Msg(p);
        }
        if !st.source_open && self.pcount() == 0 {
            FetchResult::Disconnected
        } else {
            FetchResult::Empty
        }
    }

    /// Blocking fetch with timeout.
    pub fn fetch(&self, timeout: Duration) -> FetchResult {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(p) = self.pop_one(&mut st) {
                self.fetched.fetch_add(1, Ordering::Relaxed);
                if let Some(pr) = &self.probe {
                    pr.on_fetch(1);
                }
                drop(st);
                self.cv.notify_all();
                self.wake_space_listeners();
                return FetchResult::Msg(p);
            }
            if !st.source_open && self.pcount() == 0 {
                return FetchResult::Disconnected;
            }
            // Dekker handshake with the lock-free producer: register as a
            // sleeper, then re-check the ring. The producer pushes first
            // and then reads `sleepers`, so it either sees our increment
            // (and grabs the lock to notify) or we see its payload here.
            self.sleepers.fetch_add(1, Ordering::SeqCst);
            if self.ring.as_ref().is_some_and(|r| !r.is_empty()) {
                self.sleepers.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            let timed_out = self.cv.wait_until(&mut st, deadline).timed_out();
            self.sleepers.fetch_sub(1, Ordering::SeqCst);
            if timed_out && st.queue.is_empty() && self.ring.as_ref().is_none_or(|r| r.is_empty()) {
                return FetchResult::Empty;
            }
        }
    }

    /// Removes up to `max_n` pending payloads under a single lock
    /// acquisition, in FIFO order, stopping before a payload that would
    /// push the batch past `max_bytes` — except the first, which is always
    /// taken regardless of size (mirroring the oversized-admission rule so
    /// a message bigger than any budget still makes progress). Returns an
    /// empty vec when nothing is pending.
    pub fn take_batch(&self, max_n: usize, max_bytes: usize) -> Vec<Payload> {
        let mut out = Vec::new();
        self.take_batch_into(&mut out, max_n, max_bytes);
        out
    }

    /// [`MessageQueue::take_batch`] draining into a caller-provided
    /// buffer, so a driver can reuse one scratch vec across every step
    /// instead of allocating per drain. Appends up to `max_n` payloads
    /// to `out` and returns how many were taken.
    pub fn take_batch_into(&self, out: &mut Vec<Payload>, max_n: usize, max_bytes: usize) -> usize {
        if max_n == 0 {
            return 0;
        }
        let mut st = self.state.lock();
        let mut taken = 0usize;
        let mut bytes = 0usize;
        while taken < max_n {
            let Some(next) = self.peek_front_len(&st) else {
                break;
            };
            if taken != 0 && bytes.saturating_add(next) > max_bytes {
                break;
            }
            let Some(p) = self.pop_one(&mut st) else {
                break;
            };
            bytes = bytes.saturating_add(next);
            out.push(p);
            taken += 1;
        }
        if taken != 0 {
            self.fetched.fetch_add(taken as u64, Ordering::Relaxed);
            if let Some(p) = &self.probe {
                p.on_batch(taken);
            }
            drop(st);
            self.cv.notify_all();
            self.wake_space_listeners();
        }
        taken
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        let st = self.state.lock();
        st.queue.len() + self.ring.as_ref().map_or(0, |r| r.len())
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        let st = self.state.lock();
        st.queue.is_empty() && self.ring.as_ref().is_none_or(|r| r.is_empty())
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        let st = self.state.lock();
        st.bytes + self.ring.as_ref().map_or(0, |r| r.bytes())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            posted: self.posted.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_break: self.dropped_break.load(Ordering::Relaxed),
            dropped_expired: self.dropped_expired.load(Ordering::Relaxed),
            dropped_shed: self.dropped_shed.load(Ordering::Relaxed),
            dropped_admission: self.dropped_admission.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mobigate_mime::MimeMessage;
    use std::thread;

    fn setup(cfg: QueueConfig) -> (Arc<MessageQueue>, Arc<MessagePool>) {
        let pool = Arc::new(MessagePool::new());
        let q = MessageQueue::new(cfg, pool.clone());
        (q, pool)
    }

    fn payload(pool: &MessagePool, n: usize) -> Payload {
        pool.wrap(
            MimeMessage::new(&MimeType::new("text", "plain"), vec![0u8; n]),
            crate::PayloadMode::Reference,
            1,
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let (q, pool) = setup(QueueConfig::default());
        for i in 0..10usize {
            let m = MimeMessage::text(format!("m{i}"));
            assert_eq!(
                q.post(pool.wrap(m, crate::PayloadMode::Reference, 1)),
                PostResult::Posted
            );
        }
        for i in 0..10usize {
            match q.try_fetch() {
                FetchResult::Msg(p) => {
                    let m = pool.resolve(p).unwrap();
                    assert_eq!(m.body, format!("m{i}").as_bytes());
                }
                other => panic!("expected message, got {other:?}"),
            }
        }
        assert!(matches!(q.try_fetch(), FetchResult::Empty));
    }

    #[test]
    fn post_on_full_queue_drops_after_t() {
        let cfg = QueueConfig {
            capacity_bytes: 256,
            full_wait: Duration::from_millis(20),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 200)), PostResult::Posted);
        // Queue non-empty and over capacity: this one must drop after T.
        let t0 = Instant::now();
        assert_eq!(q.post(payload(&pool, 200)), PostResult::Dropped);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(q.stats().dropped_full, 1);
        // The pool reclaimed the dropped message's reference.
        assert_eq!(pool.stats().resident, 1);
    }

    #[test]
    fn oversized_message_admitted_when_empty() {
        let cfg = QueueConfig {
            capacity_bytes: 64,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 4096)), PostResult::Posted);
    }

    #[test]
    fn post_unblocks_when_consumer_drains() {
        let cfg = QueueConfig {
            capacity_bytes: 300,
            full_wait: Duration::from_millis(500),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 256)), PostResult::Posted);
        let q2 = q.clone();
        let drainer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            q2.try_fetch()
        });
        // Blocks ~30ms, then space appears.
        assert_eq!(q.post(payload(&pool, 256)), PostResult::Posted);
        assert!(matches!(drainer.join().unwrap(), FetchResult::Msg(_)));
    }

    #[test]
    fn blocking_fetch_waits_for_message() {
        let (q, pool) = setup(QueueConfig::default());
        let q2 = q.clone();
        let pool2 = pool.clone();
        let poster = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.post(payload(&pool2, 8))
        });
        match q.fetch(Duration::from_millis(500)) {
            FetchResult::Msg(p) => drop(pool.resolve(p)),
            other => panic!("{other:?}"),
        }
        assert_eq!(poster.join().unwrap(), PostResult::Posted);
    }

    #[test]
    fn fetch_times_out_empty() {
        let (q, _) = setup(QueueConfig::default());
        let t0 = Instant::now();
        assert!(matches!(
            q.fetch(Duration::from_millis(15)),
            FetchResult::Empty
        ));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn sync_channel_rendezvous() {
        let cfg = QueueConfig {
            kind: ChannelKind::Sync,
            category: ChannelCategory::S,
            full_wait: Duration::from_millis(500),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        let q2 = q.clone();
        let consumer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.fetch(Duration::from_millis(500))
        });
        let t0 = Instant::now();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        // Post returned only after the consumer took the message.
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(matches!(consumer.join().unwrap(), FetchResult::Msg(_)));
        assert!(q.is_empty());
    }

    #[test]
    fn sync_channel_drops_without_consumer() {
        let cfg = QueueConfig {
            kind: ChannelKind::Sync,
            category: ChannelCategory::S,
            full_wait: Duration::from_millis(20),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Dropped);
        assert!(q.is_empty());
        assert_eq!(pool.stats().resident, 0, "withdrawn message reclaimed");
    }

    #[test]
    fn bb_break_drops_pending_both_ways() {
        let cfg = QueueConfig {
            category: ChannelCategory::BB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_source().unwrap();
        // Sink side auto-disconnected; pending dropped.
        assert!(matches!(q.try_fetch(), FetchResult::Disconnected));
        assert_eq!(q.stats().dropped_break, 1);
        // Posts now fail Closed.
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
    }

    #[test]
    fn bk_source_break_keeps_pending_flowing() {
        let cfg = QueueConfig {
            category: ChannelCategory::BK,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_source().unwrap();
        // The pending unit still reaches the target…
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
        // …after which the consumer learns the source is gone.
        assert!(matches!(q.try_fetch(), FetchResult::Disconnected));
    }

    #[test]
    fn bk_sink_break_drops_pending() {
        let cfg = QueueConfig {
            category: ChannelCategory::BK,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_sink().unwrap();
        assert_eq!(q.stats().dropped_break, 1);
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
    }

    #[test]
    fn kb_sink_break_retains_pending_for_new_sink() {
        let cfg = QueueConfig {
            category: ChannelCategory::KB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_sink().unwrap();
        assert_eq!(q.stats().dropped_break, 0, "KB keeps pending on sink break");
        // A replacement sink attaches and receives the retained unit.
        q.attach_sink();
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
    }

    #[test]
    fn kk_cannot_be_disconnected() {
        let cfg = QueueConfig {
            category: ChannelCategory::KK,
            ..Default::default()
        };
        let (q, _) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert!(q.detach_source().is_err());
        assert!(q.detach_sink().is_err());
    }

    #[test]
    fn reattach_reopens_channel() {
        let cfg = QueueConfig {
            category: ChannelCategory::BB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        q.detach_source().unwrap();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
        // Reconfiguration reattaches both ends (the paper reuses channel m
        // when inserting streamlet C, Figure 7-4).
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
    }

    #[test]
    fn counts_track_attachments() {
        let (q, _) = setup(QueueConfig::default());
        q.attach_source();
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.pcount(), 2);
        assert_eq!(q.ccount(), 1);
        q.detach_source().unwrap();
        assert_eq!(q.pcount(), 1);
    }

    #[test]
    fn listener_woken_on_post() {
        let (q, pool) = setup(QueueConfig::default());
        let n = Arc::new(Notifier::new());
        q.add_listener(n.clone());
        let n2 = n.clone();
        let waiter = thread::spawn(move || {
            let t0 = Instant::now();
            n2.wait(Duration::from_millis(500));
            t0.elapsed()
        });
        thread::sleep(Duration::from_millis(20));
        q.post(payload(&pool, 4));
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_millis(400),
            "woken early, waited {waited:?}"
        );
        q.remove_listener(&n);
    }

    #[test]
    fn stats_account_everything() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 100,
            full_wait: Duration::from_millis(5),
            ..Default::default()
        });
        q.post(payload(&pool, 90));
        q.post(payload(&pool, 90)); // drops
        if let FetchResult::Msg(p) = q.try_fetch() {
            pool.discard(p);
        }
        let s = q.stats();
        assert_eq!(s.posted, 1);
        assert_eq!(s.fetched, 1);
        assert_eq!(s.dropped_full, 1);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 1 << 20,
            ..Default::default()
        });
        let total = 2000;
        let mut producers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            let pool = pool.clone();
            producers.push(thread::spawn(move || {
                for _ in 0..total / 4 {
                    assert_eq!(q.post(payload(&pool, 16)), PostResult::Posted);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = q.clone();
            let pool = pool.clone();
            consumers.push(thread::spawn(move || {
                let mut got = 0;
                while got < total / 2 {
                    if let FetchResult::Msg(p) = q.fetch(Duration::from_millis(200)) {
                        pool.resolve(p).unwrap();
                        got += 1;
                    }
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let received: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(received, total);
        assert_eq!(pool.stats().resident, 0);
    }

    #[test]
    fn drops_are_reason_coded() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 64,
            full_wait: Duration::from_millis(1),
            ..Default::default()
        });
        q.attach_source();
        q.attach_sink();
        // Oversized-head admission fills the queue; the next post waits
        // out its tiny budget and drops with reason `full`.
        assert_eq!(q.post(payload(&pool, 128)), PostResult::Posted);
        assert_eq!(q.post(payload(&pool, 16)), PostResult::Dropped);
        let s = q.stats();
        assert_eq!((s.dropped_full, s.dropped_total()), (1, 1));

        // Shedding the resident head charges `shed`, not `full`.
        assert_eq!(q.shed_oldest(8), 1);
        assert!(q.is_empty());
        let s = q.stats();
        assert_eq!(s.dropped_shed, 1);

        // A parked output whose Figure 6-9 deadline passed charges
        // `expired` when its owner discards it.
        q.discard_expired(payload(&pool, 16));
        // `break` covers in-queue messages destroyed when a BK channel's
        // sink side breaks the stream.
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_sink().unwrap();
        let s = q.stats();
        assert_eq!(s.dropped_full, 1);
        assert_eq!(s.dropped_expired, 1);
        assert_eq!(s.dropped_break, 1);
        assert_eq!(s.dropped_shed, 1);
        assert_eq!(s.dropped_total(), 4);
        assert_eq!(pool.stats().resident, 0, "every drop released its payload");
    }

    #[test]
    fn shed_oldest_sheds_in_fifo_order_and_wakes_space() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 1 << 20,
            ..Default::default()
        });
        for i in 0..4usize {
            let m = MimeMessage::text(format!("m{i}"));
            assert_eq!(
                q.post(pool.wrap(m, crate::PayloadMode::Reference, 1)),
                PostResult::Posted
            );
        }
        assert_eq!(q.shed_oldest(2), 2);
        // The survivors are the *newest* two, still in order.
        for expect in ["m2", "m3"] {
            match q.try_fetch() {
                FetchResult::Msg(p) => {
                    let m = pool.resolve(p).unwrap();
                    assert_eq!(&m.body[..], expect.as_bytes());
                }
                other => panic!("expected {expect}, got {other:?}"),
            }
        }
        assert_eq!(q.shed_oldest(5), 0, "empty queue sheds nothing");
        assert_eq!(q.stats().dropped_shed, 2);
    }

    #[test]
    fn shed_oldest_sheds_lowest_priority_first() {
        // spsc off: the mutex queue holds everything, so the priority
        // policy applies to every pending message.
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 1 << 20,
            spsc: false,
            ..Default::default()
        });
        let post = |top: &str, body: &str| {
            let m = MimeMessage::new(&MimeType::new(top, "x"), body.as_bytes().to_vec());
            assert_eq!(
                q.post(pool.wrap(m, crate::PayloadMode::Reference, 1)),
                PostResult::Posted
            );
        };
        post("text", "t0");
        post("image", "i0");
        post("multipart", "n0");
        post("video", "i1");
        post("text", "t1");
        post("image", "i2");
        // Shed 4: all three bulk entries go first (oldest-first), then the
        // single normal entry; interactive text survives untouched.
        assert_eq!(q.shed_oldest(4), 4);
        for expect in ["t0", "t1"] {
            match q.try_fetch() {
                FetchResult::Msg(p) => {
                    let m = pool.resolve(p).unwrap();
                    assert_eq!(&m.body[..], expect.as_bytes());
                }
                other => panic!("expected {expect}, got {other:?}"),
            }
        }
        assert!(q.is_empty());
        assert_eq!(q.stats().dropped_shed, 4);
        assert_eq!(pool.stats().resident, 0, "shed payloads released");
    }

    #[test]
    fn shed_oldest_partial_within_class_keeps_order_and_bytes() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 1 << 20,
            spsc: false,
            ..Default::default()
        });
        for i in 0..3 {
            let m = MimeMessage::new(&MimeType::new("image", "gif"), vec![7u8; 100 + i]);
            assert_eq!(
                q.post(pool.wrap(m, crate::PayloadMode::Reference, 1)),
                PostResult::Posted
            );
        }
        let before = q.buffered_bytes();
        assert_eq!(q.shed_oldest(1), 1);
        assert!(q.buffered_bytes() < before, "byte accounting shrank");
        // Survivors keep FIFO order within the class.
        match q.try_fetch() {
            FetchResult::Msg(p) => {
                assert_eq!(pool.resolve(p).unwrap().body.len(), 101);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn admission_rejections_are_reason_coded() {
        let (q, _) = setup(QueueConfig::default());
        q.charge_admission_rejected(3);
        let s = q.stats();
        assert_eq!(s.dropped_admission, 3);
        assert_eq!(s.dropped_total(), 3);
        assert_eq!(s.posted, 0, "rejected posts never count as posted");
    }
}
