//! `MessageQueue` — the channel object of the coordination plane (§6.2).
//!
//! A queue connects producer streamlets to consumer streamlets. Following
//! the paper:
//!
//! * producer/consumer attachment is tracked by `pCount` / `cCount`
//!   (Figure 6-3);
//! * `postMessage` on a full queue waits a bounded time `T` and then
//!   **drops** the message (Figure 6-9) — slow streamlets must not stall
//!   fast ones (§6.7);
//! * synchronous channels are zero-length buffers (at most one message in
//!   flight, producer blocked until it is taken); asynchronous channels are
//!   FIFO buffers bounded in **bytes** (the MCL `buffer` attribute,
//!   Kbytes);
//! * the channel *category* (S/BB/BK/KB/KK, Figure 4-4) governs what
//!   happens to pending units when one side detaches.
//!
//! Buffer accounting admits one oversized message into an empty queue so a
//! message larger than the buffer can still traverse the channel (otherwise
//! a 1024 KB image could never cross a 100 KB channel and the stream would
//! stall forever).

// Hot-path modules must surface failures as `CoreError`s, never abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::pool::{MessagePool, Payload};
use mobigate_mcl::ast::{ChannelCategory, ChannelKind};
use mobigate_mime::MimeType;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wakes streamlet worker threads when any of their input queues receives a
/// message (or a lifecycle change occurs).
#[derive(Default)]
pub struct Notifier {
    seq: Mutex<u64>,
    cv: Condvar,
    /// Optional wake hook, invoked on every [`Notifier::notify`] — this is
    /// how a [`crate::executor::WorkerPool`] turns queue posts and
    /// lifecycle transitions into run-queue scheduling instead of waking a
    /// dedicated blocked thread.
    hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notifier")
            .field("seq", &*self.seq.lock())
            .field("hooked", &self.hook.lock().is_some())
            .finish()
    }
}

impl Notifier {
    /// Creates a notifier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes all waiters and fires the wake hook, if any.
    pub fn notify(&self) {
        {
            let mut seq = self.seq.lock();
            *seq += 1;
            self.cv.notify_all();
        }
        // Outside the seq lock: the hook takes scheduler locks of its own.
        if let Some(hook) = &*self.hook.lock() {
            hook();
        }
    }

    /// Installs the wake hook (replacing any previous one). Executors call
    /// this when adopting a streamlet so every notification also schedules
    /// its task.
    pub fn set_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.hook.lock() = Some(Box::new(hook));
    }

    /// Removes the wake hook.
    pub fn clear_hook(&self) {
        *self.hook.lock() = None;
    }

    /// Current notification sequence. Take a snapshot *before* checking
    /// the condition you wait on, then use [`Notifier::wait_unless`]: any
    /// notify between the snapshot and the wait is then never missed.
    pub fn snapshot(&self) -> u64 {
        *self.seq.lock()
    }

    /// Waits until notified or `timeout` elapses. Returns immediately when
    /// a notification already happened after `since` was snapshotted.
    pub fn wait_unless(&self, since: u64, timeout: Duration) {
        let mut seq = self.seq.lock();
        if *seq != since {
            return;
        }
        self.cv.wait_for(&mut seq, timeout);
    }

    /// Waits until notified or `timeout` elapses (racy convenience: a
    /// notification issued just before the call can be missed — prefer
    /// `snapshot` + `wait_unless` in loops).
    pub fn wait(&self, timeout: Duration) {
        let mut seq = self.seq.lock();
        self.cv.wait_for(&mut seq, timeout);
    }
}

/// Construction parameters of a queue.
#[derive(Debug, Clone)]
pub struct QueueConfig {
    /// Channel instance name (diagnostics).
    pub name: String,
    /// Sync (rendezvous) or async (buffered).
    pub kind: ChannelKind,
    /// Disconnection category.
    pub category: ChannelCategory,
    /// Buffer capacity in bytes (ignored for sync channels).
    pub capacity_bytes: usize,
    /// Figure 6-9's `T`: how long `post` waits on a full queue before
    /// dropping the message.
    pub full_wait: Duration,
    /// The MIME type the channel carries (runtime type check on post).
    pub ty: MimeType,
}

impl Default for QueueConfig {
    fn default() -> Self {
        QueueConfig {
            name: "<anon>".into(),
            kind: ChannelKind::Async,
            category: ChannelCategory::BK,
            capacity_bytes: 100 * 1024,
            full_wait: Duration::from_millis(50),
            ty: MimeType::any(),
        }
    }
}

impl QueueConfig {
    /// Builds a config from a compiled MCL [`mobigate_mcl::ChannelSpec`].
    pub fn from_spec(name: &str, spec: &mobigate_mcl::ChannelSpec) -> Self {
        QueueConfig {
            name: name.to_string(),
            kind: spec.kind,
            category: spec.category,
            capacity_bytes: (spec.buffer_kb as usize) * 1024,
            full_wait: Duration::from_millis(50),
            ty: spec.ty.clone(),
        }
    }
}

/// Outcome of a `post`.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum PostResult {
    /// Enqueued (or handed over, for sync channels).
    Posted,
    /// Queue stayed full for `T`; the message was dropped (Figure 6-9).
    Dropped,
    /// The sink side is disconnected; the message was discarded.
    Closed,
}

/// Outcome of a `fetch`.
#[derive(Debug)]
pub enum FetchResult {
    /// A message payload.
    Msg(Payload),
    /// Timed out with nothing available.
    Empty,
    /// The source side is gone and the queue is drained — no more messages
    /// will ever arrive.
    Disconnected,
}

/// Lifetime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Successfully enqueued messages.
    pub posted: u64,
    /// Successfully fetched messages.
    pub fetched: u64,
    /// Messages dropped because the queue stayed full past `T`.
    pub dropped_full: u64,
    /// Messages discarded because the sink was disconnected.
    pub dropped_closed: u64,
    /// Pending messages discarded by a category-mandated break.
    pub dropped_break: u64,
}

#[derive(Debug)]
struct QState {
    queue: VecDeque<Payload>,
    bytes: usize,
    source_open: bool,
    sink_open: bool,
}

/// The channel object. Cheaply shareable via `Arc`.
#[derive(Debug)]
pub struct MessageQueue {
    cfg: QueueConfig,
    state: Mutex<QState>,
    /// Signals consumers (message available) and producers (space
    /// available); a single condvar keeps the monitor simple, exactly like
    /// the paper's `wait`/`notifyAll` usage.
    cv: Condvar,
    pool: Arc<MessagePool>,
    pcount: AtomicUsize,
    ccount: AtomicUsize,
    posted: AtomicU64,
    fetched: AtomicU64,
    dropped_full: AtomicU64,
    dropped_closed: AtomicU64,
    dropped_break: AtomicU64,
    listeners: Mutex<Vec<Arc<Notifier>>>,
}

impl MessageQueue {
    /// Creates a queue backed by `pool` for reference accounting.
    pub fn new(cfg: QueueConfig, pool: Arc<MessagePool>) -> Arc<Self> {
        Arc::new(MessageQueue {
            cfg,
            state: Mutex::new(QState {
                queue: VecDeque::new(),
                bytes: 0,
                source_open: true,
                sink_open: true,
            }),
            cv: Condvar::new(),
            pool,
            pcount: AtomicUsize::new(0),
            ccount: AtomicUsize::new(0),
            posted: AtomicU64::new(0),
            fetched: AtomicU64::new(0),
            dropped_full: AtomicU64::new(0),
            dropped_closed: AtomicU64::new(0),
            dropped_break: AtomicU64::new(0),
            listeners: Mutex::new(Vec::new()),
        })
    }

    /// The queue's configuration.
    pub fn config(&self) -> &QueueConfig {
        &self.cfg
    }

    /// Producer count (paper `pCount`).
    pub fn pcount(&self) -> usize {
        self.pcount.load(Ordering::Acquire)
    }

    /// Consumer count (paper `cCount`).
    pub fn ccount(&self) -> usize {
        self.ccount.load(Ordering::Acquire)
    }

    /// Registers a notifier woken on every post (consumer-side wakeup).
    pub fn add_listener(&self, n: Arc<Notifier>) {
        self.listeners.lock().push(n);
    }

    /// Unregisters a notifier.
    pub fn remove_listener(&self, n: &Arc<Notifier>) {
        self.listeners.lock().retain(|l| !Arc::ptr_eq(l, n));
    }

    /// Attaches a producer (paper `incr_pCount`); reopens the source side.
    pub fn attach_source(&self) {
        self.pcount.fetch_add(1, Ordering::AcqRel);
        let mut st = self.state.lock();
        st.source_open = true;
        drop(st);
        self.cv.notify_all();
    }

    /// Attaches a consumer (paper `incr_cCount`); reopens the sink side.
    pub fn attach_sink(&self) {
        self.ccount.fetch_add(1, Ordering::AcqRel);
        let mut st = self.state.lock();
        st.sink_open = true;
        drop(st);
        self.cv.notify_all();
        self.wake_listeners();
    }

    /// Detaches a producer, applying the category semantics when the last
    /// producer leaves. Returns `Err` for KK channels, which "cannot be
    /// disconnected at either side".
    pub fn detach_source(&self) -> Result<(), crate::CoreError> {
        if self.cfg.category == ChannelCategory::KK {
            return Err(crate::CoreError::Channel {
                name: self.cfg.name.clone(),
                message: "KK channels cannot be disconnected".into(),
            });
        }
        let prev = self.pcount.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "detach_source without attach");
        if prev == 1 {
            let mut st = self.state.lock();
            st.source_open = false;
            match self.cfg.category {
                // BB: breaking one side breaks the other; pending dropped.
                ChannelCategory::BB => {
                    st.sink_open = false;
                    self.drop_pending(&mut st);
                }
                // KB reverses BK: a source break also breaks the target.
                ChannelCategory::KB => {
                    st.sink_open = false;
                    self.drop_pending(&mut st);
                }
                // BK: pending units keep flowing to the target; S/sync has
                // no pending by construction.
                ChannelCategory::BK | ChannelCategory::S | ChannelCategory::KK => {}
            }
            drop(st);
            self.cv.notify_all();
            self.wake_listeners();
        }
        Ok(())
    }

    /// Detaches a consumer (category-symmetric to [`Self::detach_source`]).
    pub fn detach_sink(&self) -> Result<(), crate::CoreError> {
        if self.cfg.category == ChannelCategory::KK {
            return Err(crate::CoreError::Channel {
                name: self.cfg.name.clone(),
                message: "KK channels cannot be disconnected".into(),
            });
        }
        let prev = self.ccount.fetch_sub(1, Ordering::AcqRel);
        debug_assert!(prev > 0, "detach_sink without attach");
        if prev == 1 {
            let mut st = self.state.lock();
            st.sink_open = false;
            match self.cfg.category {
                ChannelCategory::BB => {
                    st.source_open = false;
                    self.drop_pending(&mut st);
                }
                // BK: a sink break also breaks the source; pending dropped.
                ChannelCategory::BK => {
                    st.source_open = false;
                    self.drop_pending(&mut st);
                }
                // KB: pending units are retained for a future sink.
                ChannelCategory::KB | ChannelCategory::S | ChannelCategory::KK => {}
            }
            drop(st);
            self.cv.notify_all();
        }
        Ok(())
    }

    fn drop_pending(&self, st: &mut QState) {
        let n = st.queue.len() as u64;
        for p in st.queue.drain(..) {
            self.pool.discard(p);
        }
        st.bytes = 0;
        self.dropped_break.fetch_add(n, Ordering::Relaxed);
    }

    fn wake_listeners(&self) {
        for l in self.listeners.lock().iter() {
            l.notify();
        }
    }

    /// Posts a payload (Figure 6-9 semantics). Sync channels block until
    /// the message is taken or `T` elapses (rendezvous-or-drop).
    pub fn post(&self, payload: Payload) -> PostResult {
        let len = payload.buffered_len(&self.pool);
        let deadline = Instant::now() + self.cfg.full_wait;
        let mut st = self.state.lock();
        if !st.sink_open {
            drop(st);
            self.pool.discard(payload);
            self.dropped_closed.fetch_add(1, Ordering::Relaxed);
            return PostResult::Closed;
        }
        match self.cfg.kind {
            ChannelKind::Async => {
                // Wait while full; an empty queue always admits one message.
                while !st.queue.is_empty() && st.bytes + len > self.cfg.capacity_bytes {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        if !st.queue.is_empty() && st.bytes + len > self.cfg.capacity_bytes {
                            drop(st);
                            self.pool.discard(payload);
                            self.dropped_full.fetch_add(1, Ordering::Relaxed);
                            return PostResult::Dropped;
                        }
                        break;
                    }
                    if !st.sink_open {
                        drop(st);
                        self.pool.discard(payload);
                        self.dropped_closed.fetch_add(1, Ordering::Relaxed);
                        return PostResult::Closed;
                    }
                }
                st.queue.push_back(payload);
                st.bytes += len;
                self.posted.fetch_add(1, Ordering::Relaxed);
                drop(st);
                self.cv.notify_all();
                self.wake_listeners();
                PostResult::Posted
            }
            ChannelKind::Sync => {
                // Zero-length buffer: admit when empty, then wait until the
                // consumer takes it.
                while !st.queue.is_empty() {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        drop(st);
                        self.pool.discard(payload);
                        self.dropped_full.fetch_add(1, Ordering::Relaxed);
                        return PostResult::Dropped;
                    }
                }
                if !st.sink_open {
                    drop(st);
                    self.pool.discard(payload);
                    self.dropped_closed.fetch_add(1, Ordering::Relaxed);
                    return PostResult::Closed;
                }
                st.queue.push_back(payload);
                st.bytes += len;
                self.posted.fetch_add(1, Ordering::Relaxed);
                self.cv.notify_all();
                self.wake_listeners();
                // Rendezvous: wait until taken (or deadline).
                while !st.queue.is_empty() {
                    if self.cv.wait_until(&mut st, deadline).timed_out() {
                        // Consumer never came: withdraw the message.
                        if let Some(p) = st.queue.pop_front() {
                            st.bytes = st.bytes.saturating_sub(len);
                            drop(st);
                            self.pool.discard(p);
                            self.posted.fetch_sub(1, Ordering::Relaxed);
                            self.dropped_full.fetch_add(1, Ordering::Relaxed);
                            return PostResult::Dropped;
                        }
                        break;
                    }
                }
                PostResult::Posted
            }
        }
    }

    /// Non-blocking fetch.
    pub fn try_fetch(&self) -> FetchResult {
        let mut st = self.state.lock();
        if let Some(p) = st.queue.pop_front() {
            st.bytes = st.bytes.saturating_sub(p.buffered_len(&self.pool));
            self.fetched.fetch_add(1, Ordering::Relaxed);
            drop(st);
            self.cv.notify_all();
            return FetchResult::Msg(p);
        }
        if !st.source_open && self.pcount() == 0 {
            FetchResult::Disconnected
        } else {
            FetchResult::Empty
        }
    }

    /// Blocking fetch with timeout.
    pub fn fetch(&self, timeout: Duration) -> FetchResult {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock();
        loop {
            if let Some(p) = st.queue.pop_front() {
                st.bytes = st.bytes.saturating_sub(p.buffered_len(&self.pool));
                self.fetched.fetch_add(1, Ordering::Relaxed);
                drop(st);
                self.cv.notify_all();
                return FetchResult::Msg(p);
            }
            if !st.source_open && self.pcount() == 0 {
                return FetchResult::Disconnected;
            }
            if self.cv.wait_until(&mut st, deadline).timed_out() && st.queue.is_empty() {
                return FetchResult::Empty;
            }
        }
    }

    /// Number of pending messages.
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.state.lock().queue.is_empty()
    }

    /// Bytes currently buffered.
    pub fn buffered_bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> QueueStats {
        QueueStats {
            posted: self.posted.load(Ordering::Relaxed),
            fetched: self.fetched.load(Ordering::Relaxed),
            dropped_full: self.dropped_full.load(Ordering::Relaxed),
            dropped_closed: self.dropped_closed.load(Ordering::Relaxed),
            dropped_break: self.dropped_break.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use mobigate_mime::MimeMessage;
    use std::thread;

    fn setup(cfg: QueueConfig) -> (Arc<MessageQueue>, Arc<MessagePool>) {
        let pool = Arc::new(MessagePool::new());
        let q = MessageQueue::new(cfg, pool.clone());
        (q, pool)
    }

    fn payload(pool: &MessagePool, n: usize) -> Payload {
        pool.wrap(
            MimeMessage::new(&MimeType::new("text", "plain"), vec![0u8; n]),
            crate::PayloadMode::Reference,
            1,
        )
    }

    #[test]
    fn fifo_order_preserved() {
        let (q, pool) = setup(QueueConfig::default());
        for i in 0..10usize {
            let m = MimeMessage::text(format!("m{i}"));
            assert_eq!(
                q.post(pool.wrap(m, crate::PayloadMode::Reference, 1)),
                PostResult::Posted
            );
        }
        for i in 0..10usize {
            match q.try_fetch() {
                FetchResult::Msg(p) => {
                    let m = pool.resolve(p).unwrap();
                    assert_eq!(m.body, format!("m{i}").as_bytes());
                }
                other => panic!("expected message, got {other:?}"),
            }
        }
        assert!(matches!(q.try_fetch(), FetchResult::Empty));
    }

    #[test]
    fn post_on_full_queue_drops_after_t() {
        let cfg = QueueConfig {
            capacity_bytes: 256,
            full_wait: Duration::from_millis(20),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 200)), PostResult::Posted);
        // Queue non-empty and over capacity: this one must drop after T.
        let t0 = Instant::now();
        assert_eq!(q.post(payload(&pool, 200)), PostResult::Dropped);
        assert!(t0.elapsed() >= Duration::from_millis(20));
        assert_eq!(q.stats().dropped_full, 1);
        // The pool reclaimed the dropped message's reference.
        assert_eq!(pool.stats().resident, 1);
    }

    #[test]
    fn oversized_message_admitted_when_empty() {
        let cfg = QueueConfig {
            capacity_bytes: 64,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 4096)), PostResult::Posted);
    }

    #[test]
    fn post_unblocks_when_consumer_drains() {
        let cfg = QueueConfig {
            capacity_bytes: 300,
            full_wait: Duration::from_millis(500),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 256)), PostResult::Posted);
        let q2 = q.clone();
        let drainer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(30));
            q2.try_fetch()
        });
        // Blocks ~30ms, then space appears.
        assert_eq!(q.post(payload(&pool, 256)), PostResult::Posted);
        assert!(matches!(drainer.join().unwrap(), FetchResult::Msg(_)));
    }

    #[test]
    fn blocking_fetch_waits_for_message() {
        let (q, pool) = setup(QueueConfig::default());
        let q2 = q.clone();
        let pool2 = pool.clone();
        let poster = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.post(payload(&pool2, 8))
        });
        match q.fetch(Duration::from_millis(500)) {
            FetchResult::Msg(p) => drop(pool.resolve(p)),
            other => panic!("{other:?}"),
        }
        assert_eq!(poster.join().unwrap(), PostResult::Posted);
    }

    #[test]
    fn fetch_times_out_empty() {
        let (q, _) = setup(QueueConfig::default());
        let t0 = Instant::now();
        assert!(matches!(
            q.fetch(Duration::from_millis(15)),
            FetchResult::Empty
        ));
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn sync_channel_rendezvous() {
        let cfg = QueueConfig {
            kind: ChannelKind::Sync,
            category: ChannelCategory::S,
            full_wait: Duration::from_millis(500),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        let q2 = q.clone();
        let consumer = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            q2.fetch(Duration::from_millis(500))
        });
        let t0 = Instant::now();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        // Post returned only after the consumer took the message.
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert!(matches!(consumer.join().unwrap(), FetchResult::Msg(_)));
        assert!(q.is_empty());
    }

    #[test]
    fn sync_channel_drops_without_consumer() {
        let cfg = QueueConfig {
            kind: ChannelKind::Sync,
            category: ChannelCategory::S,
            full_wait: Duration::from_millis(20),
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Dropped);
        assert!(q.is_empty());
        assert_eq!(pool.stats().resident, 0, "withdrawn message reclaimed");
    }

    #[test]
    fn bb_break_drops_pending_both_ways() {
        let cfg = QueueConfig {
            category: ChannelCategory::BB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_source().unwrap();
        // Sink side auto-disconnected; pending dropped.
        assert!(matches!(q.try_fetch(), FetchResult::Disconnected));
        assert_eq!(q.stats().dropped_break, 1);
        // Posts now fail Closed.
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
    }

    #[test]
    fn bk_source_break_keeps_pending_flowing() {
        let cfg = QueueConfig {
            category: ChannelCategory::BK,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_source().unwrap();
        // The pending unit still reaches the target…
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
        // …after which the consumer learns the source is gone.
        assert!(matches!(q.try_fetch(), FetchResult::Disconnected));
    }

    #[test]
    fn bk_sink_break_drops_pending() {
        let cfg = QueueConfig {
            category: ChannelCategory::BK,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_sink().unwrap();
        assert_eq!(q.stats().dropped_break, 1);
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
    }

    #[test]
    fn kb_sink_break_retains_pending_for_new_sink() {
        let cfg = QueueConfig {
            category: ChannelCategory::KB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        q.detach_sink().unwrap();
        assert_eq!(q.stats().dropped_break, 0, "KB keeps pending on sink break");
        // A replacement sink attaches and receives the retained unit.
        q.attach_sink();
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
    }

    #[test]
    fn kk_cannot_be_disconnected() {
        let cfg = QueueConfig {
            category: ChannelCategory::KK,
            ..Default::default()
        };
        let (q, _) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        assert!(q.detach_source().is_err());
        assert!(q.detach_sink().is_err());
    }

    #[test]
    fn reattach_reopens_channel() {
        let cfg = QueueConfig {
            category: ChannelCategory::BB,
            ..Default::default()
        };
        let (q, pool) = setup(cfg);
        q.attach_source();
        q.attach_sink();
        q.detach_source().unwrap();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Closed);
        // Reconfiguration reattaches both ends (the paper reuses channel m
        // when inserting streamlet C, Figure 7-4).
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.post(payload(&pool, 8)), PostResult::Posted);
        assert!(matches!(q.try_fetch(), FetchResult::Msg(_)));
    }

    #[test]
    fn counts_track_attachments() {
        let (q, _) = setup(QueueConfig::default());
        q.attach_source();
        q.attach_source();
        q.attach_sink();
        assert_eq!(q.pcount(), 2);
        assert_eq!(q.ccount(), 1);
        q.detach_source().unwrap();
        assert_eq!(q.pcount(), 1);
    }

    #[test]
    fn listener_woken_on_post() {
        let (q, pool) = setup(QueueConfig::default());
        let n = Arc::new(Notifier::new());
        q.add_listener(n.clone());
        let n2 = n.clone();
        let waiter = thread::spawn(move || {
            let t0 = Instant::now();
            n2.wait(Duration::from_millis(500));
            t0.elapsed()
        });
        thread::sleep(Duration::from_millis(20));
        q.post(payload(&pool, 4));
        let waited = waiter.join().unwrap();
        assert!(
            waited < Duration::from_millis(400),
            "woken early, waited {waited:?}"
        );
        q.remove_listener(&n);
    }

    #[test]
    fn stats_account_everything() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 100,
            full_wait: Duration::from_millis(5),
            ..Default::default()
        });
        q.post(payload(&pool, 90));
        q.post(payload(&pool, 90)); // drops
        if let FetchResult::Msg(p) = q.try_fetch() {
            pool.discard(p);
        }
        let s = q.stats();
        assert_eq!(s.posted, 1);
        assert_eq!(s.fetched, 1);
        assert_eq!(s.dropped_full, 1);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let (q, pool) = setup(QueueConfig {
            capacity_bytes: 1 << 20,
            ..Default::default()
        });
        let total = 2000;
        let mut producers = Vec::new();
        for _ in 0..4 {
            let q = q.clone();
            let pool = pool.clone();
            producers.push(thread::spawn(move || {
                for _ in 0..total / 4 {
                    assert_eq!(q.post(payload(&pool, 16)), PostResult::Posted);
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = q.clone();
            let pool = pool.clone();
            consumers.push(thread::spawn(move || {
                let mut got = 0;
                while got < total / 2 {
                    if let FetchResult::Msg(p) = q.fetch(Duration::from_millis(200)) {
                        pool.resolve(p).unwrap();
                        got += 1;
                    }
                }
                got
            }));
        }
        for p in producers {
            p.join().unwrap();
        }
        let received: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(received, total);
        assert_eq!(pool.stats().resident, 0);
    }
}
