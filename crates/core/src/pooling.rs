//! Streamlet pooling (§3.3.4).
//!
//! "MobiGATE explicitly supports a mechanism called streamlet pooling that
//! makes it easier to manage large numbers of streamlets … Streamlet
//! pooling is applicable to streamlets that are considered Stateless …
//! it is also less expensive to reuse pooled streamlet instances than to
//! frequently create and destroy instances."
//!
//! The pool keeps idle `Box<dyn StreamletLogic>` objects keyed by library.
//! `checkout` is a pool *hit* when an idle instance exists, otherwise a
//! *miss* that falls through to the [`crate::StreamletDirectory`] factory.
//! Returned instances are `reset()` before reuse.

use crate::directory::StreamletDirectory;
use crate::error::CoreError;
use crate::streamlet::StreamletLogic;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pool behaviour statistics (ablation bench material).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolingStats {
    /// Checkouts served from the pool.
    pub hits: u64,
    /// Checkouts that had to create a fresh instance.
    pub misses: u64,
    /// Instances returned to the pool.
    pub returned: u64,
    /// Instances discarded because the per-key cap was reached.
    pub discarded: u64,
}

/// A pool of idle stateless streamlet logic instances.
pub struct StreamletPool {
    idle: Mutex<HashMap<String, Vec<Box<dyn StreamletLogic>>>>,
    /// Maximum idle instances retained per library key.
    max_idle_per_key: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
    discarded: AtomicU64,
    /// When false, the pool always misses — the ablation baseline.
    enabled: bool,
}

impl Default for StreamletPool {
    fn default() -> Self {
        Self::new(64)
    }
}

impl StreamletPool {
    /// A pool retaining at most `max_idle_per_key` idle instances per
    /// library key.
    pub fn new(max_idle_per_key: usize) -> Self {
        StreamletPool {
            idle: Mutex::new(HashMap::new()),
            max_idle_per_key,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            enabled: true,
        }
    }

    /// A pool that never reuses instances (every checkout is a miss) — the
    /// "no pooling" ablation baseline.
    pub fn disabled() -> Self {
        StreamletPool {
            enabled: false,
            ..Self::new(0)
        }
    }

    /// Obtains a logic instance for `library`: pooled if available,
    /// freshly created via `directory` otherwise.
    pub fn checkout(
        &self,
        library: &str,
        directory: &StreamletDirectory,
    ) -> Result<Box<dyn StreamletLogic>, CoreError> {
        if self.enabled {
            if let Some(instance) = self.idle.lock().get_mut(library).and_then(|v| v.pop()) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(instance);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        directory.create(library)
    }

    /// Returns a (stateless) instance to the pool; the instance is
    /// `reset()` first. Stateful instances must not be checked in — that is
    /// the caller's contract, enforced by
    /// [`crate::stream::RunningStream`].
    pub fn checkin(&self, library: &str, mut instance: Box<dyn StreamletLogic>) {
        if !self.enabled {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        instance.reset();
        let mut idle = self.idle.lock();
        let slot = idle.entry(library.to_string()).or_default();
        if slot.len() >= self.max_idle_per_key {
            self.discarded.fetch_add(1, Ordering::Relaxed);
        } else {
            slot.push(instance);
            self.returned.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Idle instances currently held for `library`.
    pub fn idle_count(&self, library: &str) -> usize {
        self.idle.lock().get(library).map_or(0, Vec::len)
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> PoolingStats {
        PoolingStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamlet::StreamletCtx;
    use mobigate_mime::MimeMessage;

    struct Counting {
        processed: u64,
        reset_calls: u64,
    }
    impl StreamletLogic for Counting {
        fn process(&mut self, _: MimeMessage, _: &mut StreamletCtx) -> Result<(), CoreError> {
            self.processed += 1;
            Ok(())
        }
        fn reset(&mut self) {
            self.reset_calls += 1;
            self.processed = 0;
        }
    }

    fn dir() -> StreamletDirectory {
        let d = StreamletDirectory::new();
        d.register("c", "counting", || {
            Box::new(Counting {
                processed: 0,
                reset_calls: 0,
            })
        });
        d
    }

    #[test]
    fn miss_then_hit() {
        let d = dir();
        let p = StreamletPool::new(8);
        let inst = p.checkout("c", &d).unwrap();
        assert_eq!(p.stats().misses, 1);
        p.checkin("c", inst);
        assert_eq!(p.idle_count("c"), 1);
        let _inst2 = p.checkout("c", &d).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(p.idle_count("c"), 0);
    }

    #[test]
    fn checkin_resets_instance() {
        let d = dir();
        let p = StreamletPool::new(8);
        let mut inst = p.checkout("c", &d).unwrap();
        let mut ctx = StreamletCtx::new("t", None);
        inst.process(MimeMessage::text("x"), &mut ctx).unwrap();
        p.checkin("c", inst);
        // The pooled instance was reset; we can't downcast easily, but the
        // returned counter proves the path ran.
        assert_eq!(p.stats().returned, 1);
    }

    #[test]
    fn cap_discards_overflow() {
        let d = dir();
        let p = StreamletPool::new(1);
        let a = p.checkout("c", &d).unwrap();
        let b = p.checkout("c", &d).unwrap();
        p.checkin("c", a);
        p.checkin("c", b);
        assert_eq!(p.idle_count("c"), 1);
        assert_eq!(p.stats().discarded, 1);
    }

    #[test]
    fn disabled_pool_always_misses() {
        let d = dir();
        let p = StreamletPool::disabled();
        let a = p.checkout("c", &d).unwrap();
        p.checkin("c", a);
        assert_eq!(p.idle_count("c"), 0);
        let _b = p.checkout("c", &d).unwrap();
        let s = p.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 2);
        assert_eq!(s.discarded, 1);
    }

    #[test]
    fn unknown_library_propagates_error() {
        let d = StreamletDirectory::new();
        let p = StreamletPool::new(4);
        assert!(p.checkout("ghost", &d).is_err());
    }
}
