//! The session plane — one MCL template, N per-user streams.
//!
//! MobiGATE's premise is a gateway multiplexing *many mobile users*, each
//! with a private streamlet chain keyed by `Content-Session` (§4.4.3:
//! "the system automatically generates a unique session ID for each
//! instance of a stream"; §3.3.4 pooling exists so that per-session cost
//! stays small). The [`SessionManager`] industrializes that: it holds one
//! validated [`StreamTemplate`] (compiled and analyzed exactly once) and
//! stamps out independent sessions from it, each a full `RunningStream`
//! with its own session ID, event identity, and routing-table row in the
//! sharded Coordination Manager.
//!
//! Per-session cost at idle is deliberately tiny: instances come out of
//! the §3.3.4 streamlet pool, fusion (when enabled) collapses the chain
//! into few execution units, and under the worker-pool executor an idle
//! session is just parked tasks — a routing-table row, not threads.
//! Teardown reverses all of it: drain in-flight traffic, detach channels,
//! check stateless logic back into the pool, drop the row.

use crate::coordination::CoordinationManager;
use crate::error::CoreError;
use crate::stream::RunningStream;
use crate::telemetry::TraceKind;
use mobigate_mcl::template::StreamTemplate;
use mobigate_mime::SessionId;
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How long session teardown waits for in-flight messages to clear
/// before tearing down anyway (dropping whatever is still queued).
pub const DEFAULT_DRAIN_TIMEOUT: Duration = Duration::from_secs(5);

/// Stamps out and tears down per-user sessions of one stream template.
pub struct SessionManager {
    template: StreamTemplate,
    coordination: Arc<CoordinationManager>,
    /// Monotonic per-template sequence feeding `StreamTemplate::
    /// session_name` — never reused, so a torn-down session's ID cannot
    /// be resurrected by a later spawn.
    next_seq: AtomicU64,
    /// Sessions this manager spawned and has not torn down. Manager-local
    /// bookkeeping (`teardown_all`, listing); the authoritative routing
    /// rows live sharded in the Coordination Manager.
    roster: Mutex<HashSet<SessionId>>,
}

impl SessionManager {
    /// A manager stamping sessions of `template` into `coordination`.
    pub fn new(template: StreamTemplate, coordination: Arc<CoordinationManager>) -> Self {
        SessionManager {
            template,
            coordination,
            next_seq: AtomicU64::new(0),
            roster: Mutex::new(HashSet::new()),
        }
    }

    /// The underlying template.
    pub fn template(&self) -> &StreamTemplate {
        &self.template
    }

    /// Instantiates one new session: clones the template table under a
    /// fresh `<stream>#<seq>` identity and deploys it. The session ID,
    /// the stream name (= event `evtSource` identity), and the
    /// `Content-Session` header stamped on every message the session
    /// carries are all that same string.
    pub fn spawn(&self) -> Result<Arc<RunningStream>, CoreError> {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let name = self.template.session_name(seq);
        let table = self.template.instantiate(&name);
        let session = SessionId::new(name);
        let stream =
            self.coordination
                .deploy_table(&table, self.template.defs(), session.clone())?;
        if let Some(t) = &self.coordination.deps().telemetry {
            t.trace_event(
                TraceKind::SessionSpawn,
                Some(session.as_str()),
                None,
                format!("template {}", self.template.base_name()),
            );
        }
        // Pre-create the session's admission bucket so its very first
        // burst sees the full configured burst capacity.
        if let Some(ctl) = &self.coordination.deps().admission {
            ctl.register(session.as_str());
        }
        self.roster.lock().insert(session);
        Ok(stream)
    }

    /// Spawns `n` sessions, returning them in spawn order. Fails fast on
    /// the first deployment error (already-spawned sessions stay up).
    pub fn spawn_many(&self, n: usize) -> Result<Vec<Arc<RunningStream>>, CoreError> {
        (0..n).map(|_| self.spawn()).collect()
    }

    /// Looks up a live session (one coordination shard lock).
    pub fn get(&self, session: &SessionId) -> Option<Arc<RunningStream>> {
        self.coordination.stream(session)
    }

    /// Sessions currently alive under this manager (no global order).
    pub fn sessions(&self) -> Vec<SessionId> {
        self.roster.lock().iter().cloned().collect()
    }

    /// Number of live sessions under this manager.
    pub fn session_count(&self) -> usize {
        self.roster.lock().len()
    }

    /// Tears one session down: drains in-flight messages (bounded by
    /// `drain_timeout`), removes the routing-table row, unsubscribes the
    /// stream from its event categories, ends its execution units, and
    /// checks stateless logic back into the §3.3.4 pool. Returns whether
    /// the session existed.
    pub fn teardown_with_timeout(&self, session: &SessionId, drain_timeout: Duration) -> bool {
        if !self.roster.lock().remove(session) {
            return false;
        }
        if let Some(stream) = self.coordination.stream(session) {
            stream.drain(drain_timeout);
        }
        self.trace_teardown(session);
        self.coordination.undeploy(session)
    }

    /// [`Self::teardown_with_timeout`] with [`DEFAULT_DRAIN_TIMEOUT`].
    pub fn teardown(&self, session: &SessionId) -> bool {
        self.teardown_with_timeout(session, DEFAULT_DRAIN_TIMEOUT)
    }

    /// Tears down every live session of this manager; returns how many.
    pub fn teardown_all(&self) -> usize {
        let sessions: Vec<SessionId> = { self.roster.lock().drain().collect() };
        let mut n = 0;
        for session in sessions {
            if let Some(stream) = self.coordination.stream(&session) {
                stream.drain(DEFAULT_DRAIN_TIMEOUT);
            }
            self.trace_teardown(&session);
            if self.coordination.undeploy(&session) {
                n += 1;
            }
        }
        n
    }

    fn trace_teardown(&self, session: &SessionId) {
        // Drop the session's admission bucket with the session, so the
        // controller's map tracks only live sessions.
        if let Some(ctl) = &self.coordination.deps().admission {
            ctl.forget(session.as_str());
        }
        if let Some(t) = &self.coordination.deps().telemetry {
            t.trace_event(
                TraceKind::SessionTeardown,
                Some(session.as_str()),
                None,
                format!("template {}", self.template.base_name()),
            );
        }
    }
}

impl Drop for SessionManager {
    fn drop(&mut self) {
        // Sessions are this manager's resources: dropping it reclaims
        // them (instances back to the pool, rows out of the coordination
        // shards) instead of leaving orphans only `shutdown_all` can find.
        self.teardown_all();
    }
}
