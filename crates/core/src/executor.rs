//! Execution backends for the Streamlet Execution Plane.
//!
//! The paper schedules streamlets with one OS thread each (`Streamlet
//! extends Thread`, §6.1) — faithful, but a 100-streamlet chain (the
//! Figure 7-6 workload) then burns 100 threads. This module decouples the
//! logical streamlet graph from physical execution resources, in the
//! spirit of component-pipeline platforms that separate composition from
//! scheduling:
//!
//! * [`ThreadPerStreamlet`] — the paper-faithful default; each started
//!   streamlet gets a dedicated blocking worker thread.
//! * [`WorkerPool`] — `M` workers drive a run-queue of runnable streamlet
//!   tasks. A task becomes runnable when its [`crate::queue::Notifier`]
//!   fires (queue post, pause/activate/end, control command) via a wake
//!   hook installed at launch, so idle streamlets cost no threads and a
//!   100-redirector chain runs on a handful of workers.
//!
//! Both back ends drive the same [`StreamletTask`] state machine, so
//! lifecycle semantics (Created → Running → Paused → Ended,
//! suspend-during-reconfiguration per Figure 7-4, control commands
//! serviced between messages) are identical under either executor.
//!
//! Pool-driven tasks post outputs without blocking: a full async queue
//! parks the message in the task's pending-output buffer (with its Figure
//! 6-9 drop deadline) rather than parking the worker, so chains deeper
//! than the worker count keep making progress under backpressure.
//!
//! Caveat: sync (rendezvous) channels still block their producer inside
//! `post` — rendezvous semantics cannot be buffered — so chains of sync
//! channels deeper than the worker count can stall; thread-per-streamlet
//! has no such limit, which is one reason it remains the default.

use crate::streamlet::{PumpOutcome, StreamletTask};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;

/// Maximum messages a worker pumps from one task before requeueing it, so
/// a busy streamlet cannot starve its siblings.
const PUMP_BATCH: usize = 64;

/// A scheduling back end for started streamlets.
pub trait Executor: Send + Sync {
    /// Adopts a started task and drives it until it ends.
    fn launch(&self, task: Arc<StreamletTask>);

    /// Diagnostic name of the back end.
    fn name(&self) -> &'static str;

    /// Stops the back end's threads. Streamlets must have ended first;
    /// the default (thread-per-streamlet) has nothing to stop because each
    /// thread exits with its streamlet.
    fn shutdown(&self) {}
}

/// The paper's scheduling model: one dedicated OS thread per streamlet.
#[derive(Debug, Default)]
pub struct ThreadPerStreamlet;

impl ThreadPerStreamlet {
    /// A fresh thread-per-streamlet executor.
    pub fn new() -> Arc<Self> {
        Arc::new(Self)
    }
}

impl Executor for ThreadPerStreamlet {
    fn launch(&self, task: Arc<StreamletTask>) {
        let name = format!("streamlet-{}", task.name());
        std::thread::Builder::new()
            .name(name)
            .spawn(move || task.run_blocking())
            .expect("spawn streamlet thread");
    }

    fn name(&self) -> &'static str {
        "thread-per-streamlet"
    }
}

/// The process-wide default executor (thread-per-streamlet), used by
/// handles constructed without an explicit executor.
pub fn default_executor() -> Arc<dyn Executor> {
    static DEFAULT: OnceLock<Arc<ThreadPerStreamlet>> = OnceLock::new();
    DEFAULT.get_or_init(ThreadPerStreamlet::new).clone()
}

/// Run-queue shared by a [`WorkerPool`]'s workers and the wake hooks.
struct PoolState {
    run_queue: Mutex<VecDeque<Arc<StreamletTask>>>,
    cv: Condvar,
    stop: AtomicBool,
}

impl PoolState {
    /// Enqueues `task` unless it is already queued or being pumped. Paired
    /// with the re-check in [`worker_loop`], this never loses a wakeup:
    /// a notify during a pump is either absorbed by that pump or caught by
    /// the post-pump `has_pending_work` check.
    fn schedule(&self, task: Arc<StreamletTask>) {
        if task.try_mark_scheduled() {
            self.run_queue.lock().push_back(task);
            self.cv.notify_one();
        }
    }
}

/// `M` worker threads multiplexing any number of streamlets.
pub struct WorkerPool {
    state: Arc<PoolState>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawns a pool of `workers` threads (clamped to at least 1).
    pub fn new(workers: usize) -> Arc<Self> {
        let state = Arc::new(PoolState {
            run_queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let handles = (0..workers.max(1))
            .map(|i| {
                let state = state.clone();
                std::thread::Builder::new()
                    .name(format!("mobigate-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn pool worker")
            })
            .collect();
        Arc::new(WorkerPool {
            state,
            workers: Mutex::new(handles),
        })
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.lock().len()
    }
}

fn worker_loop(state: &Arc<PoolState>) {
    loop {
        let task = {
            let mut queue = state.run_queue.lock();
            loop {
                if state.stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(task) = queue.pop_front() {
                    break task;
                }
                state.cv.wait(&mut queue);
            }
        };
        let outcome = task.pump(PUMP_BATCH);
        // Clear the membership mark *before* re-checking for work: a
        // notify that raced with the pump either found the mark set (and
        // is caught by the check below) or lands after and re-queues.
        task.clear_scheduled();
        // Re-arm the coalescing notifier next, for the same reason: a post
        // arriving after this line fires the wake hook again; one arriving
        // before it is seen by `has_pending_work` below.
        task.disarm_wake();
        match outcome {
            PumpOutcome::Ended => task.clear_wake_hook(),
            PumpOutcome::More => state.schedule(task),
            PumpOutcome::Idle => {
                if task.has_pending_work() {
                    state.schedule(task);
                }
            }
        }
    }
}

impl Executor for WorkerPool {
    fn launch(&self, task: Arc<StreamletTask>) {
        // Workers must never park inside a downstream post: with more
        // streamlets than workers, a backed-up chain would otherwise eat
        // every worker and stall until the drop deadline. Full async
        // queues instead park the message in the task's pending-output
        // buffer and the worker moves on.
        task.set_nonblocking_outputs(true);
        let state = Arc::downgrade(&self.state);
        let weak = Arc::downgrade(&task);
        // Weak in both directions: the hook lives inside the task's
        // notifier, so a strong task ref here would leak the task, and a
        // strong pool ref would keep dead pools alive.
        task.set_wake_hook(move || {
            if let (Some(state), Some(task)) = (state.upgrade(), weak.upgrade()) {
                state.schedule(task);
            }
        });
        self.state.schedule(task);
    }

    fn name(&self) -> &'static str {
        "worker-pool"
    }

    fn shutdown(&self) {
        self.state.stop.store(true, Ordering::Release);
        self.state.cv.notify_all();
        for handle in self.workers.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::pool::{MessagePool, PayloadMode};
    use crate::queue::{FetchResult, MessageQueue, PostResult, QueueConfig};
    use crate::streamlet::{
        Emitter, LifecycleState, RouteOpts, StreamletCtx, StreamletHandle, StreamletLogic,
    };
    use mobigate_mime::MimeMessage;
    use std::time::Duration;

    /// Uppercases text bodies, emits on `po`; `rate` is a control knob.
    struct Upper {
        rate: u32,
    }

    impl StreamletLogic for Upper {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let text = String::from_utf8_lossy(&msg.body).to_uppercase();
            let mut out = msg.clone();
            out.set_body(text.into_bytes());
            ctx.emit("po", out);
            Ok(())
        }

        fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
            if key == "rate" {
                self.rate = value.parse().map_err(|_| CoreError::NotFound {
                    kind: "control value",
                    name: value.into(),
                })?;
                Ok(())
            } else {
                Err(CoreError::NotFound {
                    kind: "control parameter",
                    name: key.into(),
                })
            }
        }
    }

    /// Forwards its input unchanged (the Figure 7-6 redirector).
    struct Redirect;

    impl StreamletLogic for Redirect {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            ctx.emit("po", msg);
            Ok(())
        }
    }

    fn queue(name: &str, pool: &Arc<MessagePool>) -> Arc<MessageQueue> {
        MessageQueue::new(
            QueueConfig {
                name: name.into(),
                ..Default::default()
            },
            pool.clone(),
        )
    }

    fn upper_pipeline(
        executor: Arc<dyn Executor>,
    ) -> (
        Arc<MessagePool>,
        Arc<MessageQueue>,
        Arc<MessageQueue>,
        Arc<StreamletHandle>,
    ) {
        let pool = Arc::new(MessagePool::new());
        let qin = queue("cin", &pool);
        let qout = queue("cout", &pool);
        let h = StreamletHandle::with_executor(
            "u1",
            "upper",
            false,
            Box::new(Upper { rate: 1 }),
            pool.clone(),
            PayloadMode::Reference,
            None,
            RouteOpts::default(),
            executor,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        (pool, qin, qout, h)
    }

    fn post_text(pool: &MessagePool, q: &MessageQueue, s: &str) {
        let msg = MimeMessage::text(s);
        assert_eq!(
            q.post(pool.wrap(msg, PayloadMode::Reference, 1)),
            PostResult::Posted
        );
    }

    fn fetch_text(pool: &MessagePool, q: &MessageQueue) -> String {
        match q.fetch(Duration::from_secs(5)) {
            FetchResult::Msg(p) => {
                String::from_utf8_lossy(&pool.resolve(p).unwrap().body).into_owned()
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    /// Full lifecycle — process, pause (Fig 7-4 step 2), control command,
    /// activate, end with logic parked — identical under both back ends.
    fn lifecycle_suite(executor: Arc<dyn Executor>) {
        let (pool, qin, qout, h) = upper_pipeline(executor);
        h.start().unwrap();
        post_text(&pool, &qin, "a");
        assert_eq!(fetch_text(&pool, &qout), "A");

        h.pause_and_wait(Duration::from_secs(5)).unwrap();
        assert_eq!(h.state(), LifecycleState::Paused);
        post_text(&pool, &qin, "b");
        assert!(matches!(
            qout.fetch(Duration::from_millis(50)),
            FetchResult::Empty
        ));

        h.activate().unwrap();
        assert_eq!(fetch_text(&pool, &qout), "B");

        h.set_parameter("rate", "9", Duration::from_secs(5))
            .unwrap();
        assert!(h
            .set_parameter("nope", "1", Duration::from_secs(5))
            .is_err());

        h.end();
        assert_eq!(h.state(), LifecycleState::Ended);
        assert!(h.take_logic().is_some(), "logic parked back after end");
    }

    #[test]
    fn lifecycle_under_thread_per_streamlet() {
        lifecycle_suite(ThreadPerStreamlet::new());
    }

    #[test]
    fn lifecycle_under_worker_pool() {
        lifecycle_suite(WorkerPool::new(2));
    }

    #[test]
    fn worker_pool_single_worker_suffices() {
        // Even one worker must drive a streamlet through its lifecycle:
        // the run-queue serializes, nothing blocks inside a pump.
        lifecycle_suite(WorkerPool::new(1));
    }

    /// The Figure 7-6 stress shape: a chain of 100 redirector streamlets,
    /// multiplexed onto far fewer worker threads than streamlets.
    #[test]
    fn hundred_redirector_chain_on_eight_workers() {
        const CHAIN: usize = 100;
        let executor = WorkerPool::new(8);
        assert_eq!(executor.worker_count(), 8);
        let pool = Arc::new(MessagePool::new());
        let queues: Vec<_> = (0..=CHAIN)
            .map(|i| queue(&format!("c{i}"), &pool))
            .collect();
        let handles: Vec<_> = (0..CHAIN)
            .map(|i| {
                let h = StreamletHandle::with_executor(
                    format!("redir-{i}"),
                    "redirect",
                    false,
                    Box::new(Redirect),
                    pool.clone(),
                    PayloadMode::Reference,
                    None,
                    RouteOpts::default(),
                    executor.clone(),
                );
                h.attach_in("pi", &queues[i]);
                h.attach_out("po", &queues[i + 1]);
                h.start().unwrap();
                h
            })
            .collect();

        for i in 0..25 {
            post_text(&pool, &queues[0], &format!("m{i}"));
        }
        for i in 0..25 {
            assert_eq!(fetch_text(&pool, &queues[CHAIN]), format!("m{i}"));
        }
        for h in &handles {
            h.end();
        }
        assert_eq!(pool.stats().resident, 0, "chain drained the pool");
        executor.shutdown();
    }

    #[test]
    fn worker_pool_shutdown_is_idempotent() {
        let pool = WorkerPool::new(2);
        pool.shutdown();
        pool.shutdown();
        assert_eq!(pool.worker_count(), 0, "workers joined");
    }

    #[test]
    fn executor_names() {
        assert_eq!(ThreadPerStreamlet::new().name(), "thread-per-streamlet");
        assert_eq!(WorkerPool::new(1).name(), "worker-pool");
        assert_eq!(default_executor().name(), "thread-per-streamlet");
    }
}
