//! Streamlet supervision: restart policies, poison-message quarantine, and
//! the dead-letter queue.
//!
//! The paper's event-driven reconfiguration (`when (EVENT) { … }`, §4.2.3)
//! presumes the coordination plane can *detect* execution-plane failure.
//! This module closes that loop: when a `StreamletLogic` panics, the
//! executor marks the instance [`Faulted`](crate::streamlet::LifecycleState)
//! (see `streamlet.rs`) and notifies the [`Supervisor`], which
//!
//! 1. rebuilds the logic object from the directory factory and restarts the
//!    instance in place — channel bindings live on the handle, so they are
//!    preserved across the restart;
//! 2. applies a per-streamlet [`RestartPolicy`] (restart budget over a
//!    sliding window, exponential backoff with jitter) and gives up into
//!    `Quarantined` once the budget is exhausted;
//! 3. evicts a *poison message* — one that faults the same instance
//!    `poison_threshold` times in a row — into a bounded [`DeadLetterQueue`]
//!    so the restarted instance makes progress without it;
//! 4. raises every fault as a categorized `STREAMLET_FAULT` context event
//!    through the Event Manager, so MCL `when (STREAMLET_FAULT)` rules can
//!    degrade or bypass the failing streamlet.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::error::CoreError;
use crate::events::{ContextEvent, EventManager};
use crate::overload::{BreakerConfig, CircuitBreaker, FaultVerdict, ProbeOutcome};
use crate::streamlet::{StreamletHandle, StreamletLogic};
use crate::telemetry::{Telemetry, TraceKind};
use mobigate_mcl::events::EventKind;
use mobigate_mime::MimeMessage;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Why a streamlet instance faulted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultCause {
    /// `StreamletLogic::process` panicked (payload text).
    Panic(String),
    /// `StreamletLogic::control` panicked (payload text).
    ControlPanic(String),
}

impl FaultCause {
    /// The panic payload text.
    pub fn message(&self) -> &str {
        match self {
            FaultCause::Panic(m) | FaultCause::ControlPanic(m) => m,
        }
    }

    /// A stable category label for reporting.
    pub fn label(&self) -> &'static str {
        match self {
            FaultCause::Panic(_) => "panic",
            FaultCause::ControlPanic(_) => "control-panic",
        }
    }
}

impl fmt::Display for FaultCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label(), self.message())
    }
}

/// Details attached to a `STREAMLET_FAULT` context event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInfo {
    /// Faulted instance name.
    pub instance: String,
    /// Why it faulted.
    pub cause: FaultCause,
    /// Supervisor restarts performed on this instance so far (before this
    /// fault is handled).
    pub restarts: u32,
}

/// Per-streamlet restart policy.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Faults tolerated inside `window` before the instance is quarantined.
    pub max_restarts: u32,
    /// Sliding window over which faults are counted.
    pub window: Duration,
    /// First restart delay; doubles per consecutive fault in the window.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_max: Duration,
    /// Randomize each delay into `[50%, 150%]` of the exponential value so
    /// a burst of correlated faults does not restart in lock-step.
    pub jitter: bool,
    /// A message that faults the same instance this many times is evicted
    /// to the dead-letter queue instead of being redelivered again.
    pub poison_threshold: u32,
}

impl Default for RestartPolicy {
    fn default() -> Self {
        RestartPolicy {
            max_restarts: 5,
            window: Duration::from_secs(10),
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(200),
            jitter: true,
            poison_threshold: 3,
        }
    }
}

impl RestartPolicy {
    /// The delay before restart number `consecutive` (1-based count of
    /// faults currently inside the window). `jitter_bits` supplies the
    /// randomness; only the low 16 bits are used.
    pub fn backoff_for(&self, consecutive: u32, jitter_bits: u64) -> Duration {
        let exp = consecutive.saturating_sub(1).min(16);
        let raw = self
            .backoff_base
            .saturating_mul(1u32 << exp)
            .min(self.backoff_max);
        if !self.jitter {
            return raw;
        }
        // Scale into [0.5, 1.5) of the exponential value.
        let frac = (jitter_bits & 0xFFFF) as f64 / 65536.0;
        raw.mul_f64(0.5 + frac)
    }
}

/// A poison message evicted from a faulting instance.
#[derive(Debug, Clone)]
pub struct DeadLetter {
    /// Instance the message repeatedly faulted.
    pub instance: String,
    /// Stream the instance belongs to, when known.
    pub stream: Option<String>,
    /// The message itself (body is `Bytes`, so this clone is cheap).
    pub message: MimeMessage,
    /// How many faults the message caused before eviction.
    pub faults: u32,
    /// The final fault's cause.
    pub cause: FaultCause,
}

/// Counters exposed by [`DeadLetterQueue::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadLetterStats {
    /// Messages ever enqueued.
    pub enqueued: u64,
    /// Messages dropped because the queue was full (oldest-first).
    pub discarded: u64,
}

/// A bounded FIFO of poison messages, inspectable through the server API
/// ([`crate::server::MobiGate::dead_letters`]).
pub struct DeadLetterQueue {
    slots: Mutex<VecDeque<DeadLetter>>,
    capacity: usize,
    enqueued: AtomicU64,
    discarded: AtomicU64,
}

impl DeadLetterQueue {
    /// An empty queue holding at most `capacity` letters; when full, the
    /// oldest letter is discarded to admit the new one.
    pub fn new(capacity: usize) -> Self {
        DeadLetterQueue {
            slots: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            enqueued: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
        }
    }

    /// Admits a letter, evicting the oldest if at capacity.
    pub fn push(&self, letter: DeadLetter) {
        let mut slots = self.slots.lock();
        if slots.len() >= self.capacity {
            slots.pop_front();
            self.discarded.fetch_add(1, Ordering::Relaxed);
        }
        slots.push_back(letter);
        self.enqueued.fetch_add(1, Ordering::Relaxed);
    }

    /// Letters currently held.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// Whether the queue holds no letters.
    pub fn is_empty(&self) -> bool {
        self.slots.lock().is_empty()
    }

    /// Removes and returns the oldest letter.
    pub fn take(&self) -> Option<DeadLetter> {
        self.slots.lock().pop_front()
    }

    /// Clones the current contents oldest-first (inspection API).
    pub fn snapshot(&self) -> Vec<DeadLetter> {
        self.slots.lock().iter().cloned().collect()
    }

    /// Removes and returns everything, oldest-first.
    pub fn drain(&self) -> Vec<DeadLetter> {
        self.slots.lock().drain(..).collect()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> DeadLetterStats {
        DeadLetterStats {
            enqueued: self.enqueued.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
        }
    }
}

/// Counters exposed by [`Supervisor::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Faults handled.
    pub faults: u64,
    /// Successful restarts performed.
    pub restarts: u64,
    /// Instances given up on.
    pub quarantined: u64,
    /// Poison messages evicted to the dead-letter queue.
    pub dead_lettered: u64,
    /// Circuit-breaker trips (Closed→Open and HalfOpen→Open transitions).
    /// A tripped fault is parked, not restarted, and does not charge the
    /// restart budget.
    pub breaker_trips: u64,
}

type RebuildFn = Box<dyn Fn() -> Result<Box<dyn StreamletLogic>, CoreError> + Send + Sync>;

struct Entry {
    handle: Weak<StreamletHandle>,
    rebuild: RebuildFn,
    policy: RestartPolicy,
    stream: Option<String>,
    /// Fault timestamps inside the policy window (pruned on each fault).
    fault_times: Vec<Instant>,
    restarts: u32,
    /// Per-instance circuit breaker, present when the supervisor was built
    /// with a [`BreakerConfig`]. Consulted before the restart budget: a
    /// tripped instance is parked and probed, never quarantined.
    breaker: Option<Arc<CircuitBreaker>>,
}

enum JobKind {
    Fault(FaultCause),
    Restart,
    /// Cooldown elapsed on an open breaker: move to half-open and restart
    /// the instance so live traffic can prove it healthy.
    Probe,
    /// The half-open probe window elapsed: close the breaker if the probe
    /// stayed quiet.
    ProbeVerdict,
}

struct Job {
    key: u64,
    due: Instant,
    kind: JobKind,
}

struct WorkQueue {
    jobs: Mutex<VecDeque<Job>>,
    cv: Condvar,
    stop: AtomicBool,
}

/// The supervision engine: one background worker that restarts faulted
/// instances, quarantines repeat offenders, dead-letters poison messages,
/// and raises `STREAMLET_FAULT` events.
pub struct Supervisor {
    entries: Mutex<HashMap<u64, Entry>>,
    next_key: AtomicU64,
    work: Arc<WorkQueue>,
    worker: Mutex<Option<JoinHandle<()>>>,
    events: Arc<EventManager>,
    dead_letters: Arc<DeadLetterQueue>,
    default_policy: RestartPolicy,
    faults: AtomicU64,
    restarts: AtomicU64,
    quarantined: AtomicU64,
    breaker_trips: AtomicU64,
    /// Circuit-breaker template applied to every supervised instance;
    /// `None` reproduces the plain restart-budget behaviour.
    breaker_cfg: Option<BreakerConfig>,
    /// xorshift state for backoff jitter.
    seed: AtomicU64,
    /// Observability plane; when installed, every supervision decision
    /// (fault, restart, refusal, quarantine, dead-letter) leaves a trace.
    telemetry: Mutex<Option<Arc<Telemetry>>>,
}

impl Supervisor {
    /// Default seed of the restart-backoff jitter PRNG (the 64-bit golden
    /// ratio, as in the original hardcoded constant).
    pub const DEFAULT_JITTER_SEED: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Spawns the supervision worker. Faults are reported through `events`;
    /// poison messages land in a dead-letter queue of `dead_letter_capacity`.
    pub fn new(
        events: Arc<EventManager>,
        default_policy: RestartPolicy,
        dead_letter_capacity: usize,
    ) -> Arc<Self> {
        Self::with_options(
            events,
            default_policy,
            dead_letter_capacity,
            Self::DEFAULT_JITTER_SEED,
            None,
        )
    }

    /// [`Self::new`] with an explicit jitter seed (bit-for-bit reproducible
    /// restart schedules) and an optional circuit-breaker template applied
    /// to every supervised instance. A zero seed is replaced by the default
    /// (xorshift64 has a fixed point at zero).
    pub fn with_options(
        events: Arc<EventManager>,
        default_policy: RestartPolicy,
        dead_letter_capacity: usize,
        jitter_seed: u64,
        breaker_cfg: Option<BreakerConfig>,
    ) -> Arc<Self> {
        let seed = if jitter_seed == 0 {
            Self::DEFAULT_JITTER_SEED
        } else {
            jitter_seed
        };
        let sup = Arc::new(Supervisor {
            entries: Mutex::new(HashMap::new()),
            next_key: AtomicU64::new(1),
            work: Arc::new(WorkQueue {
                jobs: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                stop: AtomicBool::new(false),
            }),
            worker: Mutex::new(None),
            events,
            dead_letters: Arc::new(DeadLetterQueue::new(dead_letter_capacity)),
            default_policy,
            faults: AtomicU64::new(0),
            restarts: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            breaker_trips: AtomicU64::new(0),
            breaker_cfg,
            seed: AtomicU64::new(seed),
            telemetry: Mutex::new(None),
        });
        let weak = Arc::downgrade(&sup);
        // Failing to spawn the supervisor thread is unrecoverable: the
        // server would silently never restart anything.
        #[allow(clippy::expect_used)]
        let handle = std::thread::Builder::new()
            .name("mobigate-supervisor".into())
            .spawn(move || Supervisor::worker_loop(weak))
            .expect("spawn supervisor thread");
        *sup.worker.lock() = Some(handle);
        sup
    }

    /// Attaches the observability plane: subsequent supervision decisions
    /// append lifecycle trace events.
    pub fn set_telemetry(&self, telemetry: Arc<Telemetry>) {
        *self.telemetry.lock() = Some(telemetry);
    }

    fn trace(&self, kind: TraceKind, stream: Option<&str>, instance: &str, detail: String) {
        if let Some(t) = &*self.telemetry.lock() {
            t.trace_event(kind, stream, Some(instance), detail);
        }
    }

    /// Places `handle` under supervision with the supervisor-wide default
    /// policy. `rebuild` must produce a fresh logic object (normally
    /// `directory.create(key)` — deliberately *not* the instance pool, so a
    /// poisoned object is never recycled). `stream` scopes fault events to
    /// the owning stream when known.
    pub fn supervise(
        self: &Arc<Self>,
        handle: &Arc<StreamletHandle>,
        rebuild: impl Fn() -> Result<Box<dyn StreamletLogic>, CoreError> + Send + Sync + 'static,
        stream: Option<String>,
    ) {
        let policy = self.default_policy.clone();
        self.supervise_with_policy(handle, rebuild, policy, stream);
    }

    /// [`Self::supervise`] with an explicit per-streamlet policy.
    pub fn supervise_with_policy(
        self: &Arc<Self>,
        handle: &Arc<StreamletHandle>,
        rebuild: impl Fn() -> Result<Box<dyn StreamletLogic>, CoreError> + Send + Sync + 'static,
        policy: RestartPolicy,
        stream: Option<String>,
    ) {
        let key = self.next_key.fetch_add(1, Ordering::Relaxed);
        self.entries.lock().insert(
            key,
            Entry {
                handle: Arc::downgrade(handle),
                rebuild: Box::new(rebuild),
                policy,
                stream,
                fault_times: Vec::new(),
                restarts: 0,
                breaker: self
                    .breaker_cfg
                    .as_ref()
                    .map(|c| Arc::new(CircuitBreaker::new(c.clone()))),
            },
        );
        let work = Arc::clone(&self.work);
        handle.set_fault_hook(move |cause| {
            let mut jobs = work.jobs.lock();
            jobs.push_back(Job {
                key,
                due: Instant::now(),
                kind: JobKind::Fault(cause),
            });
            work.cv.notify_all();
        });
    }

    /// The dead-letter queue (server inspection API).
    pub fn dead_letters(&self) -> &Arc<DeadLetterQueue> {
        &self.dead_letters
    }

    /// The supervisor-wide default policy.
    pub fn default_policy(&self) -> &RestartPolicy {
        &self.default_policy
    }

    /// Lifetime counters.
    pub fn stats(&self) -> SupervisorStats {
        SupervisorStats {
            faults: self.faults.load(Ordering::Relaxed),
            restarts: self.restarts.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            dead_lettered: self.dead_letters.stats().enqueued,
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
        }
    }

    /// The circuit breaker guarding `instance`, when one exists (tests and
    /// benches inspect breaker state through this).
    pub fn breaker_of(&self, instance: &str) -> Option<Arc<CircuitBreaker>> {
        let entries = self.entries.lock();
        entries.values().find_map(|e| {
            let h = e.handle.upgrade()?;
            (h.name() == instance).then(|| e.breaker.clone()).flatten()
        })
    }

    /// Stops the worker thread. Idempotent; also run on drop.
    pub fn shutdown(&self) {
        self.work.stop.store(true, Ordering::Release);
        self.work.cv.notify_all();
        if let Some(h) = self.worker.lock().take() {
            // The worker loop upgrades its Weak while handling a job, so the
            // last Arc can die *on the worker thread* (Drop → shutdown here).
            // Joining ourselves would EDEADLK; the stop flag is already set,
            // so detaching lets the loop exit on its own right after this.
            if std::thread::current().id() != h.thread().id() {
                let _ = h.join();
            }
        }
    }

    /// Advances and returns the backoff-jitter PRNG. Public so tests can
    /// assert that a fixed `jitter_seed` reproduces the exact sequence.
    pub fn next_jitter(&self) -> u64 {
        // xorshift64: cheap, deterministic, good enough to de-correlate
        // restart delays (no external RNG dependency in core).
        let mut x = self.seed.load(Ordering::Relaxed);
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.seed.store(x, Ordering::Relaxed);
        x
    }

    fn worker_loop(sup: Weak<Supervisor>) {
        loop {
            // Hold only the job queue lock while waiting so supervised
            // streamlets (and Drop) never block on the worker.
            let job = {
                let Some(sup) = sup.upgrade() else { return };
                let work = Arc::clone(&sup.work);
                drop(sup);
                let mut jobs = work.jobs.lock();
                loop {
                    if work.stop.load(Ordering::Acquire) {
                        return;
                    }
                    let now = Instant::now();
                    let due_idx = jobs
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, j)| j.due)
                        .map(|(i, j)| (i, j.due));
                    match due_idx {
                        Some((i, due)) if due <= now => {
                            break jobs.remove(i);
                        }
                        Some((_, due)) => {
                            work.cv.wait_for(&mut jobs, due - now);
                        }
                        None => {
                            work.cv.wait(&mut jobs);
                        }
                    }
                }
            };
            let Some(job) = job else { continue };
            let Some(sup) = sup.upgrade() else { return };
            match job.kind {
                JobKind::Fault(cause) => sup.handle_fault(job.key, cause),
                JobKind::Restart => sup.handle_restart(job.key),
                JobKind::Probe => sup.handle_probe(job.key),
                JobKind::ProbeVerdict => sup.handle_probe_verdict(job.key),
            }
        }
    }

    /// Decides what to do about one fault: quarantine, dead-letter the
    /// poison message, schedule a backoff restart — and always raise a
    /// `STREAMLET_FAULT` event.
    fn handle_fault(&self, key: u64, cause: FaultCause) {
        self.faults.fetch_add(1, Ordering::Relaxed);
        let event = {
            let mut entries = self.entries.lock();
            let Some(entry) = entries.get_mut(&key) else {
                return;
            };
            let Some(handle) = entry.handle.upgrade() else {
                entries.remove(&key);
                return;
            };
            let now = Instant::now();

            let info = FaultInfo {
                instance: handle.name().to_string(),
                cause: cause.clone(),
                restarts: entry.restarts,
            };
            let event = ContextEvent::fault(info, entry.stream.clone());
            self.trace(
                TraceKind::Fault,
                entry.stream.as_deref(),
                handle.name(),
                format!("{cause}"),
            );

            // Circuit breaker first: a fault past the trip threshold parks
            // the instance behind an open breaker instead of charging the
            // restart budget — the STREAMLET_FAULT event below still fires,
            // so `when (STREAMLET_FAULT)` bypass rules route around it,
            // and a probe is scheduled for after the cooldown.
            match entry.breaker.as_ref().map(|b| (b.on_fault(), b.cooldown())) {
                Some((FaultVerdict::Tripped | FaultVerdict::Reopened, cooldown)) => {
                    self.breaker_trips.fetch_add(1, Ordering::Relaxed);
                    self.trace(
                        TraceKind::BreakerTrip,
                        entry.stream.as_deref(),
                        handle.name(),
                        format!("fault rate over threshold; probe in {cooldown:?}"),
                    );
                    let breaker_event =
                        scoped_event(EventKind::BreakerOpen, entry.stream.as_deref());
                    let mut jobs = self.work.jobs.lock();
                    jobs.push_back(Job {
                        key,
                        due: now + cooldown,
                        kind: JobKind::Probe,
                    });
                    drop(jobs);
                    self.work.cv.notify_all();
                    // Raise events only after releasing the registry lock
                    // (delivery can run `when` rules that supervise new
                    // instances).
                    drop(entries);
                    self.events.multicast(&event);
                    self.events.multicast(&breaker_event);
                    return;
                }
                Some((FaultVerdict::AlreadyOpen, _)) => {
                    // Cooldown in progress and a probe already queued: the
                    // fault is swallowed (no budget charge, no restart).
                    drop(entries);
                    self.events.multicast(&event);
                    return;
                }
                Some((FaultVerdict::Restart, _)) | None => {}
            }

            let window = entry.policy.window;
            entry
                .fault_times
                .retain(|t| now.duration_since(*t) < window);
            entry.fault_times.push(now);

            if entry.fault_times.len() as u32 > entry.policy.max_restarts {
                // Budget exhausted: give up on this instance. The handle
                // stays attached so a `when (STREAMLET_FAULT)` rule can
                // still bypass or remove it.
                let _ = handle.quarantine();
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.trace(
                    TraceKind::Quarantine,
                    entry.stream.as_deref(),
                    handle.name(),
                    format!("restart budget exhausted ({})", entry.policy.max_restarts),
                );
            } else {
                // Poison eviction: the pending message already faulted this
                // instance too many times — park it in the dead-letter
                // queue so the restart makes progress without it. With
                // batching, `redelivery_faults`/`take_redelivery` address
                // the *head* of the redelivery queue: a faulted batch is
                // replayed one message at a time, so only the message that
                // keeps faulting accumulates a count and gets evicted;
                // innocent batch-mates are redelivered normally.
                if handle.redelivery_faults() >= entry.policy.poison_threshold {
                    if let Some((message, faults)) = handle.take_redelivery() {
                        self.trace(
                            TraceKind::DeadLetter,
                            entry.stream.as_deref(),
                            handle.name(),
                            format!("poison message after {faults} faults"),
                        );
                        self.dead_letters.push(DeadLetter {
                            instance: handle.name().to_string(),
                            stream: entry.stream.clone(),
                            message,
                            faults,
                            cause: cause.clone(),
                        });
                    }
                }
                let delay = entry
                    .policy
                    .backoff_for(entry.fault_times.len() as u32, self.next_jitter());
                let mut jobs = self.work.jobs.lock();
                jobs.push_back(Job {
                    key,
                    due: now + delay,
                    kind: JobKind::Restart,
                });
                self.work.cv.notify_all();
            }
            event
        };
        // Raise the event only after releasing the registry lock: delivery
        // can run `when` rules that create (and hence supervise) instances.
        self.events.multicast(&event);
    }

    /// Rebuilds the logic from the factory and restarts the instance.
    fn handle_restart(&self, key: u64) {
        let mut entries = self.entries.lock();
        let Some(entry) = entries.get_mut(&key) else {
            return;
        };
        let Some(handle) = entry.handle.upgrade() else {
            entries.remove(&key);
            return;
        };
        match (entry.rebuild)() {
            Ok(logic) => {
                // `restart_with` refuses unless the instance is still
                // Faulted — losing the race with `end()` or a second
                // restart is benign.
                if handle.restart_with(logic).is_ok() {
                    entry.restarts += 1;
                    self.restarts.fetch_add(1, Ordering::Relaxed);
                    self.trace(
                        TraceKind::Restart,
                        entry.stream.as_deref(),
                        handle.name(),
                        format!("restart #{}", entry.restarts),
                    );
                } else {
                    self.trace(
                        TraceKind::RestartRefused,
                        entry.stream.as_deref(),
                        handle.name(),
                        format!("instance is {:?}, not Faulted", handle.state()),
                    );
                }
            }
            Err(_) => {
                // The factory itself failed; nothing to install.
                let _ = handle.quarantine();
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                self.trace(
                    TraceKind::Quarantine,
                    entry.stream.as_deref(),
                    handle.name(),
                    "rebuild factory failed".to_string(),
                );
            }
        }
    }

    /// Cooldown elapsed on an open breaker: move it to half-open, restart
    /// the parked instance so the probe sees live traffic, and schedule the
    /// verdict check for one more cooldown later.
    fn handle_probe(&self, key: u64) {
        let event = {
            let mut entries = self.entries.lock();
            let Some(entry) = entries.get_mut(&key) else {
                return;
            };
            let Some(handle) = entry.handle.upgrade() else {
                entries.remove(&key);
                return;
            };
            let Some(breaker) = entry.breaker.clone() else {
                return;
            };
            if !breaker.begin_probe() {
                // Closed meanwhile, or a concurrent probe won the race.
                return;
            }
            self.trace(
                TraceKind::BreakerHalfOpen,
                entry.stream.as_deref(),
                handle.name(),
                "probing with live traffic".to_string(),
            );
            match (entry.rebuild)() {
                Ok(logic) => {
                    if handle.restart_with(logic).is_ok() {
                        entry.restarts += 1;
                        self.restarts.fetch_add(1, Ordering::Relaxed);
                    }
                    let mut jobs = self.work.jobs.lock();
                    jobs.push_back(Job {
                        key,
                        due: Instant::now() + breaker.cooldown(),
                        kind: JobKind::ProbeVerdict,
                    });
                    drop(jobs);
                    self.work.cv.notify_all();
                    scoped_event(EventKind::BreakerHalfOpen, entry.stream.as_deref())
                }
                Err(_) => {
                    // The factory failed; the instance cannot prove itself.
                    // Give up exactly as a failed restart does.
                    let _ = handle.quarantine();
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    self.trace(
                        TraceKind::Quarantine,
                        entry.stream.as_deref(),
                        handle.name(),
                        "rebuild factory failed during probe".to_string(),
                    );
                    return;
                }
            }
        };
        self.events.multicast(&event);
    }

    /// The half-open probe window elapsed: close the breaker if the probe
    /// stayed quiet; keep waiting if more quiet windows are required. A
    /// fault during the window reopened the breaker (and scheduled the
    /// next probe), so there is nothing to do here in that case.
    fn handle_probe_verdict(&self, key: u64) {
        let event = {
            let mut entries = self.entries.lock();
            let Some(entry) = entries.get_mut(&key) else {
                return;
            };
            let Some(breaker) = entry.breaker.clone() else {
                return;
            };
            match breaker.probe_quiet() {
                ProbeOutcome::Closed => {
                    // Close resets the supervisor's restart-budget window
                    // too: the instance proved healthy, so past faults no
                    // longer count against it.
                    entry.fault_times.clear();
                    let instance = entry
                        .handle
                        .upgrade()
                        .map(|h| h.name().to_string())
                        .unwrap_or_default();
                    self.trace(
                        TraceKind::BreakerClose,
                        entry.stream.as_deref(),
                        &instance,
                        "probe quiet; breaker closed".to_string(),
                    );
                    scoped_event(EventKind::BreakerClose, entry.stream.as_deref())
                }
                ProbeOutcome::StillHalfOpen => {
                    let mut jobs = self.work.jobs.lock();
                    jobs.push_back(Job {
                        key,
                        due: Instant::now() + breaker.cooldown(),
                        kind: JobKind::ProbeVerdict,
                    });
                    drop(jobs);
                    self.work.cv.notify_all();
                    return;
                }
                ProbeOutcome::NotHalfOpen => return,
            }
        };
        self.events.multicast(&event);
    }
}

/// A breaker lifecycle event, targeted at the owning stream when known.
fn scoped_event(kind: EventKind, stream: Option<&str>) -> ContextEvent {
    match stream {
        Some(s) => ContextEvent::targeted(kind, s),
        None => ContextEvent::broadcast(kind),
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn dead_letter_queue_is_bounded_fifo() {
        let q = DeadLetterQueue::new(2);
        for i in 0..3 {
            q.push(DeadLetter {
                instance: format!("s{i}"),
                stream: None,
                message: MimeMessage::text(format!("m{i}")),
                faults: 1,
                cause: FaultCause::Panic("boom".into()),
            });
        }
        assert_eq!(q.len(), 2);
        assert_eq!(q.stats().enqueued, 3);
        assert_eq!(q.stats().discarded, 1);
        // Oldest (s0) was discarded; s1 is now at the front.
        assert_eq!(q.take().unwrap().instance, "s1");
        assert_eq!(q.drain().len(), 1);
        assert!(q.is_empty());
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RestartPolicy {
            backoff_base: Duration::from_millis(2),
            backoff_max: Duration::from_millis(16),
            jitter: false,
            ..Default::default()
        };
        assert_eq!(p.backoff_for(1, 0), Duration::from_millis(2));
        assert_eq!(p.backoff_for(2, 0), Duration::from_millis(4));
        assert_eq!(p.backoff_for(3, 0), Duration::from_millis(8));
        assert_eq!(p.backoff_for(4, 0), Duration::from_millis(16));
        assert_eq!(p.backoff_for(10, 0), Duration::from_millis(16), "capped");
    }

    #[test]
    fn jittered_backoff_stays_in_band() {
        let p = RestartPolicy {
            backoff_base: Duration::from_millis(8),
            backoff_max: Duration::from_millis(8),
            jitter: true,
            ..Default::default()
        };
        for bits in [0u64, 0x7FFF, 0xFFFF, 0xDEAD_BEEF] {
            let d = p.backoff_for(1, bits);
            assert!(d >= Duration::from_millis(4), "{d:?} below 50%");
            assert!(d < Duration::from_millis(12), "{d:?} above 150%");
        }
    }

    #[test]
    fn fault_cause_reports_label_and_message() {
        let c = FaultCause::Panic("index out of bounds".into());
        assert_eq!(c.label(), "panic");
        assert!(c.to_string().contains("index out of bounds"));
        let c = FaultCause::ControlPanic("bad knob".into());
        assert_eq!(c.label(), "control-panic");
    }
}
