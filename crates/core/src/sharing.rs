//! Streamlet sharing (§4.4.3).
//!
//! "The complete decoupling of coordination from computation makes it
//! possible to share instances of streamlets between different streams.
//! The question is, how can messages be distributed to their corresponding
//! streams when the messages are generated on the output ports of the
//! shared instances? … Before executing a coordination stream, the system
//! automatically generates a unique session ID for each instance of a
//! stream. Subsequently, all messages belonging to this stream are labeled
//! with the assigned session ID in their Content-Session field. By this
//! means, the system can easily differentiate messages from different
//! streams."
//!
//! [`SharedStreamlet`] hosts **one** logic instance on **one** worker
//! thread and serves any number of streams concurrently: every stream
//! posts session-labeled messages into the shared inbox; emissions are
//! routed back to the subscribing stream's queue by their `Content-Session`
//! label. Stateless logic is required — per-stream state inside a shared
//! instance would leak across sessions, which is exactly why §3.3.4
//! restricts pooling/sharing to stateless streamlets.

use crate::error::CoreError;
use crate::pool::{MessagePool, Payload, PayloadMode};
use crate::queue::{FetchResult, MessageQueue, Notifier, QueueConfig};
use crate::streamlet::{StreamletCtx, StreamletLogic};
use mobigate_mime::{MimeMessage, SessionId};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Counters of a shared instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharingStats {
    /// Messages processed.
    pub processed: u64,
    /// Emissions routed to a subscribed stream.
    pub routed: u64,
    /// Emissions whose session had no subscriber (dropped).
    pub unrouted: u64,
}

struct SharedInner {
    /// Session → the queue carrying this stream's share of the output.
    routes: RwLock<HashMap<SessionId, Arc<MessageQueue>>>,
    inbox: Arc<MessageQueue>,
    pool: Arc<MessagePool>,
    mode: PayloadMode,
    stop: AtomicBool,
    notifier: Arc<Notifier>,
    processed: AtomicU64,
    routed: AtomicU64,
    unrouted: AtomicU64,
    name: String,
}

/// A single streamlet instance shared by multiple streams.
pub struct SharedStreamlet {
    inner: Arc<SharedInner>,
    worker: Mutex<Option<JoinHandle<()>>>,
    logic_slot: Arc<Mutex<Option<Box<dyn StreamletLogic>>>>,
}

impl SharedStreamlet {
    /// Hosts `logic` as a shared instance. The inbox is an async queue with
    /// a generous buffer; subscribers attach their own output queues.
    pub fn spawn(
        name: impl Into<String>,
        logic: Box<dyn StreamletLogic>,
        pool: Arc<MessagePool>,
        mode: PayloadMode,
    ) -> Arc<Self> {
        let name = name.into();
        let inbox = MessageQueue::new(
            QueueConfig {
                name: format!("__shared/{name}"),
                capacity_bytes: 16 << 20,
                full_wait: Duration::from_millis(200),
                ..Default::default()
            },
            pool.clone(),
        );
        let notifier = Arc::new(Notifier::new());
        inbox.add_listener(notifier.clone());
        let inner = Arc::new(SharedInner {
            routes: RwLock::new(HashMap::new()),
            inbox,
            pool,
            mode,
            stop: AtomicBool::new(false),
            notifier,
            processed: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            unrouted: AtomicU64::new(0),
            name,
        });
        let logic_slot = Arc::new(Mutex::new(None));
        let worker = {
            let inner = inner.clone();
            let slot = logic_slot.clone();
            std::thread::Builder::new()
                .name(format!("shared-{}", inner.name))
                .spawn(move || shared_worker(inner, slot, logic))
                .expect("spawn shared streamlet")
        };
        Arc::new(SharedStreamlet {
            inner,
            worker: Mutex::new(Some(worker)),
            logic_slot,
        })
    }

    /// Subscribes a stream: its emissions will arrive on `out`.
    pub fn subscribe(&self, session: &SessionId, out: Arc<MessageQueue>) {
        out.attach_source();
        self.inner.routes.write().insert(session.clone(), out);
    }

    /// Unsubscribes a stream; its pending emissions may still be in `out`.
    pub fn unsubscribe(&self, session: &SessionId) {
        if let Some(q) = self.inner.routes.write().remove(session) {
            let _ = q.detach_source();
        }
    }

    /// Number of subscribed streams.
    pub fn subscriber_count(&self) -> usize {
        self.inner.routes.read().len()
    }

    /// Posts a message on behalf of a stream. The message is labeled with
    /// the session (§4.4.3) before entering the shared inbox.
    pub fn post(&self, session: &SessionId, mut msg: MimeMessage) -> Result<(), CoreError> {
        if !self.inner.routes.read().contains_key(session) {
            return Err(CoreError::NotFound {
                kind: "shared-streamlet subscription",
                name: session.as_str().to_string(),
            });
        }
        msg.set_session(session);
        let payload = self.inner.pool.wrap(msg, self.inner.mode, 1);
        self.inner.inbox.post(payload);
        Ok(())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SharingStats {
        SharingStats {
            processed: self.inner.processed.load(Ordering::Relaxed),
            routed: self.inner.routed.load(Ordering::Relaxed),
            unrouted: self.inner.unrouted.load(Ordering::Relaxed),
        }
    }

    /// Stops the worker and returns the logic instance (for pooling).
    pub fn shutdown(&self) -> Option<Box<dyn StreamletLogic>> {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.notifier.notify();
        if let Some(h) = self.worker.lock().take() {
            let _ = h.join();
        }
        self.logic_slot.lock().take()
    }
}

fn shared_worker(
    inner: Arc<SharedInner>,
    slot: Arc<Mutex<Option<Box<dyn StreamletLogic>>>>,
    mut logic: Box<dyn StreamletLogic>,
) {
    logic.on_activate();
    while !inner.stop.load(Ordering::Acquire) {
        let snapshot = inner.notifier.snapshot();
        let payload = match inner.inbox.try_fetch() {
            FetchResult::Msg(p) => p,
            _ => {
                inner
                    .notifier
                    .wait_unless(snapshot, Duration::from_millis(5));
                continue;
            }
        };
        let Some(msg) = inner.pool.resolve(payload) else {
            continue;
        };
        let session = msg.session();
        let mut ctx = StreamletCtx::new(&inner.name, session.as_ref());
        if logic.process(msg, &mut ctx).is_err() {
            continue;
        }
        inner.processed.fetch_add(1, Ordering::Relaxed);

        // Route emissions by Content-Session (§4.4.3). A streamlet must not
        // relabel sessions, but be defensive: prefer the emission's own
        // label, falling back to the input's.
        for (_port, out_msg) in ctx.into_outputs() {
            let label = out_msg.session().or_else(|| session.clone());
            let target = label.and_then(|s| inner.routes.read().get(&s).cloned());
            match target {
                Some(q) => {
                    let payload = match inner.mode {
                        PayloadMode::Reference => Payload::Ref(inner.pool.insert(out_msg, 1)),
                        // The emission is owned and about to drop — moving
                        // it (refcounted body and all) into the payload is
                        // observationally identical to a deep copy, minus
                        // the memcpy.
                        PayloadMode::Value => inner.pool.wrap_owned(out_msg),
                    };
                    // Count before posting: a consumer that sees the
                    // message must also see it counted.
                    inner.routed.fetch_add(1, Ordering::Relaxed);
                    q.post(payload);
                }
                None => {
                    inner.unrouted.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    logic.on_end();
    *slot.lock() = Some(logic);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamlet::Emitter;

    /// Uppercases text; stateless, so sharable.
    struct Upper;
    impl StreamletLogic for Upper {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let up = String::from_utf8_lossy(&msg.body).to_uppercase();
            let mut out = msg.clone();
            out.set_body(up.into_bytes());
            ctx.emit("po", out);
            Ok(())
        }
    }

    fn setup() -> (Arc<MessagePool>, Arc<SharedStreamlet>) {
        let pool = Arc::new(MessagePool::new());
        let shared = SharedStreamlet::spawn(
            "upper",
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
        );
        (pool, shared)
    }

    fn out_queue(pool: &Arc<MessagePool>) -> Arc<MessageQueue> {
        MessageQueue::new(QueueConfig::default(), pool.clone())
    }

    fn fetch_text(pool: &MessagePool, q: &MessageQueue) -> String {
        match q.fetch(Duration::from_secs(5)) {
            FetchResult::Msg(p) => {
                String::from_utf8_lossy(&pool.resolve(p).unwrap().body).into_owned()
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn routes_outputs_back_to_the_owning_stream() {
        let (pool, shared) = setup();
        let (sa, sb) = (SessionId::new("stream-a"), SessionId::new("stream-b"));
        let (qa, qb) = (out_queue(&pool), out_queue(&pool));
        shared.subscribe(&sa, qa.clone());
        shared.subscribe(&sb, qb.clone());
        assert_eq!(shared.subscriber_count(), 2);

        shared.post(&sa, MimeMessage::text("from a")).unwrap();
        shared.post(&sb, MimeMessage::text("from b")).unwrap();
        shared.post(&sa, MimeMessage::text("again a")).unwrap();

        assert_eq!(fetch_text(&pool, &qa), "FROM A");
        assert_eq!(fetch_text(&pool, &qa), "AGAIN A");
        assert_eq!(fetch_text(&pool, &qb), "FROM B");
        // No cross-talk.
        assert!(matches!(qb.try_fetch(), FetchResult::Empty));
        assert!(matches!(qa.try_fetch(), FetchResult::Empty));
        let stats = shared.stats();
        assert_eq!(stats.processed, 3);
        assert_eq!(stats.routed, 3);
        assert_eq!(stats.unrouted, 0);
        shared.shutdown();
    }

    #[test]
    fn outputs_carry_the_session_label() {
        let (pool, shared) = setup();
        let s = SessionId::new("labeled");
        let q = out_queue(&pool);
        shared.subscribe(&s, q.clone());
        shared.post(&s, MimeMessage::text("x")).unwrap();
        if let FetchResult::Msg(p) = q.fetch(Duration::from_secs(5)) {
            let m = pool.resolve(p).unwrap();
            assert_eq!(m.session().unwrap().as_str(), "labeled");
        } else {
            panic!("no output");
        }
        shared.shutdown();
    }

    #[test]
    fn post_requires_subscription() {
        let (_pool, shared) = setup();
        let err = shared.post(&SessionId::new("ghost"), MimeMessage::text("x"));
        assert!(err.is_err());
        shared.shutdown();
    }

    #[test]
    fn unsubscribed_sessions_outputs_drop() {
        let (pool, shared) = setup();
        let s = SessionId::new("leaver");
        let q = out_queue(&pool);
        shared.subscribe(&s, q.clone());
        shared.post(&s, MimeMessage::text("first")).unwrap();
        assert_eq!(fetch_text(&pool, &q), "FIRST");
        shared.unsubscribe(&s);
        // A message already in the inbox when the stream leaves: routed
        // nowhere, counted as unrouted — never delivered to someone else.
        assert!(shared.post(&s, MimeMessage::text("late")).is_err());
        assert_eq!(shared.subscriber_count(), 0);
        shared.shutdown();
    }

    #[test]
    fn concurrent_streams_share_one_instance() {
        let (pool, shared) = setup();
        let sessions: Vec<SessionId> = (0..8).map(|i| SessionId::new(format!("s{i}"))).collect();
        let queues: Vec<Arc<MessageQueue>> = (0..8).map(|_| out_queue(&pool)).collect();
        for (s, q) in sessions.iter().zip(&queues) {
            shared.subscribe(s, q.clone());
        }
        let mut posters = Vec::new();
        for (i, s) in sessions.iter().cloned().enumerate() {
            let shared = shared.clone();
            posters.push(std::thread::spawn(move || {
                for k in 0..25 {
                    shared
                        .post(&s, MimeMessage::text(format!("m{i}-{k}")))
                        .unwrap();
                }
            }));
        }
        for p in posters {
            p.join().unwrap();
        }
        // Each stream gets exactly its 25 messages, in its own order.
        for (i, q) in queues.iter().enumerate() {
            for k in 0..25 {
                let text = fetch_text(&pool, q);
                assert_eq!(text, format!("M{i}-{k}").to_uppercase());
            }
        }
        assert_eq!(shared.stats().processed, 200);
        shared.shutdown();
    }

    #[test]
    fn shutdown_returns_logic() {
        let (_pool, shared) = setup();
        assert!(shared.shutdown().is_some());
        // Second shutdown is a no-op.
        assert!(shared.shutdown().is_none());
    }

    /// Byte-accounting conservation for the value-mode emission hop: a
    /// pass-through emission is *moved* into the payload (`wrap_owned`),
    /// so each delivered body is the very allocation the logic emitted —
    /// no copy — and the bytes delivered equal the bytes emitted exactly.
    #[test]
    fn value_mode_emission_moves_body_without_copy() {
        use mobigate_mime::Bytes;

        struct Recorder {
            seen: Arc<Mutex<Vec<Bytes>>>,
        }
        impl StreamletLogic for Recorder {
            fn process(
                &mut self,
                msg: MimeMessage,
                ctx: &mut StreamletCtx,
            ) -> Result<(), CoreError> {
                self.seen.lock().push(msg.body.clone());
                ctx.emit("po", msg);
                Ok(())
            }
        }

        let pool = Arc::new(MessagePool::new());
        let seen = Arc::new(Mutex::new(Vec::new()));
        let shared = SharedStreamlet::spawn(
            "record",
            Box::new(Recorder { seen: seen.clone() }),
            pool.clone(),
            PayloadMode::Value,
        );
        let s = SessionId::new("conserve");
        let q = out_queue(&pool);
        shared.subscribe(&s, q.clone());

        // Bodies past the inline threshold, so sharing is observable.
        let mut sent_bytes = 0usize;
        for i in 0..4u8 {
            let mut m = MimeMessage::text("");
            m.set_body(vec![i; 96 + i as usize]);
            sent_bytes += m.body.len();
            shared.post(&s, m).unwrap();
        }

        let mut delivered_bytes = 0usize;
        for i in 0..4usize {
            let m = match q.fetch(Duration::from_secs(5)) {
                FetchResult::Msg(p) => pool.resolve(p).unwrap(),
                other => panic!("expected message, got {other:?}"),
            };
            delivered_bytes += m.body.len();
            let recorded = &seen.lock()[i];
            assert!(
                m.body.shares_allocation_with(recorded),
                "delivered body {i} must be the emitted allocation, not a copy"
            );
        }
        assert_eq!(delivered_bytes, sent_bytes, "bytes conserved end to end");
        shared.shutdown();
    }
}
