//! `RunningStream` — a deployed stream application (§6.3).
//!
//! A running stream materializes a compiled [`ConfigTable`]: channels become
//! [`MessageQueue`]s, instance rows become [`StreamletHandle`]s (logic
//! checked out of the [`StreamletPool`]), connections become port bindings.
//! The struct then owns the three responsibilities of the paper's `Stream`
//! base class: initializing connection setup, reconfiguration in response
//! to events (`onEvent`), and the composition primitives (`new_streamlet`,
//! `connect`, `insert`, `remove`, `replace`).
//!
//! Reconfiguration follows Figure 7-4 exactly and is instrumented to report
//! the Equation 7-1 components: `T = Σ sᵢ (suspensions) + n·c (channel
//! operations) + Σ aᵢ (activations)`.
//!
//! Streamlet removal observes the Figure 6-8 message-loss-avoidance
//! prerequisites: the input queues must be empty, the streamlet must not be
//! processing, and produced messages must have been handed downstream.

// Hot-path modules must surface failures as `CoreError`s, never abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use crate::directory::StreamletDirectory;
use crate::error::CoreError;
use crate::events::{ContextEvent, EventSubscriber};
use crate::executor::Executor;
use crate::fusion::{FusedLogic, FusedMember, FusedShared};
use crate::overload::{AdmissionController, OverloadConfig};
use crate::pool::{MessagePool, PayloadMode};
use crate::pooling::StreamletPool;
use crate::queue::{FetchResult, MessageQueue, Notifier, QueueConfig};
use crate::streamlet::{LifecycleState, RouteOpts, StreamletHandle, StreamletLogic};
use crate::telemetry::{QueueProbe, Telemetry, TraceKind};
use mobigate_mcl::config::{
    ChannelRow, ConfigTable, ConnectionRow, ReconfigAction, StreamletSpec, WhenRule,
};
use mobigate_mcl::events::{EventCategory, EventKind};
use mobigate_mcl::fusion::{FusedRun, FusionPlan};
use mobigate_mime::{MimeMessage, SessionId};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Hot-path batching knobs, plumbed from `ServerConfig` down to every
/// channel and streamlet instance a stream deploys.
#[derive(Debug, Clone, Copy)]
pub struct BatchConfig {
    /// Maximum messages a streamlet drains per wake (1 = the paper's
    /// per-message cadence; `process_batch` only engages above 1).
    pub batch_max: usize,
    /// Enables the lock-free SPSC ring fast path on 1:1 async channels.
    pub spsc: bool,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            batch_max: 16,
            spsc: true,
        }
    }
}

/// Shared services a stream deploys against.
#[derive(Clone)]
pub struct StreamDeps {
    /// Central message store.
    pub msg_pool: Arc<MessagePool>,
    /// Streamlet implementation registry.
    pub directory: Arc<StreamletDirectory>,
    /// Stateless-instance pool.
    pub streamlet_pool: Arc<StreamletPool>,
    /// Reference vs. value payload passing (Figure 7-3).
    pub mode: PayloadMode,
    /// Runtime type-check options (§4.1).
    pub route_opts: RouteOpts,
    /// Execution back end scheduling the streamlets.
    pub executor: Arc<dyn Executor>,
    /// Optional fault supervisor; when present every created instance is
    /// registered for panic recovery and restart.
    pub supervisor: Option<Arc<crate::supervisor::Supervisor>>,
    /// Hot-path batching knobs applied to every channel and instance.
    pub batching: BatchConfig,
    /// Chain fusion: collapse maximal runs of fusable streamlets into
    /// single execution units at deploy time (see `fusion.rs` in this crate
    /// and in `mobigate-mcl`); fission re-expands them on demand.
    pub fusion: bool,
    /// The observability plane, when enabled. `None` keeps every
    /// instrumented hot path at a single branch.
    pub telemetry: Option<Arc<Telemetry>>,
    /// Overload-protection knobs (admission control, priority shedding,
    /// circuit breakers). The default is fully disabled, which keeps every
    /// guarded hot path at a single branch.
    pub overload: OverloadConfig,
    /// Gateway-wide admission controller, present when
    /// `overload.admission_on()`. Shared across streams so the global
    /// token bucket means what it says.
    pub admission: Option<Arc<AdmissionController>>,
    /// The memory plane's recycled-slab buffer pool, when enabled.
    /// `post_wire` parses ingress bodies straight into pooled slabs that
    /// return automatically when the last body reference drops.
    pub buf_pool: Option<Arc<crate::membuf::BufferPool>>,
}

/// Equation 7-1 instrumentation of one reconfiguration:
/// `T = Σ sᵢ + n·c + Σ aᵢ`.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReconfigStats {
    /// Number of streamlet suspensions (`k` in Σ sᵢ).
    pub suspensions: usize,
    /// Time spent suspending.
    pub suspension_time: Duration,
    /// Channel operations: creations, deletions, attaches, detaches (`n`).
    pub channel_ops: usize,
    /// Time spent on channel operations.
    pub channel_time: Duration,
    /// Number of streamlet activations.
    pub activations: usize,
    /// Time spent activating.
    pub activation_time: Duration,
    /// Streamlet instance creations (insert/new actions).
    pub instance_creations: usize,
    /// Wall-clock total of the whole reconfiguration.
    pub total: Duration,
    /// Actions that failed (and were skipped).
    pub errors: usize,
}

impl ReconfigStats {
    fn absorb(&mut self, other: ReconfigStats) {
        self.suspensions += other.suspensions;
        self.suspension_time += other.suspension_time;
        self.channel_ops += other.channel_ops;
        self.channel_time += other.channel_time;
        self.activations += other.activations;
        self.activation_time += other.activation_time;
        self.instance_creations += other.instance_creations;
        self.errors += other.errors;
    }
}

/// Aggregate stream counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamStats {
    /// Messages injected at the stream's exported inputs.
    pub injected: u64,
    /// Messages delivered at the stream's exported outputs.
    pub delivered: u64,
    /// Reconfigurations executed.
    pub reconfigurations: u64,
    /// Body bytes currently buffered in the stream's channels (interior
    /// channels + ingress + egress).
    pub queued_bytes: u64,
    /// Body bytes held in instance overflow buffers (outputs a full
    /// downstream queue refused, waiting in `pending_out`).
    pub pending_out_bytes: u64,
}

impl StreamStats {
    /// Total bytes of in-flight message memory attributable to the stream.
    pub fn resident_bytes(&self) -> u64 {
        self.queued_bytes + self.pending_out_bytes
    }
}

struct Inner {
    instances: HashMap<String, Arc<StreamletHandle>>,
    channels: HashMap<String, Arc<MessageQueue>>,
    connections: Vec<ConnectionRow>,
    /// Lazily created instances declared inside `when` blocks: name → def.
    lazy: HashMap<String, String>,
    when_rules: Vec<WhenRule>,
    reconf_chan_counter: usize,
    shutdown: bool,
    /// Live fused units: unit instance name → fission bookkeeping.
    fused: HashMap<String, FusedInfo>,
    /// Member instance name → owning fused unit name.
    fused_members: HashMap<String, String>,
}

/// Everything the stream must remember about one fused unit to be able to
/// fission it back into discrete streamlets with real channels.
struct FusedInfo {
    /// Shared member roster; the member logic objects live here while the
    /// run is fused.
    shared: Arc<FusedShared>,
    /// The collapsed interior channels, pipeline order (`[i]` joined member
    /// `i` to member `i + 1`).
    interior_channels: Vec<ChannelRow>,
    /// The connection rows those channels carried, same order.
    interior_connections: Vec<ConnectionRow>,
}

/// A deployed, running stream application.
pub struct RunningStream {
    name: String,
    session: SessionId,
    deps: StreamDeps,
    defs: BTreeMap<String, StreamletSpec>,
    inner: Mutex<Inner>,
    /// Exported input alias → ingress channel (alias is the inner
    /// `instance.port`).
    ingress: Vec<(String, Arc<MessageQueue>)>,
    /// Single egress channel every exported output feeds.
    egress: Arc<MessageQueue>,
    egress_notifier: Arc<Notifier>,
    injected: AtomicU64,
    delivered: AtomicU64,
    reconfigurations: AtomicU64,
    last_reconfig: Mutex<Option<ReconfigStats>>,
    /// Telemetry recording handle (session-keyed), cloned into every
    /// channel this stream creates — including reconfiguration- and
    /// fission-created ones, so instrumentation survives topology changes.
    probe: Option<QueueProbe>,
}

impl RunningStream {
    /// Materializes a configuration table into a running stream.
    ///
    /// The paper's setup sequence: create channels, locate streamlet
    /// classes, allocate instances (§3.3.3), bind ports per the
    /// configuration table, then start every streamlet thread.
    pub fn deploy(
        table: &ConfigTable,
        defs: &BTreeMap<String, StreamletSpec>,
        deps: StreamDeps,
        session: SessionId,
    ) -> Result<Arc<Self>, CoreError> {
        // Chain fusion (empty plan when the knob is off): member instances
        // and their interior channels are skipped below, and each run is
        // materialized as one fused execution unit instead. Rule 4 of the
        // plan (logic opt-in) is answered by probing an instance out of the
        // pool/directory and asking `StreamletLogic::fusable`.
        let plan = if deps.fusion {
            let probe = |spec: &StreamletSpec| {
                let key = deps.directory.resolve_key(&spec.library, &spec.name);
                match deps.streamlet_pool.checkout(key, &deps.directory) {
                    Ok(logic) => {
                        let fusable = logic.fusable();
                        deps.streamlet_pool.checkin(key, logic);
                        fusable
                    }
                    Err(_) => false,
                }
            };
            mobigate_mcl::fusion::plan(table, defs, &deps.route_opts.registry, &probe)
        } else {
            FusionPlan::default()
        };
        let interior: HashSet<&str> = plan
            .runs
            .iter()
            .flat_map(|r| r.interior_channels.iter().map(String::as_str))
            .collect();
        let is_member: HashSet<&str> = plan
            .runs
            .iter()
            .flat_map(|r| r.members.iter().map(String::as_str))
            .collect();

        // One session-keyed telemetry probe is shared by every channel and
        // handle of this stream; `None` when the observability plane is off.
        let tprobe = deps
            .telemetry
            .as_ref()
            .map(|t| t.probe_for(session.as_str()));

        // Priority-aware shedding needs selective removal, which the SPSC
        // ring cannot do (FIFO pop only): with shedding enabled the
        // channels stay on the mutex queue so `shed_oldest` can pick
        // lowest-priority victims instead of whatever is oldest in the ring.
        let spsc = deps.batching.spsc && !deps.overload.shed_on();

        let mut channels: HashMap<String, Arc<MessageQueue>> = HashMap::new();
        for row in &table.channels {
            if interior.contains(row.name.as_str()) {
                continue;
            }
            let mut cfg = QueueConfig::from_spec(&row.name, &row.spec);
            cfg.spsc = spsc;
            channels.insert(
                row.name.clone(),
                MessageQueue::with_probe(cfg, deps.msg_pool.clone(), tprobe.clone()),
            );
        }

        // Ingress/egress channels for the stream's exported ports.
        let mut ingress = Vec::new();
        for (inst, port, ty) in &table.exported_inputs {
            let cfg = QueueConfig {
                name: format!("__ingress/{inst}.{port}"),
                capacity_bytes: 8 << 20,
                full_wait: Duration::from_millis(500),
                ty: ty.clone(),
                spsc,
                ..Default::default()
            };
            ingress.push((
                format!("{inst}.{port}"),
                MessageQueue::with_probe(cfg, deps.msg_pool.clone(), tprobe.clone()),
            ));
        }
        let egress = MessageQueue::with_probe(
            QueueConfig {
                name: "__egress".into(),
                capacity_bytes: 8 << 20,
                full_wait: Duration::from_millis(500),
                spsc,
                ..Default::default()
            },
            deps.msg_pool.clone(),
            tprobe.clone(),
        );
        let egress_notifier = Arc::new(Notifier::new());
        egress.add_listener(egress_notifier.clone());

        // Create the initial streamlet instances (members of fused runs are
        // created inside their unit below).
        let mut instances: HashMap<String, Arc<StreamletHandle>> = HashMap::new();
        let mut lazy = HashMap::new();
        for row in &table.streamlets {
            if !row.initial {
                lazy.insert(row.name.clone(), row.def.clone());
                continue;
            }
            if is_member.contains(row.name.as_str()) {
                continue;
            }
            let handle = create_instance(&row.name, &row.def, defs, &deps, &session, &table.name)?;
            instances.insert(row.name.clone(), handle);
        }

        // Materialize each fused run as one execution unit. Members stay
        // addressable through `alias` for the wiring below and through
        // `fused_members` afterwards (set_parameter routing, fission).
        let mut fused: HashMap<String, FusedInfo> = HashMap::new();
        let mut fused_members: HashMap<String, String> = HashMap::new();
        let mut alias: HashMap<String, Arc<StreamletHandle>> = HashMap::new();
        for run in &plan.runs {
            let (unit, handle, info) =
                build_fused_unit(run, table, defs, &deps, &session, &table.name)?;
            for m in &run.members {
                fused_members.insert(m.clone(), unit.clone());
                alias.insert(m.clone(), handle.clone());
            }
            fused.insert(unit.clone(), info);
            instances.insert(unit, handle);
        }
        let resolve = |name: &str| -> Option<Arc<StreamletHandle>> {
            instances.get(name).or_else(|| alias.get(name)).cloned()
        };

        // Bind ports per the connection rows (interior rows of fused runs
        // have no physical channel; member endpoints resolve to their unit).
        for c in &table.connections {
            if interior.contains(c.channel.as_str()) {
                continue;
            }
            let q = channels
                .get(&c.channel)
                .ok_or_else(|| CoreError::NotFound {
                    kind: "channel",
                    name: c.channel.clone(),
                })?;
            let from = resolve(&c.from.0).ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: c.from.0.clone(),
            })?;
            let to = resolve(&c.to.0).ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: c.to.0.clone(),
            })?;
            from.attach_out(&c.from.1, q);
            to.attach_in(&c.to.1, q);
        }

        // Bind exported ports to ingress/egress.
        for ((inst, port, _), (_, q)) in table.exported_inputs.iter().zip(&ingress) {
            let h = resolve(inst).ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: inst.clone(),
            })?;
            h.attach_in(port, q);
        }
        for (inst, port, _) in &table.exported_outputs {
            let h = resolve(inst).ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: inst.clone(),
            })?;
            h.attach_out(port, &egress);
        }
        // Start every worker.
        for h in instances.values() {
            h.start()?;
        }

        if let Some(t) = &deps.telemetry {
            t.trace_event(
                TraceKind::Deploy,
                Some(session.as_str()),
                None,
                format!(
                    "stream {} ({} instances, {} fused)",
                    table.name,
                    instances.len(),
                    fused.len()
                ),
            );
        }

        Ok(Arc::new(RunningStream {
            name: table.name.clone(),
            session,
            deps,
            defs: defs.clone(),
            inner: Mutex::new(Inner {
                instances,
                channels,
                // Interior rows of fused runs have no live channel; they are
                // remembered in `fused` and resurface on fission.
                connections: table
                    .connections
                    .iter()
                    .filter(|c| !interior.contains(c.channel.as_str()))
                    .cloned()
                    .collect(),
                lazy,
                when_rules: table.when_rules.clone(),
                reconf_chan_counter: 0,
                shutdown: false,
                fused,
                fused_members,
            }),
            ingress,
            egress,
            egress_notifier,
            injected: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            reconfigurations: AtomicU64::new(0),
            last_reconfig: Mutex::new(None),
            probe: tprobe,
        }))
    }

    /// Stream name (the MCL stream identifier).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unique session of this stream instance (§4.4.3).
    pub fn session(&self) -> &SessionId {
        &self.session
    }

    /// Counters snapshot. The byte gauges walk the stream's channels and
    /// instances under the stream lock — control-plane cost, paid by the
    /// caller asking, never by the data path.
    pub fn stats(&self) -> StreamStats {
        let (queued, pending) = {
            let inner = self.inner.lock();
            let mut queued: u64 = inner
                .channels
                .values()
                .map(|q| q.buffered_bytes() as u64)
                .sum();
            queued += self
                .ingress
                .iter()
                .map(|(_, q)| q.buffered_bytes() as u64)
                .sum::<u64>();
            queued += self.egress.buffered_bytes() as u64;
            let pending: u64 = inner
                .instances
                .values()
                .map(|h| h.pending_output_bytes() as u64)
                .sum();
            (queued, pending)
        };
        StreamStats {
            injected: self.injected.load(Ordering::Relaxed),
            delivered: self.delivered.load(Ordering::Relaxed),
            reconfigurations: self.reconfigurations.load(Ordering::Relaxed),
            queued_bytes: queued,
            pending_out_bytes: pending,
        }
    }

    /// Instrumentation of the most recent reconfiguration.
    pub fn last_reconfig(&self) -> Option<ReconfigStats> {
        *self.last_reconfig.lock()
    }

    /// Names of currently live instances.
    pub fn instance_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.lock().instances.keys().cloned().collect();
        names.sort();
        names
    }

    /// The handle of a live instance (for inspection in tests/benches).
    pub fn instance(&self, name: &str) -> Option<Arc<StreamletHandle>> {
        self.inner.lock().instances.get(name).cloned()
    }

    /// Current connection rows.
    pub fn connections(&self) -> Vec<ConnectionRow> {
        self.inner.lock().connections.clone()
    }

    // --- data path ----------------------------------------------------------

    /// Injects a message at the stream's (sole or first) exported input.
    /// The message is stamped with the stream session (§4.4.3).
    pub fn post_input(&self, msg: MimeMessage) -> Result<(), CoreError> {
        let Some((_, q)) = self.ingress.first() else {
            return Err(CoreError::NotFound {
                kind: "exported input",
                name: self.name.clone(),
            });
        };
        self.post_to(q.clone(), msg)
    }

    /// Injects at a named exported input (`instance.port` alias).
    pub fn post_input_to(&self, alias: &str, msg: MimeMessage) -> Result<(), CoreError> {
        let q = self
            .ingress
            .iter()
            .find(|(a, _)| a == alias)
            .map(|(_, q)| q.clone())
            .ok_or_else(|| CoreError::NotFound {
                kind: "exported input",
                name: alias.to_string(),
            })?;
        self.post_to(q, msg)
    }

    fn post_to(&self, q: Arc<MessageQueue>, mut msg: MimeMessage) -> Result<(), CoreError> {
        // Admission control gates ingress *before* the message touches the
        // pool: a rejected post costs one token-bucket probe and one
        // reason-coded counter bump — no allocation, no blocking wait.
        if let Some(ctl) = &self.deps.admission {
            if !ctl.admit(self.session.as_str()) {
                q.charge_admission_rejected(1);
                return Err(CoreError::Overloaded {
                    session: self.session.as_str().to_string(),
                });
            }
        }
        msg.set_session(&self.session);
        if let Some(p) = &self.probe {
            p.on_bytes_in(msg.body.len() as u64);
        }
        let payload = self.deps.msg_pool.wrap(msg, self.deps.mode, 1);
        q.post(payload);
        self.injected.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Injects a wire-format message (headers, blank line, body). The
    /// body is materialized in a recycled buffer-pool slab when the
    /// memory plane is enabled — the slab returns to the pool on its
    /// own once the message is delivered or dropped.
    pub fn post_wire(&self, data: &[u8]) -> Result<(), CoreError> {
        let parsed = match &self.deps.buf_pool {
            Some(pool) => MimeMessage::from_wire_with(data, |b| pool.checkout_bytes(b)),
            None => MimeMessage::from_wire(data),
        };
        let msg = parsed.map_err(|e| CoreError::Malformed {
            message: e.to_string(),
        })?;
        self.post_input(msg)
    }

    /// Takes one adapted message and appends its wire form to `buf`
    /// (egress counterpart of [`RunningStream::post_wire`]: callers
    /// reuse one scratch buffer across deliveries).
    pub fn take_output_wire_into(&self, timeout: Duration, buf: &mut Vec<u8>) -> bool {
        match self.take_output(timeout) {
            Some(msg) => {
                msg.to_wire_into(buf);
                true
            }
            None => false,
        }
    }

    /// Takes one adapted message from the stream's exported outputs,
    /// waiting up to `timeout`.
    pub fn take_output(&self, timeout: Duration) -> Option<MimeMessage> {
        let deadline = Instant::now() + timeout;
        loop {
            let notified = self.egress_notifier.snapshot();
            match self.egress.try_fetch() {
                FetchResult::Msg(p) => {
                    let msg = self.deps.msg_pool.resolve(p)?;
                    self.delivered.fetch_add(1, Ordering::Relaxed);
                    return Some(msg);
                }
                FetchResult::Disconnected => return None,
                FetchResult::Empty => {
                    let now = Instant::now();
                    if now >= deadline {
                        return None;
                    }
                    self.egress_notifier
                        .wait_unless(notified, (deadline - now).min(Duration::from_millis(20)));
                }
            }
        }
    }

    /// Number of exported inputs.
    pub fn ingress_count(&self) -> usize {
        self.ingress.len()
    }

    /// Sets an operation parameter on a live streamlet through its control
    /// interface (§8.2.1 future-work feature: "data ports to communicate
    /// with other streamlets … and control interfaces to receive parameter
    /// setting information from the coordinator").
    pub fn set_parameter(&self, instance: &str, key: &str, value: &str) -> Result<(), CoreError> {
        let (handle, key) = {
            let inner = self.inner.lock();
            if let Some(h) = inner.instances.get(instance) {
                (h.clone(), key.to_string())
            } else if let Some(unit) = inner.fused_members.get(instance) {
                // The instance runs fused: route through the unit's
                // member-addressed control interface (`member.key`).
                let h = inner
                    .instances
                    .get(unit)
                    .cloned()
                    .ok_or_else(|| CoreError::NotFound {
                        kind: "streamlet instance",
                        name: unit.clone(),
                    })?;
                (h, format!("{instance}.{key}"))
            } else {
                return Err(CoreError::NotFound {
                    kind: "streamlet instance",
                    name: instance.to_string(),
                });
            }
        };
        handle.set_parameter(&key, value, Duration::from_secs(2))
    }

    /// One-line-per-component dump of buffered message locations —
    /// channel depths, per-instance pending outputs and lifecycle state —
    /// for diagnosing where in-flight messages sit when a drain stalls.
    pub fn debug_depths(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.lock();
        let mut out = String::new();
        let mut names: Vec<&String> = inner.channels.keys().collect();
        names.sort();
        for name in names {
            let q = &inner.channels[name];
            let stats = q.stats();
            if !q.is_empty() || stats.dropped_total() > 0 {
                let _ = writeln!(
                    out,
                    "channel {name}: len={} spsc={} dropped={}",
                    q.len(),
                    q.spsc_active(),
                    stats.dropped_total()
                );
            }
        }
        let mut names: Vec<&String> = inner.instances.keys().collect();
        names.sort();
        for name in names {
            let h = &inner.instances[name];
            let pending = h.pending_outputs();
            if pending > 0 {
                let _ = writeln!(
                    out,
                    "instance {name}: pending_out={pending} state={:?}",
                    h.state()
                );
            }
        }
        for (alias, q) in &self.ingress {
            if !q.is_empty() {
                let _ = writeln!(out, "ingress {alias}: len={}", q.len());
            }
        }
        if !self.egress.is_empty() {
            let _ = writeln!(out, "egress: len={}", self.egress.len());
        }
        out
    }

    /// Renders the current live topology as Graphviz DOT (initial and
    /// reconfigured instances, channels as edge labels).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let inner = self.inner.lock();
        let mut out = String::new();
        let _ = writeln!(out, "digraph \"{}\" {{", self.name);
        let _ = writeln!(out, "  rankdir=LR;");
        let _ = writeln!(out, "  node [shape=box, style=rounded];");
        let mut names: Vec<&String> = inner.instances.keys().collect();
        names.sort();
        for name in names {
            let h = &inner.instances[name];
            let _ = writeln!(
                out,
                "  \"{}\" [label=\"{}\\n({})\"];",
                name,
                name,
                h.def_name()
            );
        }
        for c in &inner.connections {
            let _ = writeln!(
                out,
                "  \"{}\" -> \"{}\" [label=\"{}\"];",
                c.from.0, c.to.0, c.channel
            );
        }
        out.push('}');
        out
    }

    // --- events --------------------------------------------------------------

    /// The event categories this stream needs subscribed: whatever its
    /// `when` rules react to, plus System Command (every stream obeys
    /// PAUSE/RESUME/END), plus Runtime Fault when fusion is on (fault-
    /// driven fission must observe STREAMLET_FAULT). The Coordination
    /// Manager uses this for symmetric subscribe-on-deploy /
    /// unsubscribe-on-undeploy; `when` rules are fixed at compile time, so
    /// the set never changes over the stream's life.
    pub fn subscribed_categories(&self) -> Vec<EventCategory> {
        let mut categories: Vec<EventCategory> = self
            .inner
            .lock()
            .when_rules
            .iter()
            .map(|r| r.event.category())
            .collect();
        categories.push(EventCategory::SystemCommand);
        if self.deps.fusion {
            categories.push(EventCategory::RuntimeFault);
        }
        if self.deps.overload.shed_on() {
            // Load shedding reacts to CHANNEL_CONGESTED from the metrics
            // bridge even when the script has no load-variation rules.
            categories.push(EventCategory::LoadVariation);
        }
        categories.sort_by_key(|c| c.id());
        categories.dedup();
        categories
    }

    /// Reacts to a context event: System-Command events get their built-in
    /// behaviour (PAUSE/RESUME/END), and any matching `when` rules from the
    /// MCL script run as reconfigurations. Returns the instrumentation when
    /// a reconfiguration ran.
    pub fn handle_event(&self, event: &ContextEvent) -> Option<ReconfigStats> {
        match event.kind {
            EventKind::Pause => {
                self.pause_all();
            }
            EventKind::Resume => {
                self.activate_all();
            }
            EventKind::End => {
                self.shutdown();
            }
            EventKind::StreamletFault => {
                // Fault-driven fission: when supervision has given up on a
                // fused unit, split it so quarantine is confined to the
                // member that actually faulted.
                if let Some(info) = &event.fault {
                    self.fission_quarantined(&info.instance);
                }
            }
            EventKind::ChannelCongested | EventKind::Overload if self.deps.overload.shed_on() => {
                // Load shedding: drop the lowest-priority resident messages
                // so interactive traffic keeps a bounded queue in front of
                // it. Shed drops are reason-coded, never silent.
                self.shed_lowest(self.deps.overload.shed.shed_max);
            }
            _ => {}
        }
        let rules: Vec<WhenRule> = {
            let inner = self.inner.lock();
            inner
                .when_rules
                .iter()
                .filter(|r| r.event == event.kind)
                .cloned()
                .collect()
        };
        if rules.is_empty() {
            return None;
        }
        let actions: Vec<ReconfigAction> = rules.into_iter().flat_map(|r| r.actions).collect();
        Some(self.reconfigure(&actions))
    }

    /// Sheds up to `max_n` resident messages across the stream's channels,
    /// lowest priority class first (see [`crate::overload::PriorityClass`]),
    /// ingress before interior so bulk traffic dies as early as possible.
    /// Returns how many messages were shed; each is charged to the `shed`
    /// drop reason by the queue.
    pub fn shed_lowest(&self, max_n: usize) -> usize {
        if max_n == 0 {
            return 0;
        }
        let mut remaining = max_n;
        let mut shed = 0usize;
        for (_, q) in &self.ingress {
            if remaining == 0 {
                break;
            }
            let n = q.shed_oldest(remaining);
            shed += n;
            remaining -= n;
        }
        if remaining > 0 {
            let channels: Vec<Arc<MessageQueue>> =
                self.inner.lock().channels.values().cloned().collect();
            for q in channels {
                if remaining == 0 {
                    break;
                }
                let n = q.shed_oldest(remaining);
                shed += n;
                remaining -= n;
            }
        }
        if shed > 0 {
            if let Some(p) = &self.probe {
                p.telemetry.trace_event(
                    TraceKind::Shed,
                    Some(&p.key),
                    None,
                    format!("{shed} messages (budget {max_n})"),
                );
            }
        }
        shed
    }

    /// Pauses every live streamlet.
    pub fn pause_all(&self) {
        let handles: Vec<_> = self.inner.lock().instances.values().cloned().collect();
        for h in handles {
            let _ = h.pause_and_wait(Duration::from_secs(1));
        }
    }

    /// Resumes every paused streamlet.
    pub fn activate_all(&self) {
        let handles: Vec<_> = self.inner.lock().instances.values().cloned().collect();
        for h in handles {
            let _ = h.activate();
        }
    }

    /// Waits (up to `timeout`) for every in-flight message to leave the
    /// stream's interior: ingress and interior channels empty, no instance
    /// mid-`process`, no overflow buffer occupied. Egress is deliberately
    /// excluded — delivered output waiting for the consumer is not
    /// "in flight". Returns whether quiescence was reached; either way the
    /// stream keeps running, so a false return means the caller tears down
    /// with messages still queued (they are dropped by `shutdown`).
    pub fn drain(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            let quiescent = {
                let inner = self.inner.lock();
                // Channels → instances → channels again: a message leaving
                // a queue shows up as `is_processing` on its consumer, and
                // one leaving `process` lands back in a queue before the
                // worker clears the flag, so (absent new input) passing
                // all three passes means nothing is in flight.
                let queues_empty = |inner: &Inner| {
                    self.ingress.iter().all(|(_, q)| q.is_empty())
                        && inner.channels.values().all(|q| q.is_empty())
                };
                inner.shutdown
                    || (queues_empty(&inner)
                        && inner
                            .instances
                            .values()
                            .all(|h| !h.is_processing() && h.pending_outputs() == 0)
                        && queues_empty(&inner))
            };
            if quiescent {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    /// Ends every streamlet, detaches bindings, and returns stateless logic
    /// objects to the pool.
    pub fn shutdown(&self) {
        let mut inner = self.inner.lock();
        if inner.shutdown {
            return;
        }
        inner.shutdown = true;
        let handles: Vec<_> = inner.instances.drain().map(|(_, h)| h).collect();
        let fused: Vec<FusedInfo> = inner.fused.drain().map(|(_, i)| i).collect();
        inner.fused_members.clear();
        inner.connections.clear();
        drop(inner);
        for h in handles {
            h.end();
            let _ = h.detach_all();
            self.reclaim_logic(&h);
        }
        // Fused units are stateful handles on purpose (a FusedLogic must
        // never be recycled through the stateless pool), but their members
        // are ordinary pooling-eligible logics: return each one.
        for info in fused {
            for m in info.shared.take_members() {
                if let Some(logic) = m.logic {
                    self.deps.streamlet_pool.checkin(&m.key, logic);
                }
            }
        }
        // Retire this session's metrics (totals fold into the registry's
        // retired accumulator) and trace the teardown. Only reachable on
        // the first shutdown thanks to the `inner.shutdown` guard above.
        if let Some(p) = &self.probe {
            p.telemetry.trace_event(
                TraceKind::Undeploy,
                Some(&p.key),
                None,
                format!("stream {}", self.name),
            );
            p.telemetry.registry().deregister(&p.key);
        }
    }

    fn reclaim_logic(&self, handle: &Arc<StreamletHandle>) {
        if handle.is_stateful() {
            return;
        }
        if let Some(logic) = handle.take_logic() {
            let def = self.defs.get(handle.def_name());
            let key = def
                .map(|d| {
                    self.deps
                        .directory
                        .resolve_key(&d.library, &d.name)
                        .to_string()
                })
                .unwrap_or_else(|| handle.def_name().to_string());
            self.deps.streamlet_pool.checkin(&key, logic);
        }
    }

    // --- reconfiguration ------------------------------------------------------

    /// Executes a sequence of reconfiguration actions under the stream lock,
    /// with Equation 7-1 instrumentation. Failed actions are counted and
    /// skipped ("the system has to wait some time or take special actions").
    pub fn reconfigure(&self, actions: &[ReconfigAction]) -> ReconfigStats {
        let t0 = Instant::now();
        let mut stats = ReconfigStats::default();
        let mut inner = self.inner.lock();
        // Event-driven fission: any fused unit one of these actions
        // addresses (by member or interior channel) returns to discrete
        // form first, so the actions operate on ordinary instances.
        self.fission_for_actions(&mut inner, actions, &mut stats);
        for action in actions {
            match self.apply_action(&mut inner, action) {
                Ok(s) => stats.absorb(s),
                Err(_) => stats.errors += 1,
            }
        }
        drop(inner);
        stats.total = t0.elapsed();
        self.reconfigurations.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.probe {
            p.telemetry.trace_event(
                TraceKind::Reconfigure,
                Some(&p.key),
                None,
                format!("{} actions, {} errors", actions.len(), stats.errors),
            );
        }
        *self.last_reconfig.lock() = Some(stats);
        stats
    }

    /// Public composition primitive: splice `instance` (an instance of
    /// `def`) into the live connection `from → to` (Figure 7-4). This is
    /// the operation the Figure 7-6 experiment times in a loop.
    pub fn insert_streamlet(
        &self,
        from: (&str, &str),
        to: (&str, &str),
        instance: &str,
        def: &str,
    ) -> Result<ReconfigStats, CoreError> {
        let t0 = Instant::now();
        let mut inner = self.inner.lock();
        inner.lazy.insert(instance.to_string(), def.to_string());
        let action = ReconfigAction::Insert {
            from: (from.0.to_string(), from.1.to_string()),
            to: (to.0.to_string(), to.1.to_string()),
            instance: instance.to_string(),
        };
        let mut fission_stats = ReconfigStats::default();
        self.fission_for_actions(
            &mut inner,
            std::slice::from_ref(&action),
            &mut fission_stats,
        );
        let mut stats = self.apply_action(&mut inner, &action)?;
        stats.absorb(fission_stats);
        drop(inner);
        stats.total = t0.elapsed();
        self.reconfigurations.fetch_add(1, Ordering::Relaxed);
        *self.last_reconfig.lock() = Some(stats);
        Ok(stats)
    }

    /// Public composition primitive: safely remove a streamlet once the
    /// Figure 6-8 prerequisites hold (inputs drained, not processing),
    /// waiting at most `deadline` for them.
    pub fn remove_streamlet(&self, name: &str, deadline: Duration) -> Result<(), CoreError> {
        let mut inner = self.inner.lock();
        let mut stats = ReconfigStats::default();
        let action = ReconfigAction::RemoveStreamlet {
            name: name.to_string(),
        };
        self.fission_for_actions(&mut inner, std::slice::from_ref(&action), &mut stats);
        self.do_remove_with_deadline(&mut inner, name, &mut stats, deadline)
    }

    fn apply_action(
        &self,
        inner: &mut Inner,
        action: &ReconfigAction,
    ) -> Result<ReconfigStats, CoreError> {
        let mut stats = ReconfigStats::default();
        match action {
            ReconfigAction::NewStreamlet { name, def } => {
                self.ensure_instance(inner, name, Some(def), &mut stats)?;
            }
            ReconfigAction::NewChannel { name, spec } => {
                if !inner.channels.contains_key(name) {
                    let t = Instant::now();
                    let q = MessageQueue::with_probe(
                        QueueConfig::from_spec(name, spec),
                        self.deps.msg_pool.clone(),
                        self.probe.clone(),
                    );
                    inner.channels.insert(name.clone(), q);
                    stats.channel_ops += 1;
                    stats.channel_time += t.elapsed();
                }
            }
            ReconfigAction::Connect { from, to, channel } => {
                self.do_connect(inner, from, to, channel, &mut stats)?;
            }
            ReconfigAction::Disconnect { from, to } => {
                self.do_disconnect(inner, from, to, &mut stats)?;
            }
            ReconfigAction::DisconnectAll { instance } => {
                let rows: Vec<ConnectionRow> = inner
                    .connections
                    .iter()
                    .filter(|c| c.from.0 == *instance || c.to.0 == *instance)
                    .cloned()
                    .collect();
                for row in rows {
                    self.do_disconnect(inner, &row.from, &row.to, &mut stats)?;
                }
            }
            ReconfigAction::Insert { from, to, instance } => {
                self.do_insert(inner, from, to, instance, &mut stats)?;
            }
            ReconfigAction::RemoveStreamlet { name } => {
                self.do_remove_with_deadline(inner, name, &mut stats, Duration::from_secs(2))?;
            }
            ReconfigAction::RemoveChannel { name } => {
                let rows: Vec<ConnectionRow> = inner
                    .connections
                    .iter()
                    .filter(|c| c.channel == *name)
                    .cloned()
                    .collect();
                for row in rows {
                    self.do_disconnect(inner, &row.from, &row.to, &mut stats)?;
                }
                let t = Instant::now();
                if inner.channels.remove(name).is_none() {
                    return Err(CoreError::NotFound {
                        kind: "channel",
                        name: name.clone(),
                    });
                }
                stats.channel_ops += 1;
                stats.channel_time += t.elapsed();
            }
            ReconfigAction::Replace { old, new } => {
                self.do_replace(inner, old, new, &mut stats)?;
            }
        }
        Ok(stats)
    }

    /// Ensures `name` exists as a live instance, creating it from its lazy
    /// declaration (or `def_hint`) and starting its worker.
    fn ensure_instance(
        &self,
        inner: &mut Inner,
        name: &str,
        def_hint: Option<&str>,
        stats: &mut ReconfigStats,
    ) -> Result<Arc<StreamletHandle>, CoreError> {
        if let Some(h) = inner.instances.get(name) {
            return Ok(h.clone());
        }
        let def = match def_hint {
            Some(d) => d.to_string(),
            None => inner
                .lazy
                .get(name)
                .cloned()
                .ok_or_else(|| CoreError::NotFound {
                    kind: "streamlet instance",
                    name: name.to_string(),
                })?,
        };
        let handle = create_instance(
            name,
            &def,
            &self.defs,
            &self.deps,
            &self.session,
            &self.name,
        )?;
        handle.start()?;
        stats.instance_creations += 1;
        inner.lazy.remove(name);
        inner.instances.insert(name.to_string(), handle.clone());
        Ok(handle)
    }

    fn do_connect(
        &self,
        inner: &mut Inner,
        from: &(String, String),
        to: &(String, String),
        channel: &str,
        stats: &mut ReconfigStats,
    ) -> Result<(), CoreError> {
        let from_h = self.ensure_instance(inner, &from.0, None, stats)?;
        let to_h = self.ensure_instance(inner, &to.0, None, stats)?;
        let q = inner
            .channels
            .get(channel)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "channel",
                name: channel.to_string(),
            })?;
        let t = Instant::now();
        // A port that was exported at deploy time (unsatisfied, §5.1.4) is
        // satisfied by this connection: retire its ingress/egress binding so
        // traffic is not duplicated onto the stream boundary.
        if from_h
            .output_bindings()
            .iter()
            .any(|(p, c)| *p == from.1 && c == "__egress")
        {
            let _ = from_h.detach_out(&from.1, "__egress");
            stats.channel_ops += 1;
        }
        if let Some((_, ingress_chan)) = to_h
            .input_bindings()
            .into_iter()
            .find(|(p, c)| *p == to.1 && c.starts_with("__ingress/"))
        {
            let _ = to_h.detach_in(&to.1, &ingress_chan);
            stats.channel_ops += 1;
        }
        from_h.attach_out(&from.1, &q);
        to_h.attach_in(&to.1, &q);
        stats.channel_ops += 2;
        stats.channel_time += t.elapsed();
        inner.connections.push(ConnectionRow {
            from: from.clone(),
            to: to.clone(),
            channel: channel.to_string(),
        });
        Ok(())
    }

    fn do_disconnect(
        &self,
        inner: &mut Inner,
        from: &(String, String),
        to: &(String, String),
        stats: &mut ReconfigStats,
    ) -> Result<(), CoreError> {
        let idx = inner
            .connections
            .iter()
            .position(|c| c.from == *from && c.to == *to)
            .ok_or_else(|| CoreError::NotFound {
                kind: "connection",
                name: format!("{}.{} -> {}.{}", from.0, from.1, to.0, to.1),
            })?;
        let row = inner.connections.remove(idx);
        let from_h = inner.instances.get(&row.from.0).cloned();
        let to_h = inner.instances.get(&row.to.0).cloned();
        let t = Instant::now();
        if let Some(h) = from_h {
            let _ = h.detach_out(&row.from.1, &row.channel);
            stats.channel_ops += 1;
        }
        if let Some(h) = to_h {
            let _ = h.detach_in(&row.to.1, &row.channel);
            stats.channel_ops += 1;
        }
        stats.channel_time += t.elapsed();
        Ok(())
    }

    /// Figure 7-4: insert `instance` between `from` and `to`.
    ///
    /// 1. suspend the upstream streamlet A;
    /// 2. detach A from channel m;
    /// 3. attach C to m (C's output feeds m);
    /// 4. create channel n between A and C;
    /// 5. activate A.
    fn do_insert(
        &self,
        inner: &mut Inner,
        from: &(String, String),
        to: &(String, String),
        instance: &str,
        stats: &mut ReconfigStats,
    ) -> Result<(), CoreError> {
        let idx = inner
            .connections
            .iter()
            .position(|c| c.from == *from && c.to == *to)
            .ok_or_else(|| CoreError::NotFound {
                kind: "connection",
                name: format!("{}.{} -> {}.{}", from.0, from.1, to.0, to.1),
            })?;
        let row = inner.connections[idx].clone();

        let a = inner
            .instances
            .get(&from.0)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: from.0.clone(),
            })?;
        let c_handle = self.ensure_instance(inner, instance, None, stats)?;
        let (c_in, c_out) = self.single_ports(c_handle.def_name())?;
        let m = inner
            .channels
            .get(&row.channel)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "channel",
                name: row.channel.clone(),
            })?;

        // Step 2: suspend A.
        let t_s = Instant::now();
        a.pause_and_wait(Duration::from_secs(2))?;
        stats.suspensions += 1;
        stats.suspension_time += t_s.elapsed();

        // Steps 3-5: rewire through channel m and a fresh channel n.
        let t_c = Instant::now();
        a.detach_out(&from.1, &row.channel)?;
        c_handle.attach_out(&c_out, &m);
        let n_name = loop {
            let candidate = format!("__reconf{}", inner.reconf_chan_counter);
            inner.reconf_chan_counter += 1;
            if !inner.channels.contains_key(&candidate) {
                break candidate;
            }
        };
        let n = MessageQueue::with_probe(
            QueueConfig {
                name: n_name.clone(),
                ty: m.config().ty.clone(),
                ..Default::default()
            },
            self.deps.msg_pool.clone(),
            self.probe.clone(),
        );
        a.attach_out(&from.1, &n);
        c_handle.attach_in(&c_in, &n);
        inner.channels.insert(n_name.clone(), n);
        stats.channel_ops += 5; // detach + attach×3 + create
        stats.channel_time += t_c.elapsed();

        // Update the routing table.
        inner.connections.remove(idx);
        inner.connections.push(ConnectionRow {
            from: from.clone(),
            to: (instance.to_string(), c_in),
            channel: n_name,
        });
        inner.connections.push(ConnectionRow {
            from: (instance.to_string(), c_out),
            to: to.clone(),
            channel: row.channel,
        });

        // Step 6: activate A.
        let t_a = Instant::now();
        a.activate()?;
        stats.activations += 1;
        stats.activation_time += t_a.elapsed();
        Ok(())
    }

    /// Figure 6-8 safe removal.
    fn do_remove_with_deadline(
        &self,
        inner: &mut Inner,
        name: &str,
        stats: &mut ReconfigStats,
        deadline: Duration,
    ) -> Result<(), CoreError> {
        let handle = inner
            .instances
            .get(name)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: name.into(),
            })?;

        // Stop upstream flow into the streamlet first.
        let rows: Vec<ConnectionRow> = inner
            .connections
            .iter()
            .filter(|c| c.to.0 == name)
            .cloned()
            .collect();
        for row in &rows {
            // Suspend producers so no new units enter channel m mid-drain.
            if let Some(p) = inner.instances.get(&row.from.0).cloned() {
                let t_s = Instant::now();
                if p.pause_and_wait(Duration::from_secs(2)).is_ok() {
                    stats.suspensions += 1;
                    stats.suspension_time += t_s.elapsed();
                }
            }
        }

        // Wait for the Fig 6-8 prerequisites: inputs drained + not
        // processing. (Outputs are delivered synchronously by the worker, so
        // quiescence implies condition 3.)
        let deadline = Instant::now() + deadline;
        while !handle.inputs_empty() || handle.is_processing() {
            if Instant::now() >= deadline {
                // Reactivate producers before giving up.
                for row in &rows {
                    if let Some(p) = inner.instances.get(&row.from.0) {
                        let _ = p.activate();
                    }
                }
                return Err(CoreError::Reconfig {
                    message: format!(
                        "streamlet `{name}` did not reach the safe-removal conditions in time"
                    ),
                });
            }
            std::thread::sleep(Duration::from_millis(1));
        }

        // Detach every connection touching the streamlet.
        let touching: Vec<ConnectionRow> = inner
            .connections
            .iter()
            .filter(|c| c.from.0 == name || c.to.0 == name)
            .cloned()
            .collect();
        for row in &touching {
            let _ = self.do_disconnect(inner, &row.from, &row.to, stats);
        }

        handle.end();
        inner.instances.remove(name);
        self.reclaim_logic(&handle);

        // Reactivate the suspended producers.
        for row in &rows {
            if let Some(p) = inner.instances.get(&row.from.0) {
                let t_a = Instant::now();
                if p.activate().is_ok() {
                    stats.activations += 1;
                    stats.activation_time += t_a.elapsed();
                }
            }
        }
        Ok(())
    }

    fn do_replace(
        &self,
        inner: &mut Inner,
        old: &str,
        new: &str,
        stats: &mut ReconfigStats,
    ) -> Result<(), CoreError> {
        let old_h = inner
            .instances
            .get(old)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: old.into(),
            })?;
        let new_h = self.ensure_instance(inner, new, None, stats)?;

        let t_s = Instant::now();
        old_h.pause_and_wait(Duration::from_secs(2))?;
        stats.suspensions += 1;
        stats.suspension_time += t_s.elapsed();

        // Move *every* binding from old to new, port names preserved —
        // including the stream-boundary ingress/egress bindings, so a
        // replaced head or tail streamlet keeps the stream's exported
        // ports alive.
        let t_c = Instant::now();
        for (port, chan) in old_h.input_bindings() {
            let Some(q) = self.find_queue(inner, &chan) else {
                continue;
            };
            let _ = old_h.detach_in(&port, &chan);
            new_h.attach_in(&port, &q);
            stats.channel_ops += 2;
        }
        for (port, chan) in old_h.output_bindings() {
            let Some(q) = self.find_queue(inner, &chan) else {
                continue;
            };
            let _ = old_h.detach_out(&port, &chan);
            new_h.attach_out(&port, &q);
            stats.channel_ops += 2;
        }
        stats.channel_time += t_c.elapsed();
        for c in inner.connections.iter_mut() {
            if c.from.0 == old {
                c.from.0 = new.to_string();
            }
            if c.to.0 == old {
                c.to.0 = new.to_string();
            }
        }

        old_h.end();
        inner.instances.remove(old);
        self.reclaim_logic(&old_h);
        Ok(())
    }

    // --- fission --------------------------------------------------------------

    /// Splits every fused unit that `actions` address — by member instance
    /// or by collapsed interior channel — back into discrete streamlets, so
    /// the actions then operate on ordinary instances. Event-driven: this
    /// runs as a pre-pass of every reconfiguration entry point.
    fn fission_for_actions(
        &self,
        inner: &mut Inner,
        actions: &[ReconfigAction],
        stats: &mut ReconfigStats,
    ) {
        if inner.fused.is_empty() {
            return;
        }
        let mut units: Vec<String> = Vec::new();
        for action in actions {
            for name in mobigate_mcl::fusion::action_instances(action) {
                if let Some(unit) = inner.fused_members.get(name) {
                    units.push(unit.clone());
                }
            }
            for chan in mobigate_mcl::fusion::action_channels(action) {
                for (unit, info) in &inner.fused {
                    if info.interior_channels.iter().any(|r| r.name == chan) {
                        units.push(unit.clone());
                    }
                }
            }
        }
        units.sort_unstable();
        units.dedup();
        for unit in units {
            match self.fission_unit(inner, &unit, None) {
                Ok(s) => stats.absorb(s),
                Err(_) => stats.errors += 1,
            }
        }
    }

    /// Splits a fused unit that supervision has given up on, so quarantine
    /// is confined to the member whose panics exhausted the restart budget.
    /// Driven by the `STREAMLET_FAULT` event the supervisor raises.
    fn fission_quarantined(&self, unit: &str) {
        let mut inner = self.inner.lock();
        if inner.shutdown || !inner.fused.contains_key(unit) {
            return;
        }
        let quarantined = inner
            .instances
            .get(unit)
            .map(|h| h.state() == LifecycleState::Quarantined)
            .unwrap_or(false);
        if !quarantined {
            return; // restartable fault — the supervisor handles it in place
        }
        let at = inner
            .fused
            .get(unit)
            .and_then(|i| i.shared.faulted_member())
            .map(|(idx, _)| idx);
        let _ = self.fission_unit(&mut inner, unit, at);
    }

    /// Fission: pause the fused unit, drain its parked outputs, re-create
    /// the interior channels and member instances, splice them into the
    /// live topology **attach-before-detach** (so no queue ever closes with
    /// messages in flight), transplant the redelivery backlog into the
    /// entry member, and only then retire the unit — zero message loss.
    ///
    /// With `quarantine_at = Some(i)`, member `i` comes back discrete with
    /// fresh directory logic but is left `Quarantined`, and the surviving
    /// contiguous segments on either side re-fuse — one poisoned stage
    /// costs only its own fusion.
    fn fission_unit(
        &self,
        inner: &mut Inner,
        unit: &str,
        quarantine_at: Option<usize>,
    ) -> Result<ReconfigStats, CoreError> {
        let mut stats = ReconfigStats::default();
        let handle = inner
            .instances
            .get(unit)
            .cloned()
            .ok_or_else(|| CoreError::NotFound {
                kind: "streamlet instance",
                name: unit.to_string(),
            })?;

        // 1. Suspend the unit. A Faulted/Quarantined worker is already
        // parked and cannot race the roster handoff.
        if matches!(
            handle.state(),
            LifecycleState::Running | LifecycleState::Paused
        ) {
            let t_s = Instant::now();
            handle.pause_and_wait(Duration::from_secs(2))?;
            stats.suspensions += 1;
            stats.suspension_time += t_s.elapsed();
            // 2. Push the unit's parked emissions downstream so nothing is
            // stranded with the old handle (bounded: a persistently full
            // downstream queue expires the stragglers per Figure 6-9).
            let deadline = Instant::now() + Duration::from_millis(500);
            while !handle.flush_pending_outputs() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(1));
            }
        }

        let Some(info) = inner.fused.remove(unit) else {
            return Err(CoreError::NotFound {
                kind: "fused unit",
                name: unit.to_string(),
            });
        };
        let member_names = info.shared.member_names();
        let members = info.shared.take_members();
        let redelivery = handle.drain_redelivery();
        for name in &member_names {
            inner.fused_members.remove(name);
        }
        let n = members.len();
        let quarantine_at = quarantine_at.filter(|&q| q < n);

        // 3. Segment the roster: fully discrete by default; around a
        // quarantined member, the survivors re-fuse.
        let (segments, boundary): (Vec<(usize, usize)>, HashSet<usize>) = match quarantine_at {
            None => (
                (0..n).map(|i| (i, i)).collect(),
                (0..n.saturating_sub(1)).collect(),
            ),
            Some(q) => {
                let mut segs = Vec::new();
                if q > 0 {
                    segs.push((0, q - 1));
                }
                segs.push((q, q));
                if q + 1 < n {
                    segs.push((q + 1, n - 1));
                }
                let mut b = HashSet::new();
                if q > 0 {
                    b.insert(q - 1);
                }
                if q + 1 < n {
                    b.insert(q);
                }
                (segs, b)
            }
        };

        // 4. Re-materialize the boundary channels (those between segments;
        // channels interior to a re-fused segment stay collapsed).
        for (i, row) in info.interior_channels.iter().enumerate() {
            if !boundary.contains(&i) {
                continue;
            }
            let t = Instant::now();
            let mut cfg = QueueConfig::from_spec(&row.name, &row.spec);
            cfg.spsc = self.deps.batching.spsc && !self.deps.overload.shed_on();
            inner.channels.insert(
                row.name.clone(),
                MessageQueue::with_probe(cfg, self.deps.msg_pool.clone(), self.probe.clone()),
            );
            stats.channel_ops += 1;
            stats.channel_time += t.elapsed();
        }

        // 5. One handle per segment, in pipeline order.
        let mut seg_handles: Vec<Arc<StreamletHandle>> = Vec::new();
        let mut quarantine_seg: Option<usize> = None;
        let mut roster: VecDeque<FusedMember> = members.into();
        for (si, &(start, end)) in segments.iter().enumerate() {
            let count = end - start + 1;
            let segment: Vec<FusedMember> = roster.drain(..count).collect();
            if count == 1 {
                let Some(m) = segment.into_iter().next() else {
                    continue;
                };
                if quarantine_at == Some(start) {
                    quarantine_seg = Some(si);
                }
                let name = m.instance.clone();
                let h = self.materialize_member(m)?;
                inner.instances.insert(name, h.clone());
                stats.instance_creations += 1;
                seg_handles.push(h);
            } else {
                let (sub_unit, h, shared) =
                    assemble_fused_handle(segment, &self.deps, &self.session, &self.name);
                for name in &member_names[start..=end] {
                    inner.fused_members.insert(name.clone(), sub_unit.clone());
                }
                inner.fused.insert(
                    sub_unit.clone(),
                    FusedInfo {
                        shared,
                        interior_channels: info.interior_channels[start..end].to_vec(),
                        interior_connections: info.interior_connections[start..end].to_vec(),
                    },
                );
                inner.instances.insert(sub_unit, h.clone());
                seg_handles.push(h);
            }
        }

        // 6. Splice into the live topology. Attach-before-detach: every
        // stream-side queue gains its new consumer/producer before the old
        // handle lets go.
        let t_c = Instant::now();
        if let (Some(first), Some(last)) = (seg_handles.first(), seg_handles.last()) {
            for (port, q) in handle.bound_inputs() {
                first.attach_in(&port, &q);
                stats.channel_ops += 1;
            }
            for (port, q) in handle.bound_outputs() {
                last.attach_out(&port, &q);
                stats.channel_ops += 1;
            }
        }
        let mut seg_of = vec![0usize; n];
        for (si, &(s, e)) in segments.iter().enumerate() {
            for slot in seg_of.iter_mut().take(e + 1).skip(s) {
                *slot = si;
            }
        }
        for (i, row) in info.interior_connections.iter().enumerate() {
            if !boundary.contains(&i) {
                continue;
            }
            let Some(q) = inner.channels.get(&row.channel).cloned() else {
                continue;
            };
            if let (Some(from), Some(to)) =
                (seg_handles.get(seg_of[i]), seg_handles.get(seg_of[i + 1]))
            {
                from.attach_out(&row.from.1, &q);
                to.attach_in(&row.to.1, &q);
                stats.channel_ops += 2;
                inner.connections.push(row.clone());
            }
        }
        stats.channel_time += t_c.elapsed();

        // 7. Transplant the redelivery backlog into the entry segment so a
        // faulted batch keeps replaying (poison accounting survives).
        if let Some(first) = seg_handles.first() {
            if !redelivery.is_empty() {
                first.stash_redelivery(redelivery);
            }
        }

        // 8. Retire the unit, then start the segments.
        handle.end();
        let _ = handle.detach_all();
        inner.instances.remove(unit);
        for (si, h) in seg_handles.iter().enumerate() {
            if quarantine_seg == Some(si) {
                // The poisoned member stays down — but discrete, so the rest
                // of the pipeline keeps flowing and a `when (STREAMLET_FAULT)`
                // rule can still bypass or remove exactly this instance.
                let _ = h.quarantine();
                continue;
            }
            let t_a = Instant::now();
            match h.start() {
                Ok(()) => {
                    stats.activations += 1;
                    stats.activation_time += t_a.elapsed();
                }
                Err(_) => stats.errors += 1,
            }
        }
        if let Some(p) = &self.probe {
            p.telemetry.trace_event(
                TraceKind::Fission,
                Some(&p.key),
                Some(unit),
                format!("{} segments", seg_handles.len()),
            );
        }
        Ok(stats)
    }

    /// Rebuilds one ex-member as a discrete, individually supervised
    /// instance. A poisoned member (its logic was dropped by the panic
    /// boundary) gets fresh logic from the directory factory — never the
    /// pool, which could recycle poisoned state.
    fn materialize_member(&self, mut m: FusedMember) -> Result<Arc<StreamletHandle>, CoreError> {
        let stateful = self.defs.get(&m.def).map(|d| d.stateful).unwrap_or(false);
        let logic = match m.logic.take() {
            Some(l) => l,
            None => self.deps.directory.create(&m.key)?,
        };
        let handle = StreamletHandle::with_executor(
            &m.instance,
            &m.def,
            stateful,
            logic,
            self.deps.msg_pool.clone(),
            self.deps.mode,
            Some(self.session.clone()),
            self.deps.route_opts.clone(),
            self.deps.executor.clone(),
        );
        handle.set_batch_max(self.deps.batching.batch_max);
        if let Some(p) = &self.probe {
            handle.set_probe(p.clone());
        }
        if let Some(sup) = &self.deps.supervisor {
            let dir = self.deps.directory.clone();
            let key = m.key.clone();
            sup.supervise(&handle, move || dir.create(&key), Some(self.name.clone()));
        }
        Ok(handle)
    }

    /// Resolves a channel name to its queue, covering MCL channels plus the
    /// stream-boundary ingress/egress queues.
    fn find_queue(&self, inner: &Inner, name: &str) -> Option<Arc<MessageQueue>> {
        if let Some(q) = inner.channels.get(name) {
            return Some(q.clone());
        }
        if name == "__egress" {
            return Some(self.egress.clone());
        }
        self.ingress
            .iter()
            .map(|(_, q)| q)
            .find(|q| q.config().name == name)
            .cloned()
    }

    /// The (single input, single output) port names of a definition.
    fn single_ports(&self, def: &str) -> Result<(String, String), CoreError> {
        let spec = self.defs.get(def).ok_or_else(|| CoreError::NotFound {
            kind: "streamlet definition",
            name: def.into(),
        })?;
        if spec.inputs.len() != 1 || spec.outputs.len() != 1 {
            return Err(CoreError::Reconfig {
                message: format!(
                    "insert requires 1 input + 1 output; `{def}` has {}+{}",
                    spec.inputs.len(),
                    spec.outputs.len()
                ),
            });
        }
        Ok((spec.inputs[0].0.clone(), spec.outputs[0].0.clone()))
    }
}

impl EventSubscriber for RunningStream {
    fn subscriber_name(&self) -> String {
        self.name.clone()
    }
    fn on_event(&self, event: &ContextEvent) {
        self.handle_event(event);
    }
}

impl Drop for RunningStream {
    fn drop(&mut self) {
        // Best-effort teardown so worker threads never outlive the stream.
        self.shutdown();
    }
}

/// Checks logic out of the pool (or directory) and wraps it in a handle.
/// When the deps carry a supervisor, the new instance is registered for
/// panic recovery: rebuilds go through the directory factory (never the
/// pool, which could recycle poisoned state).
fn create_instance(
    name: &str,
    def: &str,
    defs: &BTreeMap<String, StreamletSpec>,
    deps: &StreamDeps,
    session: &SessionId,
    stream: &str,
) -> Result<Arc<StreamletHandle>, CoreError> {
    let spec = defs.get(def).ok_or_else(|| CoreError::NotFound {
        kind: "streamlet definition",
        name: def.to_string(),
    })?;
    let key = deps.directory.resolve_key(&spec.library, &spec.name);
    let logic = deps.streamlet_pool.checkout(key, &deps.directory)?;
    let handle = StreamletHandle::with_executor(
        name,
        def,
        spec.stateful,
        logic,
        deps.msg_pool.clone(),
        deps.mode,
        Some(session.clone()),
        deps.route_opts.clone(),
        deps.executor.clone(),
    );
    handle.set_batch_max(deps.batching.batch_max);
    if let Some(t) = &deps.telemetry {
        handle.set_probe(t.probe_for(session.as_str()));
    }
    if let Some(sup) = &deps.supervisor {
        let dir = deps.directory.clone();
        let key = key.to_string();
        sup.supervise(&handle, move || dir.create(&key), Some(stream.to_string()));
    }
    Ok(handle)
}

/// Wraps a member roster in a stateful handle driving a [`FusedLogic`].
/// Supervision resolves to the *member*: the rebuild closure re-creates
/// only the faulted member's logic (directory factory, never the pool) and
/// hands back a fresh logic view over the same roster, so one bad stage
/// never resets its healthy neighbours.
fn assemble_fused_handle(
    members: Vec<FusedMember>,
    deps: &StreamDeps,
    session: &SessionId,
    stream: &str,
) -> (String, Arc<StreamletHandle>, Arc<FusedShared>) {
    let unit = match (members.first(), members.last()) {
        (Some(a), Some(b)) => format!("fused:{}..{}", a.instance, b.instance),
        _ => "fused:".to_string(),
    };
    let n_members = members.len();
    let shared = FusedShared::new(unit.clone(), members);
    let handle = StreamletHandle::with_executor(
        &unit,
        "fused",
        true, // stateful: a fused logic must never enter the stateless pool
        Box::new(FusedLogic::new(shared.clone())),
        deps.msg_pool.clone(),
        deps.mode,
        Some(session.clone()),
        deps.route_opts.clone(),
        deps.executor.clone(),
    );
    handle.set_batch_max(deps.batching.batch_max);
    if let Some(t) = &deps.telemetry {
        handle.set_probe(t.probe_for(session.as_str()));
        t.trace_event(
            TraceKind::Fuse,
            Some(session.as_str()),
            Some(&unit),
            format!("{n_members} members"),
        );
    }
    if let Some(sup) = &deps.supervisor {
        let dir = deps.directory.clone();
        let roster = shared.clone();
        sup.supervise(
            &handle,
            move || {
                if let Some((idx, key)) = roster.faulted_member_key() {
                    let fresh = dir.create(&key)?;
                    roster.install_member_logic(idx, fresh);
                }
                Ok(Box::new(FusedLogic::new(roster.clone())) as Box<dyn StreamletLogic>)
            },
            Some(stream.to_string()),
        );
    }
    (unit, handle, shared)
}

/// Deploy-time fusion of one planned run: checks each member's logic out
/// of the pool and assembles the run into a single execution unit, keeping
/// the collapsed channel/connection rows so fission can resurrect them.
fn build_fused_unit(
    run: &FusedRun,
    table: &ConfigTable,
    defs: &BTreeMap<String, StreamletSpec>,
    deps: &StreamDeps,
    session: &SessionId,
    stream: &str,
) -> Result<(String, Arc<StreamletHandle>, FusedInfo), CoreError> {
    let mut members = Vec::with_capacity(run.members.len());
    for name in &run.members {
        let row = table.instance(name).ok_or_else(|| CoreError::NotFound {
            kind: "streamlet instance",
            name: name.clone(),
        })?;
        let spec = defs.get(&row.def).ok_or_else(|| CoreError::NotFound {
            kind: "streamlet definition",
            name: row.def.clone(),
        })?;
        let (Some(pin), Some(pout)) = (spec.inputs.first(), spec.outputs.first()) else {
            return Err(CoreError::Reconfig {
                message: format!("fused member `{name}` must have 1 input + 1 output"),
            });
        };
        let key = deps
            .directory
            .resolve_key(&spec.library, &spec.name)
            .to_string();
        let logic = deps.streamlet_pool.checkout(&key, &deps.directory)?;
        members.push(FusedMember {
            instance: name.clone(),
            def: row.def.clone(),
            key,
            in_port: pin.0.clone(),
            out_port: pout.0.clone(),
            logic: Some(logic),
            errors: 0,
        });
    }
    let (unit, handle, shared) = assemble_fused_handle(members, deps, session, stream);
    let interior_channels = run
        .interior_channels
        .iter()
        .filter_map(|n| table.channel(n).cloned())
        .collect();
    let interior_connections = run
        .interior_channels
        .iter()
        .filter_map(|n| table.connections.iter().find(|c| &c.channel == n).cloned())
        .collect();
    Ok((
        unit,
        handle,
        FusedInfo {
            shared,
            interior_channels,
            interior_connections,
        },
    ))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::streamlet::{Emitter, StreamletCtx, StreamletLogic};
    use mobigate_mcl::compile::compile;

    /// Appends a marker character to text bodies.
    struct Tag(char);
    impl StreamletLogic for Tag {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let mut s = String::from_utf8_lossy(&msg.body).into_owned();
            s.push(self.0);
            let mut out = msg.clone();
            out.set_body(s.into_bytes());
            ctx.emit("po", out);
            Ok(())
        }
    }

    fn deps() -> StreamDeps {
        let directory = Arc::new(StreamletDirectory::new());
        directory.register("builtin/tag_a", "", || Box::new(Tag('a')));
        directory.register("builtin/tag_b", "", || Box::new(Tag('b')));
        directory.register("builtin/tag_c", "", || Box::new(Tag('c')));
        StreamDeps {
            msg_pool: Arc::new(MessagePool::new()),
            directory,
            streamlet_pool: Arc::new(StreamletPool::new(16)),
            mode: PayloadMode::Reference,
            route_opts: RouteOpts::default(),
            executor: crate::executor::default_executor(),
            supervisor: None,
            batching: BatchConfig::default(),
            fusion: false,
            telemetry: None,
            overload: OverloadConfig::default(),
            admission: None,
            buf_pool: None,
        }
    }

    const SCRIPT: &str = r#"
        streamlet tag_a {
            port { in pi : text; out po : text; }
            attribute { type = STATELESS; library = "builtin/tag_a"; }
        }
        streamlet tag_b {
            port { in pi : text; out po : text; }
            attribute { type = STATELESS; library = "builtin/tag_b"; }
        }
        streamlet tag_c {
            port { in pi : text; out po : text; }
            attribute { type = STATELESS; library = "builtin/tag_c"; }
        }
        main stream app {
            streamlet s1 = new-streamlet (tag_a);
            streamlet s2 = new-streamlet (tag_b);
            connect (s1.po, s2.pi);
            when (LOW_BANDWIDTH) {
                streamlet s3 = new-streamlet (tag_c);
                insert (s1.po, s2.pi, s3);
            }
        }
    "#;

    fn deploy(script: &str) -> (Arc<RunningStream>, StreamDeps) {
        let program = compile(script).unwrap();
        let table = program.main().unwrap();
        let d = deps();
        let stream = RunningStream::deploy(
            table,
            &program.streamlet_defs,
            d.clone(),
            SessionId::new("s-test"),
        )
        .unwrap();
        (stream, d)
    }

    fn roundtrip(stream: &RunningStream, text: &str) -> String {
        stream.post_input(MimeMessage::text(text)).unwrap();
        let out = stream.take_output(Duration::from_secs(5)).expect("output");
        String::from_utf8_lossy(&out.body).into_owned()
    }

    #[test]
    fn deploys_and_processes_end_to_end() {
        let (stream, _) = deploy(SCRIPT);
        assert_eq!(roundtrip(&stream, "x"), "xab");
        let stats = stream.stats();
        assert_eq!(stats.injected, 1);
        assert_eq!(stats.delivered, 1);
        stream.shutdown();
    }

    #[test]
    fn messages_carry_the_session_label() {
        let (stream, _) = deploy(SCRIPT);
        stream.post_input(MimeMessage::text("x")).unwrap();
        let out = stream.take_output(Duration::from_secs(5)).unwrap();
        assert_eq!(out.session().unwrap().as_str(), "s-test");
        stream.shutdown();
    }

    #[test]
    fn lazy_instances_not_created_at_deploy() {
        let (stream, _) = deploy(SCRIPT);
        assert_eq!(
            stream.instance_names(),
            vec!["s1".to_string(), "s2".to_string()]
        );
        stream.shutdown();
    }

    #[test]
    fn event_triggers_insert_reconfiguration() {
        let (stream, _) = deploy(SCRIPT);
        assert_eq!(roundtrip(&stream, "x"), "xab");
        let stats = stream
            .handle_event(&ContextEvent::broadcast(EventKind::LowBandwidth))
            .expect("rule ran");
        assert_eq!(stats.errors, 0);
        assert_eq!(stats.suspensions, 1);
        assert_eq!(stats.activations, 1);
        assert!(stats.instance_creations >= 1);
        assert_eq!(stream.instance_names(), vec!["s1", "s2", "s3"]);
        // The new topology routes through s3.
        assert_eq!(roundtrip(&stream, "y"), "yacb");
        stream.shutdown();
    }

    #[test]
    fn unmatched_event_is_ignored() {
        let (stream, _) = deploy(SCRIPT);
        assert!(stream
            .handle_event(&ContextEvent::broadcast(EventKind::LowEnergy))
            .is_none());
        stream.shutdown();
    }

    #[test]
    fn insert_streamlet_primitive_reports_eq71_components() {
        let (stream, _) = deploy(SCRIPT);
        let stats = stream
            .insert_streamlet(("s1", "po"), ("s2", "pi"), "mid", "tag_c")
            .unwrap();
        assert_eq!(stats.suspensions, 1);
        assert_eq!(stats.activations, 1);
        assert!(stats.channel_ops >= 4);
        assert!(stats.total >= stats.suspension_time);
        assert_eq!(roundtrip(&stream, "z"), "zacb");
        stream.shutdown();
    }

    #[test]
    fn no_message_loss_across_reconfiguration() {
        let (stream, _) = deploy(SCRIPT);
        // Inject a burst, reconfigure mid-flight, and count every output.
        let n = 200;
        let stream2 = stream.clone();
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                stream2
                    .post_input(MimeMessage::text(format!("m{i}")))
                    .unwrap();
                if i == n / 2 {
                    stream2.handle_event(&ContextEvent::broadcast(EventKind::LowBandwidth));
                }
            }
        });
        let mut got = 0;
        while got < n {
            match stream.take_output(Duration::from_secs(5)) {
                Some(_) => got += 1,
                None => break,
            }
        }
        producer.join().unwrap();
        assert_eq!(got, n, "all {n} messages must survive the reconfiguration");
        stream.shutdown();
    }

    #[test]
    fn remove_streamlet_safely_drains_first() {
        let (stream, _) = deploy(SCRIPT);
        stream
            .insert_streamlet(("s1", "po"), ("s2", "pi"), "mid", "tag_c")
            .unwrap();
        assert_eq!(roundtrip(&stream, "q"), "qacb");
        // Remove the middle streamlet again; the stream must keep working
        // with the remaining topology (s1 -> ??). After removal, s1.po and
        // s2.pi are disconnected, so output stops — verify removal occurred
        // and nothing paniced.
        stream
            .remove_streamlet("mid", Duration::from_secs(2))
            .unwrap();
        assert!(!stream.instance_names().contains(&"mid".to_string()));
        stream.shutdown();
    }

    #[test]
    fn remove_unknown_instance_errors() {
        let (stream, _) = deploy(SCRIPT);
        assert!(stream
            .remove_streamlet("ghost", Duration::from_millis(100))
            .is_err());
        stream.shutdown();
    }

    #[test]
    fn pause_resume_events_gate_flow() {
        let (stream, _) = deploy(SCRIPT);
        stream.handle_event(&ContextEvent::broadcast(EventKind::Pause));
        stream.post_input(MimeMessage::text("held")).unwrap();
        assert!(stream.take_output(Duration::from_millis(100)).is_none());
        stream.handle_event(&ContextEvent::broadcast(EventKind::Resume));
        assert!(stream.take_output(Duration::from_secs(5)).is_some());
        stream.shutdown();
    }

    #[test]
    fn shutdown_returns_stateless_logic_to_pool() {
        let (stream, d) = deploy(SCRIPT);
        assert_eq!(roundtrip(&stream, "x"), "xab");
        stream.shutdown();
        // Two stateless instances were reclaimed.
        let stats = d.streamlet_pool.stats();
        assert_eq!(stats.returned, 2);
        assert_eq!(d.streamlet_pool.idle_count("builtin/tag_a"), 1);
        assert_eq!(d.streamlet_pool.idle_count("builtin/tag_b"), 1);
    }

    #[test]
    fn second_deploy_reuses_pooled_instances() {
        let program = compile(SCRIPT).unwrap();
        let d = deps();
        let s1 = RunningStream::deploy(
            program.main().unwrap(),
            &program.streamlet_defs,
            d.clone(),
            SessionId::new("one"),
        )
        .unwrap();
        s1.shutdown();
        let _s2 = RunningStream::deploy(
            program.main().unwrap(),
            &program.streamlet_defs,
            d.clone(),
            SessionId::new("two"),
        )
        .unwrap();
        let stats = d.streamlet_pool.stats();
        assert_eq!(stats.hits, 2, "second deployment pooled both streamlets");
    }

    #[test]
    fn reconfigure_counts_failed_actions() {
        let (stream, _) = deploy(SCRIPT);
        let stats = stream.reconfigure(&[ReconfigAction::RemoveStreamlet {
            name: "nope".into(),
        }]);
        assert_eq!(stats.errors, 1);
        stream.shutdown();
    }

    #[test]
    fn post_to_named_ingress() {
        let (stream, _) = deploy(SCRIPT);
        assert_eq!(stream.ingress_count(), 1);
        stream
            .post_input_to("s1.pi", MimeMessage::text("n"))
            .unwrap();
        assert!(stream.take_output(Duration::from_secs(5)).is_some());
        assert!(stream
            .post_input_to("bogus.pi", MimeMessage::text("n"))
            .is_err());
        stream.shutdown();
    }
}
