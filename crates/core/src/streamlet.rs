//! Streamlets: the computation units of the execution plane (§6.1).
//!
//! A streamlet author implements [`StreamletLogic::process`] (the paper's
//! `processMsg()` override) and never touches communication: messages
//! arrive from whatever channels the coordination plane bound to the input
//! ports, and emissions go to whatever channels are bound to the named
//! output ports. [`StreamletHandle`] supplies the lifecycle operations
//! `pause()`, `activate()`, `end()`; the actual scheduling is delegated to
//! an [`Executor`] (thread-per-streamlet by default, matching the paper's
//! `Streamlet extends Thread`, or a shared worker pool) which drives the
//! handle's [`StreamletTask`].

use crate::error::CoreError;
use crate::executor::{default_executor, Executor};
use crate::pool::{MessagePool, Payload, PayloadMode};
use crate::queue::{FetchResult, MessageQueue, Notifier};
use crate::supervisor::FaultCause;
use crate::telemetry::QueueProbe;
use mobigate_mime::{MimeMessage, SessionId, TypeRegistry};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Something that accepts emissions to named output ports.
pub trait Emitter {
    /// Emits `msg` on output port `port`.
    fn emit(&mut self, port: &str, msg: MimeMessage);
}

/// The per-invocation context handed to [`StreamletLogic::process`].
pub struct StreamletCtx<'a> {
    /// Instance name (diagnostics).
    instance: &'a str,
    /// The stream session this invocation belongs to, if known.
    session: Option<&'a SessionId>,
    /// Collected emissions, routed by the handle after `process` returns.
    outputs: Vec<(String, MimeMessage)>,
    /// Retired port-name strings, reused by `emit` so steady-state
    /// emission allocates nothing (the memory plane's scratch reuse).
    spare: Vec<String>,
}

impl<'a> StreamletCtx<'a> {
    /// Creates a context (exposed so tests and the client runtime can drive
    /// logic objects directly).
    pub fn new(instance: &'a str, session: Option<&'a SessionId>) -> Self {
        Self::with_buffers(instance, session, Vec::new(), Vec::new())
    }

    /// Creates a context over caller-lent buffers (the drivers' scratch
    /// vecs, recovered via [`StreamletCtx::into_parts`] after the call).
    pub(crate) fn with_buffers(
        instance: &'a str,
        session: Option<&'a SessionId>,
        outputs: Vec<(String, MimeMessage)>,
        spare: Vec<String>,
    ) -> Self {
        StreamletCtx {
            instance,
            session,
            outputs,
            spare,
        }
    }

    /// The instance name executing this invocation.
    pub fn instance(&self) -> &str {
        self.instance
    }

    /// The owning stream session.
    pub fn session(&self) -> Option<&SessionId> {
        self.session
    }

    /// Consumes the context, yielding the collected `(port, message)`
    /// emissions in order.
    pub fn into_outputs(self) -> Vec<(String, MimeMessage)> {
        self.outputs
    }

    /// Consumes the context, handing back both lent buffers.
    pub(crate) fn into_parts(self) -> (Vec<(String, MimeMessage)>, Vec<String>) {
        (self.outputs, self.spare)
    }

    /// `emit` with an already-owned port name (the fused interior loop
    /// forwards recovered strings instead of re-copying them).
    pub(crate) fn emit_owned(&mut self, port: String, msg: MimeMessage) {
        self.outputs.push((port, msg));
    }

    /// Emissions collected so far (rollback mark for per-message errors).
    pub(crate) fn outputs_len(&self) -> usize {
        self.outputs.len()
    }

    /// Discards emissions past `mark`, retiring their port strings.
    pub(crate) fn truncate_outputs(&mut self, mark: usize) {
        for (mut name, _) in self.outputs.drain(mark..) {
            name.clear();
            self.spare.push(name);
        }
    }
}

impl Emitter for StreamletCtx<'_> {
    fn emit(&mut self, port: &str, msg: MimeMessage) {
        let mut name = self.spare.pop().unwrap_or_default();
        name.clear();
        name.push_str(port);
        self.outputs.push((name, msg));
    }
}

/// The computation interface streamlet authors implement (§6.1's
/// `processMsg`). Implementations must be `Send`: they migrate onto worker
/// threads and, when stateless, in and out of the streamlet pool.
pub trait StreamletLogic: Send {
    /// Processes one incoming message, emitting any number of results.
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError>;

    /// True when `process_batch` should be preferred over per-message
    /// `process` calls. Only streamlets whose per-message behavior is
    /// independent of batching (stateless transforms) should opt in: a
    /// batch shares one panic-isolation boundary, so a panic faults the
    /// whole batch rather than the single message that caused it.
    fn supports_batch(&self) -> bool {
        false
    }

    /// Processes a run of messages under one invocation, amortizing the
    /// dispatch and routing overhead. The default simply loops over
    /// [`StreamletLogic::process`], stopping at the first error.
    fn process_batch(
        &mut self,
        msgs: Vec<MimeMessage>,
        ctx: &mut StreamletCtx,
    ) -> Result<(), CoreError> {
        for msg in msgs {
            self.process(msg, ctx)?;
        }
        Ok(())
    }

    /// True when this logic may be **chain-fused** with adjacent fusable
    /// streamlets (see `fusion.rs`): members of a fused unit run
    /// back-to-back on one driver, handing each emission directly to the
    /// next member instead of crossing a `MessageQueue`. Only opt in when
    /// `process` is a pure per-message transform — nothing may observe
    /// the missing channel boundary (no cross-message buffering, no
    /// reliance on queue backpressure or on running concurrently with its
    /// neighbors). Stateless pooling-eligible transforms qualify; the
    /// default is conservative.
    fn fusable(&self) -> bool {
        false
    }

    /// Lifecycle hook: the streamlet (re)starts running.
    fn on_activate(&mut self) {}

    /// Lifecycle hook: the streamlet is paused.
    fn on_pause(&mut self) {}

    /// Lifecycle hook: the streamlet ends.
    fn on_end(&mut self) {}

    /// Clears per-stream state before the instance is returned to the pool.
    /// Stateless streamlets usually need nothing here.
    fn reset(&mut self) {}

    /// Control interface (the thesis's §8.2.1 extension): the coordinator
    /// sets an operation parameter ("the text compression streamlet might
    /// have parameters that determine compression rate"). Implementations
    /// return `Err` for unknown keys or invalid values; the default knows
    /// no parameters.
    fn control(&mut self, key: &str, value: &str) -> Result<(), CoreError> {
        Err(CoreError::NotFound {
            kind: "control parameter",
            name: format!("{key}={value}"),
        })
    }
}

/// Routing options: the runtime type check of §4.1 ("runtime checking, in
/// the form of matching the message types to the streamlet ports, can be
/// exercised to ensure consistency during operations").
#[derive(Clone)]
pub struct RouteOpts {
    /// The MIME lattice used for the check.
    pub registry: Arc<TypeRegistry>,
    /// When true, an emission whose content type does not specialize the
    /// target channel's type is suppressed and counted instead of posted.
    pub enforce_types: bool,
}

impl Default for RouteOpts {
    fn default() -> Self {
        RouteOpts {
            registry: Arc::new(TypeRegistry::standard()),
            enforce_types: false,
        }
    }
}

/// Lifecycle states of a streamlet instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LifecycleState {
    /// Constructed but not yet started.
    Created,
    /// Actively processing.
    Running,
    /// Suspended (reconfiguration step 2, Figure 7-4).
    Paused,
    /// Terminated; the worker thread has exited or will imminently.
    Ended,
    /// The logic panicked; the poisoned object was dropped and the task is
    /// parked awaiting a supervisor restart (see `supervisor.rs`).
    Faulted,
    /// The supervisor's restart budget is exhausted: the instance stays
    /// wired but will never process again unless reconfigured away.
    Quarantined,
}

/// Counters exposed by a handle.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamletStats {
    /// Messages processed.
    pub processed: u64,
    /// Messages emitted.
    pub emitted: u64,
    /// Emissions dropped because no channel was bound to the port.
    pub dropped_unrouted: u64,
    /// `process` invocations that returned an error.
    pub errors: u64,
    /// Emissions suppressed by the runtime type check.
    pub type_violations: u64,
    /// Panics caught in `process`/`control`/`on_activate`.
    pub faults: u64,
    /// Supervisor restarts applied to this instance.
    pub restarts: u64,
}

struct Shared {
    name: String,
    state: Mutex<LifecycleState>,
    cv: Condvar,
    notifier: Arc<Notifier>,
    /// Set by the worker while inside `process` (Fig 6-8 condition 2).
    processing: AtomicBool,
    /// Set by the worker when it has observed `Paused` and gone quiescent.
    pause_acked: AtomicBool,
    /// Set (under the state lock) once the task has finalized: `on_end` ran
    /// and the logic is parked back in the handle. `end()` waits on this
    /// instead of joining a thread, so it works under any executor.
    exited: AtomicBool,
    inputs: RwLock<Vec<(String, Arc<MessageQueue>)>>,
    outputs: RwLock<Vec<(String, Arc<MessageQueue>)>>,
    /// Monotonic generation of the `outputs` binding table, bumped *after*
    /// every mutation (`attach_out`/`detach_out`/`detach_all`). Readers of
    /// `route_memo` compare against it to invalidate stale entries, so the
    /// per-message hot path never re-resolves a port against the `RwLock`d
    /// table while the wiring is stable.
    route_epoch: AtomicU64,
    /// Per-port resolved routes, valid for one `route_epoch` generation.
    route_memo: Mutex<RouteMemo>,
    processed: AtomicU64,
    emitted: AtomicU64,
    dropped_unrouted: AtomicU64,
    errors: AtomicU64,
    pool: Arc<MessagePool>,
    mode: PayloadMode,
    session: Option<SessionId>,
    route_opts: RouteOpts,
    type_violations: AtomicU64,
    /// Pending control-interface commands, applied by the worker between
    /// messages: (key, value, result slot).
    controls: Mutex<Vec<ControlRequest>>,
    /// Messages whose `process`/`process_batch` panicked, stashed (with a
    /// per-message fault count) for redelivery after the supervisor
    /// restarts the instance — or, for the head entry, eviction to the
    /// dead-letter queue if it keeps faulting. Redelivered messages are
    /// always reprocessed one at a time so a poison message isolates to
    /// the front of the deque.
    redelivery: Mutex<VecDeque<(MimeMessage, u32)>>,
    /// Upper bound on messages drained per wake (1 = the paper's original
    /// per-message cadence; set via `StreamletHandle::set_batch_max`).
    batch_max: AtomicUsize,
    /// When set (pool executors), output posts never block the driving
    /// worker: a full downstream queue hands the payload back and it waits
    /// in `pending_out` instead, so a chain deeper than the worker count
    /// cannot deadlock with every worker stuck inside a post.
    nonblocking_outputs: AtomicBool,
    /// Outputs a full downstream queue refused, each with the absolute
    /// Figure 6-9 drop deadline it inherited at first refusal. Flushed (in
    /// order, per queue) before the task consumes any new input, so the
    /// buffer never exceeds one step's emissions and backpressure still
    /// propagates upstream.
    pending_out: Mutex<VecDeque<(Arc<MessageQueue>, Payload, Instant)>>,
    /// Cause of the most recent fault.
    last_fault: Mutex<Option<FaultCause>>,
    /// Fired from the executor thread when the instance faults; installed
    /// by the supervisor to enqueue restart work.
    fault_hook: Mutex<Option<FaultHook>>,
    faults: AtomicU64,
    restarts: AtomicU64,
    /// Session-keyed telemetry probe (observability plane). `get()` is a
    /// single atomic load, so the disabled path stays one branch per call.
    probe: OnceLock<QueueProbe>,
    /// Reused per-step buffers (memory plane). Exactly one driver runs a
    /// task at a time, so the mutex is uncontended; `step` moves the
    /// scratch out for the duration of the step and back at its end,
    /// which keeps the lock reentrancy-free. Buffers lent into a
    /// panicking `process` are lost with the unwind and self-heal to
    /// fresh (empty) vecs on the next step.
    scratch: Mutex<StepScratch>,
}

/// The per-task reusable buffers: input snapshot, drained payloads,
/// resolved messages, emission collection, retired port strings, and
/// per-queue output runs. All retain capacity across steps so the
/// steady-state hot path allocates nothing.
#[derive(Default)]
struct StepScratch {
    inputs: Vec<Arc<MessageQueue>>,
    payloads: Vec<Payload>,
    msgs: Vec<MimeMessage>,
    outputs: Vec<(String, MimeMessage)>,
    spare_strings: Vec<String>,
    runs: Vec<(Arc<MessageQueue>, Vec<Payload>)>,
    spare_runs: Vec<Vec<Payload>>,
}

/// Rendezvous slot a control requester waits on: result + wakeup.
type ControlSlot = Arc<(Mutex<Option<Result<(), CoreError>>>, Condvar)>;

/// Supervisor callback invoked (off the executor thread's unwind path)
/// whenever the instance faults.
type FaultHook = Box<dyn Fn(FaultCause) + Send + Sync>;

struct ControlRequest {
    key: String,
    value: String,
    done: ControlSlot,
}

/// Cached routing-table resolutions (satellite of the fusion PR): the
/// coordination plane mutates port wiring rarely (deploy, Figure 7-4
/// reconfiguration) while the execution plane resolves a port on every
/// emission, so each resolved port keeps its target list here until the
/// epoch moves. Port counts are tiny (1–2), so a `Vec` scan beats hashing.
#[derive(Default)]
struct RouteMemo {
    epoch: u64,
    entries: Vec<(String, Vec<Arc<MessageQueue>>)>,
}

impl Shared {
    /// Routes the emissions collected in `scratch.outputs` (drained in
    /// order), grouping payloads into per-queue runs so a batch of
    /// emissions to the same channel pays one lock acquisition. Run vecs
    /// and port strings retire into the scratch's spare pools — the
    /// steady-state path allocates nothing.
    fn route_outputs(&self, scratch: &mut StepScratch) {
        let StepScratch {
            outputs,
            spare_strings,
            runs,
            spare_runs,
            ..
        } = scratch;
        debug_assert!(runs.is_empty());
        for (mut port, msg) in outputs.drain(..) {
            let routed = self.with_route(&port, |targets| {
                let ty = self.route_opts.enforce_types.then(|| msg.content_type());
                let admit = |q: &Arc<MessageQueue>| match &ty {
                    Some(ty) => self.route_opts.registry.connectable(ty, &q.config().ty),
                    None => true,
                };
                let fanout = targets.iter().filter(|q| admit(q)).count();
                let suppressed = (targets.len() - fanout) as u64;
                if suppressed > 0 {
                    self.type_violations
                        .fetch_add(suppressed, Ordering::Relaxed);
                }
                if fanout == 0 {
                    return false;
                }
                match self.mode {
                    PayloadMode::Reference => {
                        let id = self.pool.insert(msg, fanout as u32);
                        for q in targets.iter().filter(|q| admit(q)) {
                            Self::push_run(runs, spare_runs, q, Payload::Ref(id));
                        }
                    }
                    PayloadMode::Value => {
                        for q in targets.iter().filter(|q| admit(q)) {
                            Self::push_run(runs, spare_runs, q, self.pool.wrap_copy(&msg));
                        }
                    }
                }
                true
            });
            if routed {
                self.emitted.fetch_add(1, Ordering::Relaxed);
            } else {
                // Runtime open circuit: §5.2.2's failure mode, observable.
                self.dropped_unrouted.fetch_add(1, Ordering::Relaxed);
            }
            port.clear();
            spare_strings.push(port);
        }
        let nonblocking = self.nonblocking_outputs.load(Ordering::Relaxed);
        for (q, mut payloads) in runs.drain(..) {
            if nonblocking {
                q.post_all_nowait_into(&mut payloads);
                if !payloads.is_empty() {
                    // Full queue — or an occupied rendezvous slot: park the
                    // tail with the drop deadline it would have waited out
                    // inside `post`, and yield the worker. `flush_pending`
                    // retries before any new input is consumed, woken by
                    // the queue's space listeners (for a sync channel,
                    // fired by the fetch that empties the slot).
                    let deadline = Instant::now() + q.full_wait();
                    let mut pending = self.pending_out.lock();
                    pending.extend(payloads.drain(..).map(|p| (q.clone(), p, deadline)));
                }
            } else if payloads.len() == 1 {
                if let Some(p) = payloads.pop() {
                    q.post(p);
                }
            } else {
                q.post_all_from(&mut payloads);
            }
            spare_runs.push(payloads);
        }
    }

    /// Resolves the channels bound to output `port` through the
    /// epoch-invalidated memo and hands the target slice to `f` under
    /// the memo lock (no per-emission clone of the target list). The
    /// epoch is loaded *before* the binding table is read, so a
    /// concurrent rewiring either invalidates what we cache (its bump
    /// lands after our load) or is what we cache — a memo entry can
    /// never outlive the next post-mutation lookup. The per-message type
    /// check (`enforce_types`) stays outside the memo: it depends on
    /// each message's content type, not on the wiring.
    fn with_route<R>(&self, port: &str, f: impl FnOnce(&[Arc<MessageQueue>]) -> R) -> R {
        let epoch = self.route_epoch.load(Ordering::Acquire);
        let mut memo = self.route_memo.lock();
        if memo.epoch != epoch {
            memo.entries.clear();
            memo.epoch = epoch;
        }
        if let Some(i) = memo.entries.iter().position(|(p, _)| p == port) {
            return f(&memo.entries[i].1);
        }
        let targets: Vec<Arc<MessageQueue>> = self
            .outputs
            .read()
            .iter()
            .filter(|(p, _)| p == port)
            .map(|(_, q)| q.clone())
            .collect();
        let i = memo.entries.len();
        memo.entries.push((port.to_string(), targets));
        f(&memo.entries[i].1)
    }

    /// Invalidate the route memo after an output-binding mutation.
    fn bump_route_epoch(&self) {
        self.route_epoch.fetch_add(1, Ordering::Release);
    }

    /// Retries every parked output in emission order; entries whose drop
    /// deadline has passed are accounted as `dropped_expired` on their
    /// queue.
    /// Returns `true` when the buffer ended up empty (the task may consume
    /// new input), `false` when something is still stuck behind a full
    /// queue.
    fn flush_pending(&self) -> bool {
        // The lock is held across the whole flush (every post is a
        // `post_nowait`, so nothing blocks under it): quiescence checks
        // must never observe an empty buffer while entries are mid-repost.
        let mut pending = self.pending_out.lock();
        if pending.is_empty() {
            return true;
        }
        let items = std::mem::take(&mut *pending);
        let mut stuck: VecDeque<(Arc<MessageQueue>, Payload, Instant)> = VecDeque::new();
        let now = Instant::now();
        for (q, payload, deadline) in items {
            // Figure 6-9: the wait budget `T` elapsed while the entry was
            // parked, so it drops — charged via `discard_expired`, the
            // single `dropped_expired` charge site — *before* any retry.
            // An expired entry must never race a successful late post
            // (which would deliver it *and* leave it eligible for a second
            // charge on a later flush) nor be charged once per flush round.
            if now >= deadline {
                q.discard_expired(payload);
                continue;
            }
            // Per-queue FIFO: once one of a queue's messages is stuck,
            // everything later for that queue stays parked behind it.
            if stuck.iter().any(|(sq, _, _)| Arc::ptr_eq(sq, &q)) {
                stuck.push_back((q, payload, deadline));
                continue;
            }
            match q.post_nowait(payload) {
                Ok(_) => {}
                Err(p) => stuck.push_back((q, p, deadline)),
            }
        }
        let empty = stuck.is_empty();
        // The single driving thread is the only writer, so nothing was
        // appended concurrently — the put-back preserves order.
        *pending = stuck;
        empty
    }

    /// True when a `flush_pending` would make progress right now: some
    /// parked output's queue has room (or a closed sink), or its drop
    /// deadline has passed. Deliberately *not* "buffer non-empty" — a task
    /// whose outputs are all stuck behind a still-full queue parks and
    /// waits for that queue's space wakeup instead of spinning through the
    /// pool's run queue (which starves the very consumer it waits on).
    fn pending_flushable(&self) -> bool {
        let pending = self.pending_out.lock();
        if pending.is_empty() {
            return false;
        }
        let now = Instant::now();
        let mut checked: Vec<*const MessageQueue> = Vec::new();
        for (q, p, deadline) in pending.iter() {
            // Per-queue FIFO: only each queue's first parked entry can
            // move; later ones sit behind it.
            let key = Arc::as_ptr(q);
            if checked.contains(&key) {
                continue;
            }
            checked.push(key);
            if now >= *deadline || q.has_space(p.buffered_len(&self.pool)) {
                return true;
            }
        }
        false
    }

    /// Appends a payload to the run for `q`, creating it on first use.
    fn push_run(
        runs: &mut Vec<(Arc<MessageQueue>, Vec<Payload>)>,
        spare_runs: &mut Vec<Vec<Payload>>,
        q: &Arc<MessageQueue>,
        payload: Payload,
    ) {
        if let Some((_, run)) = runs.iter_mut().find(|(rq, _)| Arc::ptr_eq(rq, q)) {
            run.push(payload);
        } else {
            let mut run = spare_runs.pop().unwrap_or_default();
            run.push(payload);
            runs.push((q.clone(), run));
        }
    }

    /// Test shim over `with_route` preserving the old clone-out signature.
    #[cfg(test)]
    fn resolve_route(&self, port: &str) -> Vec<Arc<MessageQueue>> {
        self.with_route(port, |targets| targets.to_vec())
    }

    /// Test shim over `route_outputs` for callers without a step scratch.
    #[cfg(test)]
    fn route_outputs_vec(&self, outs: Vec<(String, MimeMessage)>) {
        let mut scratch = StepScratch {
            outputs: outs,
            ..Default::default()
        };
        self.route_outputs(&mut scratch);
    }
}

/// A scheduled streamlet instance: logic + execution back end + port
/// bindings.
pub struct StreamletHandle {
    shared: Arc<Shared>,
    def_name: String,
    stateful: bool,
    logic_slot: Arc<Mutex<Option<Box<dyn StreamletLogic>>>>,
    executor: Arc<dyn Executor>,
    /// The live task, owned here so wake hooks (which hold only a `Weak`)
    /// can upgrade for as long as the streamlet runs. `None` before
    /// `start()` and after `end()`.
    task: Mutex<Option<Arc<StreamletTask>>>,
    /// True once `start()` handed a task to the executor; `end()` only
    /// waits for exit when something actually ran.
    started: AtomicBool,
}

impl StreamletHandle {
    /// Creates a handle in the `Created` state (no execution resources yet)
    /// with default routing options.
    pub fn new(
        name: impl Into<String>,
        def_name: impl Into<String>,
        stateful: bool,
        logic: Box<dyn StreamletLogic>,
        pool: Arc<MessagePool>,
        mode: PayloadMode,
        session: Option<SessionId>,
    ) -> Arc<Self> {
        Self::with_route_opts(
            name,
            def_name,
            stateful,
            logic,
            pool,
            mode,
            session,
            RouteOpts::default(),
        )
    }

    /// Creates a handle with explicit routing options (runtime type check).
    #[allow(clippy::too_many_arguments)]
    pub fn with_route_opts(
        name: impl Into<String>,
        def_name: impl Into<String>,
        stateful: bool,
        logic: Box<dyn StreamletLogic>,
        pool: Arc<MessagePool>,
        mode: PayloadMode,
        session: Option<SessionId>,
        route_opts: RouteOpts,
    ) -> Arc<Self> {
        Self::with_executor(
            name,
            def_name,
            stateful,
            logic,
            pool,
            mode,
            session,
            route_opts,
            default_executor(),
        )
    }

    /// Creates a handle scheduled by an explicit [`Executor`].
    #[allow(clippy::too_many_arguments)]
    pub fn with_executor(
        name: impl Into<String>,
        def_name: impl Into<String>,
        stateful: bool,
        logic: Box<dyn StreamletLogic>,
        pool: Arc<MessagePool>,
        mode: PayloadMode,
        session: Option<SessionId>,
        route_opts: RouteOpts,
        executor: Arc<dyn Executor>,
    ) -> Arc<Self> {
        Arc::new(StreamletHandle {
            shared: Arc::new(Shared {
                name: name.into(),
                state: Mutex::new(LifecycleState::Created),
                cv: Condvar::new(),
                notifier: Arc::new(Notifier::new()),
                processing: AtomicBool::new(false),
                pause_acked: AtomicBool::new(false),
                exited: AtomicBool::new(false),
                inputs: RwLock::new(Vec::new()),
                outputs: RwLock::new(Vec::new()),
                route_epoch: AtomicU64::new(0),
                route_memo: Mutex::new(RouteMemo::default()),
                processed: AtomicU64::new(0),
                emitted: AtomicU64::new(0),
                dropped_unrouted: AtomicU64::new(0),
                errors: AtomicU64::new(0),
                pool,
                mode,
                session,
                route_opts,
                type_violations: AtomicU64::new(0),
                controls: Mutex::new(Vec::new()),
                redelivery: Mutex::new(VecDeque::new()),
                batch_max: AtomicUsize::new(1),
                nonblocking_outputs: AtomicBool::new(false),
                pending_out: Mutex::new(VecDeque::new()),
                last_fault: Mutex::new(None),
                fault_hook: Mutex::new(None),
                faults: AtomicU64::new(0),
                restarts: AtomicU64::new(0),
                probe: OnceLock::new(),
                scratch: Mutex::new(StepScratch::default()),
            }),
            def_name: def_name.into(),
            stateful,
            logic_slot: Arc::new(Mutex::new(Some(logic))),
            executor,
            task: Mutex::new(None),
            started: AtomicBool::new(false),
        })
    }

    /// Diagnostic name of the executor scheduling this handle.
    pub fn executor_name(&self) -> &'static str {
        self.executor.name()
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Definition name.
    pub fn def_name(&self) -> &str {
        &self.def_name
    }

    /// Whether the instance keeps per-stream state (not poolable).
    pub fn is_stateful(&self) -> bool {
        self.stateful
    }

    /// Current lifecycle state.
    pub fn state(&self) -> LifecycleState {
        *self.shared.state.lock()
    }

    /// True while the worker is inside `process` (Fig 6-8 condition).
    pub fn is_processing(&self) -> bool {
        self.shared.processing.load(Ordering::Acquire)
    }

    /// Outputs currently parked behind full downstream queues (pool
    /// executors only; always 0 under dedicated-thread drivers).
    pub fn pending_outputs(&self) -> usize {
        self.shared.pending_out.lock().len()
    }

    /// Total body bytes held in the overflow buffer (the memory the
    /// instance itself is holding, as opposed to bytes parked in channels).
    pub fn pending_output_bytes(&self) -> usize {
        self.shared
            .pending_out
            .lock()
            .iter()
            .map(|(_, p, _)| p.buffered_len(&self.shared.pool))
            .sum()
    }

    /// True when every bound input queue is empty (Fig 6-8 condition).
    pub fn inputs_empty(&self) -> bool {
        self.shared.inputs.read().iter().all(|(_, q)| q.is_empty())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> StreamletStats {
        StreamletStats {
            processed: self.shared.processed.load(Ordering::Relaxed),
            emitted: self.shared.emitted.load(Ordering::Relaxed),
            dropped_unrouted: self.shared.dropped_unrouted.load(Ordering::Relaxed),
            errors: self.shared.errors.load(Ordering::Relaxed),
            type_violations: self.shared.type_violations.load(Ordering::Relaxed),
            faults: self.shared.faults.load(Ordering::Relaxed),
            restarts: self.shared.restarts.load(Ordering::Relaxed),
        }
    }

    /// Sets a streamlet operation parameter through the control interface
    /// (§8.2.1). The command is executed by the worker thread between
    /// messages; this call blocks (up to `timeout`) for the result. Data
    /// ports and the control interface are the streamlet's only two ways
    /// to communicate with the outside world.
    pub fn set_parameter(
        &self,
        key: &str,
        value: &str,
        timeout: Duration,
    ) -> Result<(), CoreError> {
        let s = *self.shared.state.lock();
        if matches!(s, LifecycleState::Ended | LifecycleState::Quarantined) {
            return Err(CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: format!("cannot control a streamlet in {s:?}"),
            });
        }
        let done: ControlSlot = Arc::new((Mutex::new(None), Condvar::new()));
        self.shared.controls.lock().push(ControlRequest {
            key: key.to_string(),
            value: value.to_string(),
            done: done.clone(),
        });
        self.shared.notifier.notify();
        let (slot, cv) = &*done;
        let mut guard = slot.lock();
        let deadline = Instant::now() + timeout;
        while guard.is_none() {
            if cv.wait_until(&mut guard, deadline).timed_out() {
                return Err(CoreError::Lifecycle {
                    name: self.shared.name.clone(),
                    message: "control command not serviced in time".into(),
                });
            }
        }
        guard.take().expect("checked above")
    }

    // --- port wiring (coordination plane only) ---------------------------

    /// Binds a channel to an input port (the paper's `setIn`): increments
    /// the queue's consumer count and subscribes the worker's notifier.
    pub fn attach_in(&self, port: &str, q: &Arc<MessageQueue>) {
        q.attach_sink();
        q.add_listener(self.shared.notifier.clone());
        self.shared
            .inputs
            .write()
            .push((port.to_string(), q.clone()));
        self.shared.notifier.notify();
    }

    /// Binds a channel to an output port (the paper's `setOut`). The
    /// worker's notifier also subscribes to the queue's *space* wakeups,
    /// so a pool-driven task with outputs parked behind this queue wakes
    /// when room frees instead of polling.
    pub fn attach_out(&self, port: &str, q: &Arc<MessageQueue>) {
        q.attach_source();
        q.add_space_listener(self.shared.notifier.clone());
        self.shared
            .outputs
            .write()
            .push((port.to_string(), q.clone()));
        self.shared.bump_route_epoch();
    }

    /// Unbinds the channel named `chan` from input `port`.
    pub fn detach_in(&self, port: &str, chan: &str) -> Result<(), CoreError> {
        let mut inputs = self.shared.inputs.write();
        let idx = inputs
            .iter()
            .position(|(p, q)| p == port && q.config().name == chan)
            .ok_or_else(|| CoreError::NotFound {
                kind: "input binding",
                name: format!("{}.{port}<-{chan}", self.shared.name),
            })?;
        let (_, q) = inputs.remove(idx);
        drop(inputs);
        q.remove_listener(&self.shared.notifier);
        q.detach_sink()
    }

    /// Unbinds the channel named `chan` from output `port`.
    pub fn detach_out(&self, port: &str, chan: &str) -> Result<(), CoreError> {
        let mut outputs = self.shared.outputs.write();
        let idx = outputs
            .iter()
            .position(|(p, q)| p == port && q.config().name == chan)
            .ok_or_else(|| CoreError::NotFound {
                kind: "output binding",
                name: format!("{}.{port}->{chan}", self.shared.name),
            })?;
        let (_, q) = outputs.remove(idx);
        drop(outputs);
        self.shared.bump_route_epoch();
        q.remove_space_listener(&self.shared.notifier);
        q.detach_source()
    }

    /// Detaches every binding (used during teardown). Errors (KK channels)
    /// are returned after best-effort detachment of the rest; bindings the
    /// channel *refused* to release stay recorded on the handle, so the
    /// handle's view never disagrees with the queue's attachment counts.
    pub fn detach_all(&self) -> Result<(), CoreError> {
        let mut first_err = None;
        {
            let mut inputs = self.shared.inputs.write();
            let mut kept = Vec::new();
            for (port, q) in inputs.drain(..) {
                q.remove_listener(&self.shared.notifier);
                match q.detach_sink() {
                    Ok(()) => {}
                    Err(e) => {
                        // Restore the listener along with the binding.
                        q.add_listener(self.shared.notifier.clone());
                        first_err.get_or_insert(e);
                        kept.push((port, q));
                    }
                }
            }
            *inputs = kept;
        }
        {
            let mut outputs = self.shared.outputs.write();
            let mut kept = Vec::new();
            for (port, q) in outputs.drain(..) {
                q.remove_space_listener(&self.shared.notifier);
                match q.detach_source() {
                    Ok(()) => {}
                    Err(e) => {
                        q.add_space_listener(self.shared.notifier.clone());
                        first_err.get_or_insert(e);
                        kept.push((port, q));
                    }
                }
            }
            *outputs = kept;
        }
        self.shared.bump_route_epoch();
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Input bindings snapshot (port, channel name).
    pub fn input_bindings(&self) -> Vec<(String, String)> {
        self.shared
            .inputs
            .read()
            .iter()
            .map(|(p, q)| (p.clone(), q.config().name.clone()))
            .collect()
    }

    /// Output bindings snapshot (port, channel name).
    pub fn output_bindings(&self) -> Vec<(String, String)> {
        self.shared
            .outputs
            .read()
            .iter()
            .map(|(p, q)| (p.clone(), q.config().name.clone()))
            .collect()
    }

    /// Input bindings with their live queues (port, queue). Fission uses
    /// this to hand a fused unit's exact attachments to the re-materialized
    /// member instances before the unit detaches.
    pub fn bound_inputs(&self) -> Vec<(String, Arc<MessageQueue>)> {
        self.shared.inputs.read().clone()
    }

    /// Output bindings with their live queues (port, queue).
    pub fn bound_outputs(&self) -> Vec<(String, Arc<MessageQueue>)> {
        self.shared.outputs.read().clone()
    }

    /// Retries parked outputs once (see `flush_pending`); returns `true`
    /// when the overflow buffer is empty afterwards. Fission drains a
    /// paused unit's parked emissions through this before re-materializing
    /// its members, so no in-flight output is lost with the old handle.
    pub fn flush_pending_outputs(&self) -> bool {
        self.shared.flush_pending()
    }

    /// Moves this handle's entire redelivery stash out (message, fault
    /// count), preserving order. Fission transplants the stash into the
    /// first re-materialized member so faulted-batch replays survive the
    /// split.
    pub fn drain_redelivery(&self) -> Vec<(MimeMessage, u32)> {
        self.shared.redelivery.lock().drain(..).collect()
    }

    /// Prepends messages to the redelivery stash in order (the transplant
    /// counterpart of [`Self::drain_redelivery`]). Redelivered messages
    /// are processed before fresh input, one at a time.
    pub fn stash_redelivery(&self, msgs: Vec<(MimeMessage, u32)>) {
        let mut redelivery = self.shared.redelivery.lock();
        for entry in msgs.into_iter().rev() {
            redelivery.push_front(entry);
        }
        drop(redelivery);
        self.shared.notifier.notify();
    }

    // --- lifecycle ---------------------------------------------------------

    /// Starts execution (`Created` → `Running`): hands a [`StreamletTask`]
    /// to the handle's executor.
    pub fn start(self: &Arc<Self>) -> Result<(), CoreError> {
        let mut state = self.shared.state.lock();
        if *state != LifecycleState::Created {
            return Err(CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: format!("cannot start from {:?}", *state),
            });
        }
        let logic = self
            .logic_slot
            .lock()
            .take()
            .ok_or_else(|| CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: "logic already taken".into(),
            })?;
        *state = LifecycleState::Running;
        drop(state);

        let task = Arc::new(StreamletTask {
            shared: self.shared.clone(),
            park: self.logic_slot.clone(),
            running: Mutex::new(Some(logic)),
            activated: AtomicBool::new(false),
            scheduled: AtomicBool::new(false),
        });
        *self.task.lock() = Some(task.clone());
        self.started.store(true, Ordering::Release);
        self.executor.launch(task);
        Ok(())
    }

    /// Requests suspension and returns once the worker is quiescent (not
    /// inside `process`). This is step 2 of the Figure 7-4 reconfiguration.
    pub fn pause_and_wait(&self, timeout: Duration) -> Result<(), CoreError> {
        let t0 = Instant::now();
        {
            let mut state = self.shared.state.lock();
            match *state {
                LifecycleState::Running => {
                    *state = LifecycleState::Paused;
                    self.shared.pause_acked.store(false, Ordering::Release);
                    self.shared.cv.notify_all();
                }
                LifecycleState::Paused => {}
                // No worker is inside `process` for a faulted/quarantined
                // instance: it is already quiescent for reconfiguration.
                LifecycleState::Faulted | LifecycleState::Quarantined => return Ok(()),
                other => {
                    return Err(CoreError::Lifecycle {
                        name: self.shared.name.clone(),
                        message: format!("cannot pause from {other:?}"),
                    });
                }
            }
        }
        self.shared.notifier.notify();
        let deadline = t0 + timeout;
        while !self.shared.pause_acked.load(Ordering::Acquire) {
            // A fault can supersede the pause; the instance is then
            // quiescent anyway.
            if matches!(
                self.state(),
                LifecycleState::Faulted | LifecycleState::Quarantined
            ) {
                return Ok(());
            }
            if Instant::now() >= deadline {
                return Err(CoreError::Timeout {
                    waited: t0.elapsed(),
                    instance: self.shared.name.clone(),
                });
            }
            std::thread::yield_now();
        }
        Ok(())
    }

    /// Resumes a paused streamlet (Figure 7-4 step 6).
    pub fn activate(&self) -> Result<(), CoreError> {
        let mut state = self.shared.state.lock();
        match *state {
            LifecycleState::Paused => {
                *state = LifecycleState::Running;
                self.shared.pause_acked.store(false, Ordering::Release);
                self.shared.cv.notify_all();
                drop(state);
                self.shared.notifier.notify();
                Ok(())
            }
            LifecycleState::Running => Ok(()),
            other => Err(CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: format!("cannot activate from {other:?}"),
            }),
        }
    }

    /// Ends the streamlet: the task finalizes and the logic object is
    /// parked back in the handle (retrievable via [`Self::take_logic`] for
    /// pooling). Blocks until the task has exited, whichever executor
    /// drives it.
    pub fn end(&self) {
        {
            let mut state = self.shared.state.lock();
            if *state == LifecycleState::Ended {
                return;
            }
            *state = LifecycleState::Ended;
            self.shared.cv.notify_all();
        }
        self.shared.notifier.notify();
        if !self.started.load(Ordering::Acquire) {
            return;
        }
        while !self.shared.exited.load(Ordering::Acquire) {
            // Re-kick the scheduler each round in case a wakeup was lost.
            self.shared.notifier.notify();
            let mut state = self.shared.state.lock();
            if self.shared.exited.load(Ordering::Acquire) {
                break;
            }
            self.shared
                .cv
                .wait_for(&mut state, Duration::from_millis(20));
        }
        // The task has finalized; release our ownership of it.
        *self.task.lock() = None;
    }

    /// Takes the logic object back after `end()` (or before `start()`).
    pub fn take_logic(&self) -> Option<Box<dyn StreamletLogic>> {
        self.logic_slot.lock().take()
    }

    // --- supervision (see `supervisor.rs`) -------------------------------

    /// Installs the callback fired (from the executor thread) when the
    /// instance faults. The supervisor uses this to enqueue restart work;
    /// the hook must be cheap and must not block.
    pub fn set_fault_hook(&self, hook: impl Fn(FaultCause) + Send + Sync + 'static) {
        *self.shared.fault_hook.lock() = Some(Box::new(hook));
    }

    /// Removes the fault hook.
    pub fn clear_fault_hook(&self) {
        *self.shared.fault_hook.lock() = None;
    }

    /// The most recent fault's cause, if any.
    pub fn last_fault(&self) -> Option<FaultCause> {
        self.shared.last_fault.lock().clone()
    }

    /// How many times the head of the redelivery queue has faulted this
    /// instance (0 when nothing is stashed). Redelivered messages are
    /// reprocessed one at a time, so only the head accumulates faults —
    /// messages stashed behind it (the rest of a faulted batch) carry
    /// count 0 until they reach the front.
    pub fn redelivery_faults(&self) -> u32 {
        self.shared
            .redelivery
            .lock()
            .front()
            .map(|(_, n)| *n)
            .unwrap_or(0)
    }

    /// Removes the head redelivery message (poison eviction): the next
    /// restart then resumes from the rest of the stash — or the input
    /// queues — instead of replaying the poison message.
    pub fn take_redelivery(&self) -> Option<(MimeMessage, u32)> {
        self.shared.redelivery.lock().pop_front()
    }

    /// Sets the per-wake batch ceiling (1 = the paper's per-message
    /// cadence). Takes effect from the next wake.
    pub fn set_batch_max(&self, max: usize) {
        self.shared.batch_max.store(max.max(1), Ordering::Relaxed);
    }

    /// Installs the session-keyed telemetry probe. First install wins;
    /// later calls are no-ops (the probe is immutable once published to
    /// the worker).
    pub fn set_probe(&self, probe: QueueProbe) {
        let _ = self.shared.probe.set(probe);
    }

    /// Installs fresh logic into a `Faulted` instance and resumes it in
    /// place. Channel bindings live on the handle and are untouched, so the
    /// restarted instance keeps its exact position in the stream topology.
    pub fn restart_with(&self, logic: Box<dyn StreamletLogic>) -> Result<(), CoreError> {
        let task = self.task.lock().clone();
        let Some(task) = task else {
            return Err(CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: "no live task to restart".into(),
            });
        };
        {
            // Lock order matches `pump`: running slot, then state.
            let mut slot = task.running.lock();
            let mut state = self.shared.state.lock();
            if *state != LifecycleState::Faulted {
                return Err(CoreError::Lifecycle {
                    name: self.shared.name.clone(),
                    message: format!("cannot restart from {:?}", *state),
                });
            }
            *slot = Some(logic);
            // The fresh logic gets its own `on_activate`.
            task.activated.store(false, Ordering::Release);
            self.shared.pause_acked.store(false, Ordering::Release);
            *state = LifecycleState::Running;
            self.shared.restarts.fetch_add(1, Ordering::Relaxed);
            self.shared.cv.notify_all();
        }
        self.shared.notifier.notify();
        Ok(())
    }

    /// Gives up on a `Faulted` instance (`Faulted` → `Quarantined`): it
    /// stays wired but processes nothing until a reconfiguration bypasses
    /// or removes it. Also accepted from `Created` — quarantine-fission
    /// re-materializes the faulted member of a fused unit as a discrete,
    /// never-started instance that must carry the quarantine over.
    pub fn quarantine(&self) -> Result<(), CoreError> {
        let mut state = self.shared.state.lock();
        match *state {
            LifecycleState::Faulted | LifecycleState::Created => {
                *state = LifecycleState::Quarantined;
                self.shared.cv.notify_all();
                drop(state);
                self.shared.notifier.notify();
                Ok(())
            }
            LifecycleState::Quarantined => Ok(()),
            other => Err(CoreError::Lifecycle {
                name: self.shared.name.clone(),
                message: format!("cannot quarantine from {other:?}"),
            }),
        }
    }
}

/// How a [`StreamletTask::pump`] call left the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PumpOutcome {
    /// Budget exhausted with work possibly remaining — reschedule.
    More,
    /// Nothing runnable right now (idle inputs, paused, or not started).
    Idle,
    /// The streamlet ended and its logic is parked; never reschedule.
    Ended,
}

/// The executable unit an [`Executor`] drives: the streamlet's shared
/// state plus its logic object. Exactly one driver runs a task at a time
/// (a dedicated thread via [`Self::run_blocking`], or pool workers via
/// [`Self::pump`] serialized by the scheduling mark).
pub struct StreamletTask {
    shared: Arc<Shared>,
    /// The handle's slot: the logic is parked back here at end for pooling.
    park: Arc<Mutex<Option<Box<dyn StreamletLogic>>>>,
    /// The logic while the task is live; `None` once finalized.
    running: Mutex<Option<Box<dyn StreamletLogic>>>,
    /// First-execution flag: `on_activate` fires exactly once.
    activated: AtomicBool,
    /// Run-queue membership mark (worker-pool scheduling protocol).
    scheduled: AtomicBool,
}

impl StreamletTask {
    /// Instance name (diagnostics, thread naming).
    pub fn name(&self) -> &str {
        &self.shared.name
    }

    /// Installs a callback fired on every wakeup source (queue post,
    /// lifecycle transition, control command). Worker pools use this to
    /// move the task onto their run-queue.
    pub fn set_wake_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        self.shared.notifier.set_hook(hook);
    }

    /// Removes the wake hook installed by [`Self::set_wake_hook`].
    pub fn clear_wake_hook(&self) {
        self.shared.notifier.clear_hook();
    }

    /// Atomically marks the task as queued; returns `true` when the caller
    /// won the mark and must enqueue it.
    pub fn try_mark_scheduled(&self) -> bool {
        !self.scheduled.swap(true, Ordering::AcqRel)
    }

    /// Clears the run-queue membership mark (after a pump completes).
    pub fn clear_scheduled(&self) {
        self.scheduled.store(false, Ordering::Release);
    }

    /// Re-arms the coalescing wake notifier: the next `notify` fires the
    /// wake hook again. Pool workers call this after a pump, before the
    /// final `has_pending_work` re-check, so a post that raced the drain
    /// either re-fires the hook or is caught by the re-check.
    pub fn disarm_wake(&self) {
        self.shared.notifier.disarm();
    }

    /// Switches output posting to the non-blocking pending-buffer
    /// discipline. Pool executors set this at launch: their workers must
    /// never park inside a downstream `post`, or a backed-up chain deeper
    /// than the pool eats every worker and deadlocks until the drop
    /// deadline. Dedicated-thread drivers keep the paper's blocking posts.
    pub fn set_nonblocking_outputs(&self, on: bool) {
        self.shared.nonblocking_outputs.store(on, Ordering::Relaxed);
    }

    /// True when a pump would make progress: unserviced lifecycle
    /// transition, pending control command, or a non-empty input.
    pub fn has_pending_work(&self) -> bool {
        let state = *self.shared.state.lock();
        match state {
            LifecycleState::Ended => !self.shared.exited.load(Ordering::Acquire),
            LifecycleState::Paused => !self.shared.pause_acked.load(Ordering::Acquire),
            LifecycleState::Created => false,
            // A faulted/quarantined task has nothing to run until the
            // supervisor's `restart_with` moves it back to Running (which
            // notifies, so the wake hook reschedules it).
            LifecycleState::Faulted | LifecycleState::Quarantined => false,
            LifecycleState::Running => {
                if !self.shared.controls.lock().is_empty() {
                    return true;
                }
                // At the parked-output cap a step would bail immediately
                // (see the flush gate in `step`), so non-empty inputs are
                // not runnable work — counting them would hot-spin every
                // backpressured task through the run queue and starve the
                // consumers that could actually free space. The space
                // listener re-arms the wake hook when room frees up.
                let batch_max = self.shared.batch_max.load(Ordering::Relaxed).max(1);
                if self.shared.pending_out.lock().len() >= batch_max {
                    return self.shared.pending_flushable();
                }
                !self.shared.redelivery.lock().is_empty()
                    || self.shared.pending_flushable()
                    || self.shared.inputs.read().iter().any(|(_, q)| !q.is_empty())
            }
        }
    }

    /// Dedicated-thread driver: blocks on the notifier when idle and only
    /// returns once the streamlet ends (the paper's `Streamlet.run()`).
    ///
    /// A panic in the logic does **not** unwind out of this function: the
    /// poisoned logic object is dropped, the instance goes `Faulted`, and
    /// the thread parks until the supervisor installs fresh logic via
    /// [`StreamletHandle::restart_with`] (or `end()` terminates it).
    pub fn run_blocking(&self) {
        let Some(mut logic) = self.running.lock().take() else {
            return;
        };
        let shared = &self.shared;
        let idle_wait = Duration::from_millis(5);
        loop {
            let mut faulted = !self.activate_logic(logic.as_mut());
            while !faulted {
                // Snapshot before inspecting any state: a notify issued
                // while we are checking queues/lifecycle is then caught by
                // wait_unless.
                let notified = shared.notifier.snapshot();
                // Lifecycle gate.
                {
                    let mut state = shared.state.lock();
                    loop {
                        match *state {
                            LifecycleState::Running => break,
                            LifecycleState::Paused => {
                                if !shared.pause_acked.swap(true, Ordering::AcqRel) {
                                    logic.on_pause();
                                }
                                shared.cv.wait(&mut state);
                            }
                            LifecycleState::Ended => {
                                drop(state);
                                self.finalize(logic);
                                return;
                            }
                            LifecycleState::Created => {
                                shared.cv.wait(&mut state);
                            }
                            // Only this driver's own step/controls fault
                            // the task, and those exit the loop below —
                            // but tolerate external transitions too.
                            LifecycleState::Faulted | LifecycleState::Quarantined => {
                                faulted = true;
                                break;
                            }
                        }
                    }
                }
                if faulted {
                    break;
                }
                if !self.service_controls(logic.as_mut()) {
                    // A control handler panicked: state is already Faulted.
                    break;
                }
                match self.step(logic.as_mut()) {
                    Step::Progress => {}
                    Step::Idle => shared.notifier.wait_unless(notified, idle_wait),
                    Step::Fault => faulted = true,
                }
            }
            // The logic object is poisoned: drop it and park until the
            // supervisor installs a fresh one (or `end()` arrives).
            drop(logic);
            logic = loop {
                let ended = {
                    let mut state = shared.state.lock();
                    loop {
                        match *state {
                            LifecycleState::Running => break false,
                            LifecycleState::Ended => break true,
                            _ => shared.cv.wait(&mut state),
                        }
                    }
                };
                if ended {
                    self.finalize_empty();
                    return;
                }
                if let Some(fresh) = self.running.lock().take() {
                    break fresh;
                }
                // Running with an empty slot: a wakeup raced the restart
                // installing the logic; go around.
                std::thread::yield_now();
            };
            // Loop: `restart_with` cleared `activated`, so the fresh logic
            // gets its `on_activate`.
        }
    }

    /// Pool-worker driver: runs up to `budget` messages without ever
    /// blocking, then reports how it left the task. Lifecycle handling
    /// mirrors [`Self::run_blocking`] except that instead of waiting on
    /// condition variables the task goes [`PumpOutcome::Idle`] and relies
    /// on the wake hook to be rescheduled.
    pub fn pump(&self, budget: usize) -> PumpOutcome {
        // Re-arm wakeups for the work we are about to drain: posts from
        // here on must fire the wake hook again (`Notifier::notify`
        // coalesces while armed), and anything posted before this line is
        // observed by the drain below.
        self.shared.notifier.disarm();
        let mut slot = self.running.lock();
        if slot.is_none() {
            if self.shared.exited.load(Ordering::Acquire) {
                // Already finalized.
                return PumpOutcome::Ended;
            }
            // The poisoned logic was dropped by a fault. Keep servicing
            // lifecycle transitions: `end()` still needs the exit
            // published, and until then the task just idles awaiting a
            // supervisor restart. (A task driven by `run_blocking` also
            // has an empty slot, but executors never mix drivers.)
            let state = { *self.shared.state.lock() };
            return match state {
                LifecycleState::Ended => {
                    drop(slot);
                    self.finalize_empty();
                    PumpOutcome::Ended
                }
                _ => PumpOutcome::Idle,
            };
        }
        if !self.activate_logic(slot.as_mut().expect("checked").as_mut()) {
            drop(slot.take());
            return PumpOutcome::Idle;
        }
        for _ in 0..budget.max(1) {
            // Copy the state out so the guard drops before the arms run:
            // the `Ended` arm's finalize re-locks `state`.
            let state = { *self.shared.state.lock() };
            match state {
                LifecycleState::Running => {}
                LifecycleState::Paused => {
                    if !self.shared.pause_acked.swap(true, Ordering::AcqRel) {
                        slot.as_mut().expect("checked").on_pause();
                    }
                    return PumpOutcome::Idle;
                }
                LifecycleState::Ended => {
                    let logic = slot.take().expect("checked");
                    drop(slot);
                    self.finalize(logic);
                    return PumpOutcome::Ended;
                }
                LifecycleState::Created => return PumpOutcome::Idle,
                LifecycleState::Faulted | LifecycleState::Quarantined => {
                    return PumpOutcome::Idle;
                }
            }
            let logic = slot.as_mut().expect("checked");
            if !self.service_controls(logic.as_mut()) {
                drop(slot.take());
                return PumpOutcome::Idle;
            }
            let logic = slot.as_mut().expect("checked");
            match self.step(logic.as_mut()) {
                Step::Progress => {}
                Step::Idle => return PumpOutcome::Idle,
                Step::Fault => {
                    drop(slot.take());
                    return PumpOutcome::Idle;
                }
            }
        }
        PumpOutcome::More
    }

    /// Fires `on_activate` exactly once per (re)start. A panic there is a
    /// fault like any other; returns `false` when the logic is poisoned.
    fn activate_logic(&self, logic: &mut dyn StreamletLogic) -> bool {
        if self.activated.swap(true, Ordering::AcqRel) {
            return true;
        }
        match std::panic::catch_unwind(AssertUnwindSafe(|| logic.on_activate())) {
            Ok(()) => true,
            Err(payload) => {
                self.fault(FaultCause::Panic(panic_message(payload.as_ref())));
                false
            }
        }
    }

    /// Services pending control commands (§8.2.1) between messages.
    /// Returns `false` when a control handler panicked (the task faulted;
    /// the caller must drop the logic).
    fn service_controls(&self, logic: &mut dyn StreamletLogic) -> bool {
        loop {
            let req = {
                let mut controls = self.shared.controls.lock();
                if controls.is_empty() {
                    break;
                }
                controls.remove(0)
            };
            let outcome =
                std::panic::catch_unwind(AssertUnwindSafe(|| logic.control(&req.key, &req.value)));
            let (slot, cv) = &*req.done;
            match outcome {
                Ok(result) => {
                    *slot.lock() = Some(result);
                    cv.notify_all();
                }
                Err(payload) => {
                    let text = panic_message(payload.as_ref());
                    // The requester gets an error rather than a timeout.
                    *slot.lock() = Some(Err(CoreError::Process {
                        streamlet: self.shared.name.clone(),
                        message: format!("control handler panicked: {text}"),
                    }));
                    cv.notify_all();
                    self.fault(FaultCause::ControlPanic(text));
                    return false;
                }
            }
        }
        true
    }

    /// Fetches up to `batch_max` messages round-robin and processes them
    /// inside panic boundaries. A stashed redelivery message (from a
    /// previous fault) takes priority over fresh input and is always
    /// reprocessed **alone** — one message, one panic boundary — so a
    /// restarted instance resumes exactly where it failed and a poison
    /// message isolates to the front of the redelivery queue.
    fn step(&self, logic: &mut dyn StreamletLogic) -> Step {
        // Borrow the task's scratch buffers for the duration of the step.
        // Only this task's driver ever steps it, so the lock is always
        // uncontended; `take`/restore (rather than holding the guard)
        // keeps the buffers out of the panic boundary's reach and makes a
        // poisoning panic merely lose one set of buffers.
        let mut scratch = std::mem::take(&mut *self.shared.scratch.lock());
        let step = self.step_inner(logic, &mut scratch);
        *self.shared.scratch.lock() = scratch;
        step
    }

    fn step_inner(&self, logic: &mut dyn StreamletLogic, scratch: &mut StepScratch) -> Step {
        let shared = &self.shared;
        // Outputs parked behind a full queue go first. A still-stuck
        // buffer does not gate input outright — demanding a fully empty
        // buffer turns a backpressured chain into a lockstep wave, one
        // scheduling round-trip per batch per hop. Instead the task keeps
        // consuming while the backlog is under one batch, so the buffer
        // acts as a bounded overflow extension of the downstream queue
        // (≤ one batch parked + one step's emissions) and the pipeline
        // stays full.
        let flushed = shared.flush_pending();
        let batch_max = shared.batch_max.load(Ordering::Relaxed).max(1);
        if !flushed && shared.pending_out.lock().len() >= batch_max {
            return Step::Idle;
        }
        let pending = shared.redelivery.lock().pop_front();
        if let Some((msg, prior_faults)) = pending {
            return self.process_one(logic, msg, prior_faults, scratch);
        }

        scratch.inputs.clear();
        scratch
            .inputs
            .extend(shared.inputs.read().iter().map(|(_, q)| q.clone()));
        scratch.payloads.clear();
        {
            let StepScratch {
                inputs, payloads, ..
            } = &mut *scratch;
            for q in inputs.iter() {
                if payloads.len() >= batch_max {
                    break;
                }
                if batch_max == 1 {
                    // The paper's per-message cadence.
                    if let FetchResult::Msg(p) = q.try_fetch() {
                        payloads.push(p);
                        break;
                    }
                } else {
                    q.take_batch_into(payloads, batch_max - payloads.len(), BATCH_BYTE_BUDGET);
                }
            }
        }
        if scratch.payloads.is_empty() {
            return Step::Idle;
        }
        scratch.msgs.clear();
        {
            let StepScratch { payloads, msgs, .. } = &mut *scratch;
            for p in payloads.drain(..) {
                if let Some(msg) = shared.pool.resolve(p) {
                    msgs.push(msg);
                }
                // Dangling references still count as progress: the slots
                // are drained.
            }
        }
        if scratch.msgs.is_empty() {
            return Step::Progress;
        }

        if scratch.msgs.len() > 1 && logic.supports_batch() {
            // `process_batch` consumes its Vec by value (public logic
            // API), so the batch path gives up this allocation — the
            // scratch vec self-heals as an empty Default on the next step.
            let msgs = std::mem::take(&mut scratch.msgs);
            return self.process_batched(logic, msgs, scratch);
        }
        // Consume front-to-back by popping from the reversed vec: each
        // message is moved out whole, and the unprocessed tail stays in
        // the scratch for the fault path below.
        scratch.msgs.reverse();
        while let Some(msg) = scratch.msgs.pop() {
            if let Step::Fault = self.process_one(logic, msg, 0, scratch) {
                // `process_one` stashed the faulted message at the front;
                // queue the unprocessed tail behind it, in order.
                let mut redelivery = shared.redelivery.lock();
                for rest in scratch.msgs.drain(..).rev() {
                    redelivery.push_back((rest, 0));
                }
                return Step::Fault;
            }
        }
        Step::Progress
    }

    /// Processes one message inside its own panic boundary (the paper's
    /// per-message contract). On panic the message is stashed at the front
    /// of the redelivery queue with an incremented fault count.
    fn process_one(
        &self,
        logic: &mut dyn StreamletLogic,
        msg: MimeMessage,
        prior_faults: u32,
        scratch: &mut StepScratch,
    ) -> Step {
        let shared = &self.shared;
        // Keep a handle on the message so a panic can stash it for
        // redelivery (the body is `Bytes`; this clone is cheap).
        let replay = msg.clone();
        let t0 = shared
            .probe
            .get()
            .filter(|p| p.sample_timing())
            .map(|_| Instant::now());
        shared.processing.store(true, Ordering::Release);
        // Lend the scratch's output and spare-string buffers to the ctx so
        // steady-state emission reuses last step's allocations. A panic
        // loses the lent buffers (the empty `take` leftovers self-heal on
        // the next step).
        let outputs = std::mem::take(&mut scratch.outputs);
        let spare = std::mem::take(&mut scratch.spare_strings);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut ctx =
                StreamletCtx::with_buffers(&shared.name, shared.session.as_ref(), outputs, spare);
            let result = logic.process(msg, &mut ctx);
            (result, ctx.into_parts())
        }));
        // `processing` stays up through routing: until the emissions land
        // in their queues the message is still in flight through this
        // instance, and both Fig 6-8 safe removal and `RunningStream::
        // drain` rely on "not processing && queues empty" meaning nothing
        // is in transit.
        let step = match outcome {
            Ok((result, (outs, spare))) => {
                scratch.outputs = outs;
                scratch.spare_strings = spare;
                match result {
                    Ok(()) => {
                        shared.processed.fetch_add(1, Ordering::Relaxed);
                        shared.route_outputs(scratch);
                    }
                    Err(_) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        // Discard the failed call's emissions, retiring
                        // their port strings.
                        let StepScratch {
                            outputs,
                            spare_strings,
                            ..
                        } = scratch;
                        for (mut port, _msg) in outputs.drain(..) {
                            port.clear();
                            spare_strings.push(port);
                        }
                    }
                }
                Step::Progress
            }
            Err(payload) => {
                shared
                    .redelivery
                    .lock()
                    .push_front((replay, prior_faults + 1));
                self.fault(FaultCause::Panic(panic_message(payload.as_ref())));
                Step::Fault
            }
        };
        if let (Some(p), Some(t0)) = (shared.probe.get(), t0) {
            p.on_process_ns(t0.elapsed().as_nanos() as u64);
        }
        shared.processing.store(false, Ordering::Release);
        step
    }

    /// Processes a fresh batch through `process_batch` under a single
    /// panic boundary (only reached when the logic opted in via
    /// `supports_batch`).
    fn process_batched(
        &self,
        logic: &mut dyn StreamletLogic,
        msgs: Vec<MimeMessage>,
        scratch: &mut StepScratch,
    ) -> Step {
        let shared = &self.shared;
        let replays: Vec<MimeMessage> = msgs.to_vec();
        let n = msgs.len() as u64;
        let t0 = shared
            .probe
            .get()
            .filter(|p| p.sample_timing())
            .map(|_| Instant::now());
        shared.processing.store(true, Ordering::Release);
        let outputs = std::mem::take(&mut scratch.outputs);
        let spare = std::mem::take(&mut scratch.spare_strings);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(move || {
            let mut ctx =
                StreamletCtx::with_buffers(&shared.name, shared.session.as_ref(), outputs, spare);
            let result = logic.process_batch(msgs, &mut ctx);
            (result, ctx.into_parts())
        }));
        // As in `process_one`: the flag stays up until the batch's
        // emissions are routed, so quiescence checks never miss in-transit
        // messages.
        let step = match outcome {
            Ok((result, (outs, spare))) => {
                scratch.outputs = outs;
                scratch.spare_strings = spare;
                match result {
                    Ok(()) => {
                        shared.processed.fetch_add(n, Ordering::Relaxed);
                        shared.route_outputs(scratch);
                    }
                    Err(_) => {
                        shared.errors.fetch_add(1, Ordering::Relaxed);
                        let StepScratch {
                            outputs,
                            spare_strings,
                            ..
                        } = scratch;
                        for (mut port, _msg) in outputs.drain(..) {
                            port.clear();
                            spare_strings.push(port);
                        }
                    }
                }
                Step::Progress
            }
            Err(payload) => {
                // The batch shared one panic boundary, so stash every
                // message for redelivery, charging the fault to the head.
                // Redelivered messages are reprocessed one at a time, so a
                // true poison message re-isolates itself on replay.
                {
                    let mut redelivery = shared.redelivery.lock();
                    for (i, replay) in replays.into_iter().enumerate().rev() {
                        redelivery.push_front((replay, u32::from(i == 0)));
                    }
                }
                self.fault(FaultCause::Panic(panic_message(payload.as_ref())));
                Step::Fault
            }
        };
        if let (Some(p), Some(t0)) = (shared.probe.get(), t0) {
            p.on_process_ns(t0.elapsed().as_nanos() as u64);
        }
        shared.processing.store(false, Ordering::Release);
        step
    }

    /// Marks the instance `Faulted` and fires the supervisor's fault hook.
    /// Loses gracefully to a concurrent `end()`: an ended instance is never
    /// resurrected into `Faulted`.
    fn fault(&self, cause: FaultCause) {
        let shared = &self.shared;
        shared.faults.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = shared.probe.get() {
            p.on_fault();
        }
        let report = {
            let mut state = shared.state.lock();
            if *state == LifecycleState::Ended {
                false
            } else {
                *state = LifecycleState::Faulted;
                *shared.last_fault.lock() = Some(cause.clone());
                shared.cv.notify_all();
                true
            }
        };
        if report {
            let hook = shared.fault_hook.lock();
            if let Some(h) = &*hook {
                h(cause);
            }
        }
    }

    /// Discards outputs still parked behind full queues so the pool's
    /// reference accounting balances when the task exits. Entries whose
    /// Figure 6-9 deadline already passed are overflow drops the next
    /// flush would have charged — charge them now (exactly once, via the
    /// single charge site); entries still inside their budget are a
    /// teardown artifact, not an overflow, and stay uncharged.
    fn drain_pending_out(&self) {
        let now = Instant::now();
        for (q, payload, deadline) in self.shared.pending_out.lock().drain(..) {
            if now >= deadline {
                q.discard_expired(payload);
            } else {
                self.shared.pool.discard(payload);
            }
        }
    }

    /// Runs `on_end`, parks the logic back in the handle, and publishes
    /// the exit so `end()` waiters wake up.
    fn finalize(&self, mut logic: Box<dyn StreamletLogic>) {
        logic.on_end();
        *self.park.lock() = Some(logic);
        self.drain_pending_out();
        {
            let _state = self.shared.state.lock();
            self.shared.exited.store(true, Ordering::Release);
            self.shared.cv.notify_all();
        }
        self.shared.notifier.notify();
    }

    /// Publishes the exit for a task whose logic was already dropped by a
    /// fault: there is nothing to run `on_end` on and nothing to park.
    fn finalize_empty(&self) {
        self.drain_pending_out();
        {
            let _state = self.shared.state.lock();
            self.shared.exited.store(true, Ordering::Release);
            self.shared.cv.notify_all();
        }
        self.shared.notifier.notify();
    }
}

/// Byte ceiling for one fetched batch, keeping a single wake's working set
/// bounded even when `batch_max` is large and messages are fat.
const BATCH_BYTE_BUDGET: usize = 4 << 20;

/// How a [`StreamletTask::step`] invocation left the task.
enum Step {
    /// A message was consumed (successfully or with a logic `Err`).
    Progress,
    /// Every input was empty; nothing to do.
    Idle,
    /// The logic panicked: the task is `Faulted` and the logic object must
    /// be dropped by the driver.
    Fault,
}

/// Extracts the human-readable text of a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{PostResult, QueueConfig};

    /// Uppercases text bodies, emits on `po`.
    struct Upper;
    impl StreamletLogic for Upper {
        fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            let text = String::from_utf8_lossy(&msg.body).to_uppercase();
            let mut out = msg.clone();
            out.set_body(text.into_bytes());
            ctx.emit("po", out);
            Ok(())
        }
    }

    /// Fails on every message.
    struct Exploder;
    impl StreamletLogic for Exploder {
        fn process(&mut self, _: MimeMessage, _: &mut StreamletCtx) -> Result<(), CoreError> {
            Err(CoreError::Process {
                streamlet: "exploder".into(),
                message: "bang".into(),
            })
        }
    }

    fn pipeline() -> (
        Arc<MessagePool>,
        Arc<MessageQueue>,
        Arc<MessageQueue>,
        Arc<StreamletHandle>,
    ) {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(
            QueueConfig {
                name: "cin".into(),
                ..Default::default()
            },
            pool.clone(),
        );
        let qout = MessageQueue::new(
            QueueConfig {
                name: "cout".into(),
                ..Default::default()
            },
            pool.clone(),
        );
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        (pool, qin, qout, h)
    }

    fn post_text(pool: &MessagePool, q: &MessageQueue, s: &str) {
        let msg = MimeMessage::text(s);
        assert_eq!(
            q.post(pool.wrap(msg, PayloadMode::Reference, 1)),
            PostResult::Posted
        );
    }

    fn fetch_text(pool: &MessagePool, q: &MessageQueue) -> String {
        match q.fetch(Duration::from_secs(2)) {
            FetchResult::Msg(p) => {
                String::from_utf8_lossy(&pool.resolve(p).unwrap().body).into_owned()
            }
            other => panic!("expected message, got {other:?}"),
        }
    }

    #[test]
    fn processes_and_routes() {
        let (pool, qin, qout, h) = pipeline();
        h.start().unwrap();
        post_text(&pool, &qin, "hello");
        assert_eq!(fetch_text(&pool, &qout), "HELLO");
        let stats = h.stats();
        assert_eq!(stats.processed, 1);
        assert_eq!(stats.emitted, 1);
        h.end();
        assert_eq!(h.state(), LifecycleState::Ended);
    }

    #[test]
    fn preserves_order() {
        let (pool, qin, qout, h) = pipeline();
        h.start().unwrap();
        for i in 0..50 {
            post_text(&pool, &qin, &format!("m{i}"));
        }
        for i in 0..50 {
            assert_eq!(fetch_text(&pool, &qout), format!("M{i}"));
        }
        h.end();
    }

    #[test]
    fn pause_blocks_processing_until_activate() {
        let (pool, qin, qout, h) = pipeline();
        h.start().unwrap();
        post_text(&pool, &qin, "a");
        assert_eq!(fetch_text(&pool, &qout), "A");
        h.pause_and_wait(Duration::from_secs(2)).unwrap();
        assert_eq!(h.state(), LifecycleState::Paused);
        post_text(&pool, &qin, "b");
        // Paused: nothing comes out.
        assert!(matches!(
            qout.fetch(Duration::from_millis(50)),
            FetchResult::Empty
        ));
        h.activate().unwrap();
        assert_eq!(fetch_text(&pool, &qout), "B");
        h.end();
    }

    #[test]
    fn end_returns_logic_for_pooling() {
        let (_pool, _qin, _qout, h) = pipeline();
        h.start().unwrap();
        assert!(
            h.take_logic().is_none(),
            "logic lives on the worker while running"
        );
        h.end();
        assert!(h.take_logic().is_some(), "logic parked back after end");
    }

    #[test]
    fn cannot_start_twice() {
        let (_pool, _qin, _qout, h) = pipeline();
        h.start().unwrap();
        assert!(h.start().is_err());
        h.end();
    }

    #[test]
    fn lifecycle_errors_from_wrong_states() {
        let (_pool, _qin, _qout, h) = pipeline();
        // Not started yet.
        assert!(h.pause_and_wait(Duration::from_millis(50)).is_err());
        assert!(h.activate().is_err());
        h.start().unwrap();
        h.end();
        assert!(h.activate().is_err());
        // end is idempotent.
        h.end();
    }

    #[test]
    fn unrouted_emissions_are_counted() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        // No output binding at all.
        h.start().unwrap();
        post_text(&pool, &qin, "x");
        let deadline = Instant::now() + Duration::from_secs(2);
        while h.stats().dropped_unrouted == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(h.stats().dropped_unrouted, 1);
        h.end();
    }

    #[test]
    fn process_errors_do_not_kill_worker() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        let h = StreamletHandle::new(
            "x1",
            "exploder",
            false,
            Box::new(Exploder),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        h.start().unwrap();
        post_text(&pool, &qin, "a");
        post_text(&pool, &qin, "b");
        let deadline = Instant::now() + Duration::from_secs(2);
        while h.stats().errors < 2 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(h.stats().errors, 2);
        assert_eq!(h.state(), LifecycleState::Running);
        h.end();
    }

    #[test]
    fn fanout_in_reference_mode_shares_pool_entry() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        let qa = MessageQueue::new(
            QueueConfig {
                name: "a".into(),
                ..Default::default()
            },
            pool.clone(),
        );
        let qb = MessageQueue::new(
            QueueConfig {
                name: "b".into(),
                ..Default::default()
            },
            pool.clone(),
        );
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qa);
        h.attach_out("po", &qb);
        h.start().unwrap();
        post_text(&pool, &qin, "dup");
        let a = fetch_text(&pool, &qa);
        let b = fetch_text(&pool, &qb);
        assert_eq!(a, "DUP");
        assert_eq!(b, "DUP");
        assert_eq!(pool.stats().resident, 0, "both refs consumed");
        h.end();
    }

    #[test]
    fn detach_in_stops_consumption() {
        let (pool, qin, qout, h) = pipeline();
        h.start().unwrap();
        post_text(&pool, &qin, "a");
        assert_eq!(fetch_text(&pool, &qout), "A");
        h.detach_in("pi", "cin").unwrap();
        assert!(h.input_bindings().is_empty());
        // BK category: sink detach breaks the source side; posts now close.
        let msg = MimeMessage::text("b");
        assert_eq!(
            qin.post(pool.wrap(msg, PayloadMode::Reference, 1)),
            PostResult::Closed
        );
        h.end();
    }

    #[test]
    fn detach_unknown_binding_errors() {
        let (_pool, _qin, _qout, h) = pipeline();
        assert!(h.detach_in("pi", "nope").is_err());
        assert!(h.detach_out("nope", "cout").is_err());
    }

    #[test]
    fn inputs_empty_reflects_queue_state() {
        let (pool, qin, _qout, h) = pipeline();
        // Not started: message sits in the queue.
        post_text(&pool, &qin, "z");
        assert!(!h.inputs_empty());
    }

    #[test]
    fn value_mode_copies_per_target() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        let qout = MessageQueue::new(QueueConfig::default(), pool.clone());
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Value,
            None,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        h.start().unwrap();
        let msg = MimeMessage::text("v");
        qin.post(pool.wrap(msg, PayloadMode::Value, 1));
        match qout.fetch(Duration::from_secs(2)) {
            FetchResult::Msg(Payload::Value(m)) => assert_eq!(&m.body[..], b"V"),
            other => panic!("expected value payload, got {other:?}"),
        }
        assert_eq!(
            pool.stats().inserted,
            0,
            "value mode never touches the pool"
        );
        h.end();
    }

    #[test]
    fn route_memo_follows_rewiring() {
        let (_pool, _qin, _qout, h) = pipeline();
        // First resolution populates the memo, second one hits it.
        assert_eq!(h.shared.resolve_route("po").len(), 1);
        assert_eq!(h.shared.resolve_route("po").len(), 1);
        // A new binding bumps the epoch: the memo may not serve the stale
        // single-target route.
        let extra = MessageQueue::new(
            QueueConfig {
                name: "extra".into(),
                ..Default::default()
            },
            h.shared.pool.clone(),
        );
        h.attach_out("po", &extra);
        assert_eq!(h.shared.resolve_route("po").len(), 2);
        h.detach_out("po", "extra").unwrap();
        assert_eq!(h.shared.resolve_route("po").len(), 1);
        // Unknown ports memoize as empty, not as an error.
        assert!(h.shared.resolve_route("nope").is_empty());
    }

    #[test]
    fn expired_pending_out_charged_exactly_once() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        // A queue whose byte budget is exhausted by its first message and
        // whose Figure 6-9 wait budget is tiny.
        let qout = MessageQueue::new(
            QueueConfig {
                name: "tiny".into(),
                capacity_bytes: 1,
                full_wait: Duration::from_millis(10),
                ..Default::default()
            },
            pool.clone(),
        );
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        h.shared.nonblocking_outputs.store(true, Ordering::Relaxed);
        // Oversized-head admission fills the queue past its budget…
        assert_eq!(
            qout.post(pool.wrap(MimeMessage::text("head"), PayloadMode::Reference, 1)),
            PostResult::Posted
        );
        // …so this emission is refused and parked with its drop deadline.
        h.shared
            .route_outputs_vec(vec![("po".to_string(), MimeMessage::text("parked"))]);
        assert_eq!(h.pending_outputs(), 1);
        assert_eq!(qout.stats().dropped_expired, 0);
        std::thread::sleep(Duration::from_millis(20));
        // Space frees up before the flush — the entry is expired anyway
        // and must drop (Figure 6-9), charged exactly once, under its own
        // reason code (`expired`, not an in-queue `full`).
        let _ = fetch_text(&pool, &qout);
        assert!(h.shared.flush_pending());
        assert_eq!(qout.stats().dropped_expired, 1);
        assert_eq!(qout.stats().dropped_full, 0);
        // Regression: repeated flushes after expiry must not re-charge,
        // and the expired entry must not have been delivered late.
        assert!(h.shared.flush_pending());
        assert!(h.shared.flush_pending());
        assert_eq!(qout.stats().dropped_expired, 1);
        assert!(matches!(
            qout.fetch(Duration::from_millis(20)),
            FetchResult::Empty
        ));
        assert_eq!(pool.stats().resident, 0, "dropped payload fully released");
    }

    #[test]
    fn teardown_charges_only_expired_pending_out() {
        let pool = Arc::new(MessagePool::new());
        let qin = MessageQueue::new(QueueConfig::default(), pool.clone());
        let qout = MessageQueue::new(
            QueueConfig {
                name: "tiny".into(),
                capacity_bytes: 1,
                full_wait: Duration::from_millis(10),
                ..Default::default()
            },
            pool.clone(),
        );
        let h = StreamletHandle::new(
            "u1",
            "upper",
            false,
            Box::new(Upper),
            pool.clone(),
            PayloadMode::Reference,
            None,
        );
        h.attach_in("pi", &qin);
        h.attach_out("po", &qout);
        h.shared.nonblocking_outputs.store(true, Ordering::Relaxed);
        assert_eq!(
            qout.post(pool.wrap(MimeMessage::text("head"), PayloadMode::Reference, 1)),
            PostResult::Posted
        );
        h.shared
            .route_outputs_vec(vec![("po".to_string(), MimeMessage::text("parked"))]);
        assert_eq!(h.pending_outputs(), 1);
        std::thread::sleep(Duration::from_millis(20));
        // Ending the (started) streamlet drains the overflow buffer; the
        // entry sat past its deadline, so the teardown books the drop
        // under the `expired` reason.
        h.start().unwrap();
        h.end();
        assert_eq!(qout.stats().dropped_expired, 1);
        assert_eq!(qout.stats().dropped_full, 0);
    }

    #[test]
    fn quarantine_accepts_created_instances() {
        let (_pool, _qin, _qout, h) = pipeline();
        h.quarantine().unwrap();
        assert_eq!(h.state(), LifecycleState::Quarantined);
        assert!(h.start().is_err(), "a quarantined instance never starts");
    }
}
