//! The Streamlet Directory (§3.3.7): "the repository where streamlet
//! providers can advertise their services … a central storage for streamlet
//! codes in which the Streamlet Manager may locate the relevant streamlets
//! and create instances for execution."
//!
//! Providers register a *factory* under a library key (the MCL `library`
//! attribute, e.g. `"builtin/text_compress"`). Instance creation first
//! resolves a definition's `library`; when that is empty, the definition
//! name itself is tried, so terse scripts work without attribute blocks.

use crate::error::CoreError;
use crate::streamlet::StreamletLogic;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// A factory producing fresh logic instances.
pub type StreamletFactory = Arc<dyn Fn() -> Box<dyn StreamletLogic> + Send + Sync>;

/// An advertised entry.
#[derive(Clone)]
struct DirEntry {
    factory: StreamletFactory,
    description: String,
}

/// The registry of streamlet implementations.
#[derive(Default)]
pub struct StreamletDirectory {
    entries: RwLock<HashMap<String, DirEntry>>,
}

impl StreamletDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advertises an implementation under `library`. Re-registration
    /// replaces the previous factory (hot code update).
    pub fn register<F>(&self, library: &str, description: &str, factory: F)
    where
        F: Fn() -> Box<dyn StreamletLogic> + Send + Sync + 'static,
    {
        self.entries.write().insert(
            library.to_string(),
            DirEntry {
                factory: Arc::new(factory),
                description: description.to_string(),
            },
        );
    }

    /// True when `library` resolves.
    pub fn contains(&self, library: &str) -> bool {
        self.entries.read().contains_key(library)
    }

    /// Creates a fresh logic instance for `library`.
    pub fn create(&self, library: &str) -> Result<Box<dyn StreamletLogic>, CoreError> {
        let entries = self.entries.read();
        let entry = entries
            .get(library)
            .ok_or_else(|| CoreError::UnknownLibrary(library.to_string()))?;
        Ok((entry.factory)())
    }

    /// Resolves the library key for a definition: its `library` attribute,
    /// falling back to the definition name.
    pub fn resolve_key<'a>(&self, library: &'a str, def_name: &'a str) -> &'a str {
        if !library.is_empty() && self.contains(library) {
            library
        } else if self.contains(def_name) {
            def_name
        } else if !library.is_empty() {
            library // let create() report the missing library key
        } else {
            def_name
        }
    }

    /// Lists advertised services as `(library, description)`.
    pub fn advertise(&self) -> Vec<(String, String)> {
        let mut list: Vec<(String, String)> = self
            .entries
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.description.clone()))
            .collect();
        list.sort();
        list
    }

    /// Removes an advertisement; returns whether it existed.
    pub fn withdraw(&self, library: &str) -> bool {
        self.entries.write().remove(library).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::streamlet::StreamletCtx;
    use mobigate_mime::MimeMessage;

    struct Nop;
    impl StreamletLogic for Nop {
        fn process(&mut self, m: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
            use crate::streamlet::Emitter;
            ctx.emit("po", m);
            Ok(())
        }
    }

    #[test]
    fn register_and_create() {
        let dir = StreamletDirectory::new();
        dir.register("builtin/nop", "does nothing", || Box::new(Nop));
        assert!(dir.contains("builtin/nop"));
        assert!(dir.create("builtin/nop").is_ok());
    }

    #[test]
    fn create_unknown_fails() {
        let dir = StreamletDirectory::new();
        match dir.create("ghost") {
            Err(CoreError::UnknownLibrary(lib)) => assert_eq!(lib, "ghost"),
            Err(other) => panic!("unexpected error {other}"),
            Ok(_) => panic!("expected an error"),
        }
    }

    #[test]
    fn resolve_key_prefers_library_then_name() {
        let dir = StreamletDirectory::new();
        dir.register("builtin/x", "", || Box::new(Nop));
        dir.register("x", "", || Box::new(Nop));
        assert_eq!(dir.resolve_key("builtin/x", "x"), "builtin/x");
        assert_eq!(dir.resolve_key("", "x"), "x");
        assert_eq!(dir.resolve_key("missing/lib", "x"), "x");
        // Neither resolves: report the library key.
        assert_eq!(dir.resolve_key("missing/lib", "y"), "missing/lib");
    }

    #[test]
    fn advertise_lists_sorted() {
        let dir = StreamletDirectory::new();
        dir.register("b", "beta", || Box::new(Nop));
        dir.register("a", "alpha", || Box::new(Nop));
        let ads = dir.advertise();
        assert_eq!(ads[0].0, "a");
        assert_eq!(ads[1].1, "beta");
    }

    #[test]
    fn withdraw_removes() {
        let dir = StreamletDirectory::new();
        dir.register("gone", "", || Box::new(Nop));
        assert!(dir.withdraw("gone"));
        assert!(!dir.withdraw("gone"));
        assert!(!dir.contains("gone"));
    }

    #[test]
    fn reregistration_replaces() {
        let dir = StreamletDirectory::new();
        dir.register("k", "v1", || Box::new(Nop));
        dir.register("k", "v2", || Box::new(Nop));
        assert_eq!(dir.advertise()[0].1, "v2");
    }
}
