//! The MobiGATE server runtime (thesis chapters 3 and 6).
//!
//! The runtime is organized — like the paper's Figure 3-2 — into two planes:
//!
//! * the **Stream Coordination Plane**: [`queue::MessageQueue`] channel
//!   objects, the wiring held by [`stream::RunningStream`], and the
//!   [`coordination::CoordinationManager`] with its per-stream configuration
//!   tables;
//! * the **Streamlet Execution Plane**: [`streamlet::StreamletLogic`]
//!   computation objects held by [`streamlet::StreamletHandle`] and
//!   scheduled by an [`executor::Executor`] (thread-per-streamlet, a
//!   shared worker pool, or a work-stealing reactor), with
//!   [`pooling::StreamletPool`] reusing stateless instances.
//!
//! Cross-cutting services: the [`events::EventManager`] (Table 6-1 context
//! events, category subscription, multicast), the
//! [`directory::StreamletDirectory`] where providers advertise streamlet
//! implementations, and the central [`pool::MessagePool`] that lets
//! channels pass messages **by reference** (§6.7).
//!
//! The [`server::MobiGate`] facade ties everything together: it compiles an
//! MCL script, deploys the resulting configuration tables as running
//! streams, feeds messages in, and collects adapted messages out.

pub mod coordination;
pub mod directory;
pub mod error;
pub mod events;
pub mod executor;
pub mod fusion;
pub mod membuf;
pub mod overload;
pub mod pool;
pub mod pooling;
pub mod queue;
pub mod server;
pub mod session;
pub mod sharing;
mod spsc;
pub mod stream;
pub mod streamlet;
pub mod supervisor;
pub mod telemetry;

pub use coordination::CoordinationManager;
pub use directory::StreamletDirectory;
pub use error::CoreError;
pub use events::{ContextEvent, EventManager};
pub use executor::{
    default_executor, Executor, ExecutorStats, Reactor, ThreadPerStreamlet, WorkerPool, WorkerStats,
};
pub use fusion::{FusedLogic, FusedMember, FusedShared};
pub use membuf::{BufferPool, BufferPoolStats, MembufConfig, PooledBuf};
pub use overload::{
    AdmissionConfig, AdmissionController, AdmissionStats, BreakerConfig, BreakerState,
    CircuitBreaker, FaultVerdict, OverloadConfig, PriorityClass, ProbeOutcome, ShedConfig,
    TokenBucket,
};
pub use pool::{MessagePool, PayloadMode};
pub use pooling::StreamletPool;
pub use queue::{FetchResult, MessageQueue, PostResult, QueueConfig};
pub use server::{ExecutorConfig, MobiGate, ServerConfig, SupervisionConfig};
pub use session::SessionManager;
pub use sharing::{SharedStreamlet, SharingStats};
pub use stream::{BatchConfig, ReconfigStats, RunningStream, StreamStats};
pub use streamlet::{
    Emitter, LifecycleState, PumpOutcome, RouteOpts, StreamletCtx, StreamletHandle, StreamletLogic,
    StreamletTask,
};
pub use supervisor::{
    DeadLetter, DeadLetterQueue, FaultCause, FaultInfo, RestartPolicy, Supervisor, SupervisorStats,
};
pub use telemetry::{
    BridgeConfig, DropReason, MetricsSnapshot, Telemetry, TelemetryConfig, TraceEvent, TraceKind,
};

// Re-export the language-level vocabulary the runtime shares with MCL.
pub use mobigate_mcl::events::{EventCategory, EventKind};
