//! The memory plane's buffer pool: recycled body slabs in size classes.
//!
//! The gateway's job is to shuttle multimedia payloads through streamlet
//! chains (§3.3); at 10k+ concurrent sessions the dominant steady-state
//! cost is no longer scheduling but per-message heap churn. This module
//! removes it at the source: ingress checks a slab out of a sharded
//! [`BufferPool`], parses the wire body straight into it, and freezes it
//! into a refcounted [`Bytes`] whose **last-drop hook returns the slab to
//! the pool automatically** (see the vendored `bytes` crate's
//! `SlabRecycler`). Delivery, drop, shed, and dead-lettering all recycle
//! through the same path — there is no manual return call to forget.
//!
//! Ownership rules (the memory plane's contract):
//!
//! * a [`PooledBuf`] is exclusively owned until frozen; after
//!   [`PooledBuf::freeze`] the bytes are immutable and shared,
//! * bodies at or under the inline threshold ([`bytes::INLINE_CAP`])
//!   never touch the pool — they live in the `Bytes` handle itself,
//! * recycled buffers are classified by the capacity they *return* with,
//!   not the class they left from, so a slab that grew inside a
//!   streamlet is promoted to the matching larger class.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use bytes::{Bytes, SlabRecycler, INLINE_CAP};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slab capacities, smallest to largest. Checkout rounds the size hint up
/// to the next class; returns round the capacity *down* (promotion).
pub const SIZE_CLASSES: [usize; 7] = [
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
];

/// Returns above this capacity are freed instead of pooled, bounding the
/// worst-case memory a pathological payload can pin.
const MAX_POOLED_CAPACITY: usize = 2 << 20;

/// Memory-plane knobs on [`crate::ServerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct MembufConfig {
    /// When false no pool is built: ingress bodies are plain allocations
    /// (the pre-memory-plane behavior, kept for ablations).
    pub enabled: bool,
    /// Retained slabs per size class per shard; returns beyond the cap
    /// are freed (`discarded`).
    pub max_per_class: usize,
    /// Shard count (rounded up to a power of two). `None` derives it
    /// from available parallelism.
    pub shards: Option<usize>,
}

impl Default for MembufConfig {
    fn default() -> Self {
        MembufConfig {
            enabled: true,
            max_per_class: 64,
            shards: None,
        }
    }
}

/// Lock-free snapshot of the pool's counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// Checkouts served from a recycled slab.
    pub hits: u64,
    /// Checkouts that had to allocate a fresh slab.
    pub misses: u64,
    /// Recycled slabs whose capacity had to grow to fit the size hint.
    pub resizes: u64,
    /// Slabs returned and retained for reuse.
    pub recycled: u64,
    /// Returns freed instead of retained (class full or capacity out of
    /// range).
    pub discarded: u64,
    /// Slabs currently retained across all shards and classes.
    pub population: u64,
    /// Slabs checked out and not yet returned (live message bodies).
    pub outstanding: u64,
}

struct Shard {
    classes: Vec<Mutex<Vec<Vec<u8>>>>,
}

/// A sharded pool of recycled body slabs (see module docs).
pub struct BufferPool {
    shards: Vec<Shard>,
    shard_mask: usize,
    max_per_class: usize,
    next: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    resizes: AtomicU64,
    recycled: AtomicU64,
    discarded: AtomicU64,
    population: AtomicU64,
    outstanding: AtomicU64,
}

/// Index of the smallest class whose capacity covers `size_hint`
/// (saturating at the largest class for oversized hints).
fn class_up(size_hint: usize) -> usize {
    SIZE_CLASSES
        .iter()
        .position(|&c| c >= size_hint)
        .unwrap_or(SIZE_CLASSES.len() - 1)
}

/// Index of the largest class at or under `capacity`, or `None` when the
/// capacity is below the smallest class.
fn class_down(capacity: usize) -> Option<usize> {
    SIZE_CLASSES.iter().rposition(|&c| c <= capacity)
}

impl BufferPool {
    /// Builds a pool with `shards` shards (rounded up to a power of two)
    /// retaining at most `max_per_class` slabs per class per shard.
    pub fn new(shards: usize, max_per_class: usize) -> Arc<Self> {
        let shards = shards.max(1).next_power_of_two();
        Arc::new(BufferPool {
            shards: (0..shards)
                .map(|_| Shard {
                    classes: SIZE_CLASSES
                        .iter()
                        .map(|_| Mutex::new(Vec::new()))
                        .collect(),
                })
                .collect(),
            shard_mask: shards - 1,
            max_per_class: max_per_class.max(1),
            next: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            resizes: AtomicU64::new(0),
            recycled: AtomicU64::new(0),
            discarded: AtomicU64::new(0),
            population: AtomicU64::new(0),
            outstanding: AtomicU64::new(0),
        })
    }

    /// Builds a pool from config (`None` when disabled).
    pub fn from_config(cfg: &MembufConfig) -> Option<Arc<Self>> {
        if !cfg.enabled {
            return None;
        }
        let shards = cfg.shards.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(4)
        });
        Some(BufferPool::new(shards, cfg.max_per_class))
    }

    /// Checks a cleared slab out of the pool, recycled when available,
    /// freshly allocated otherwise.
    pub fn checkout(self: &Arc<Self>, size_hint: usize) -> PooledBuf {
        let class = class_up(size_hint);
        let shard =
            &self.shards[self.next.fetch_add(1, Ordering::Relaxed) as usize & self.shard_mask];
        let reused = shard.classes[class].lock().pop();
        let buf = match reused {
            Some(mut buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.population.fetch_sub(1, Ordering::Relaxed);
                buf.clear();
                if buf.capacity() < size_hint {
                    self.resizes.fetch_add(1, Ordering::Relaxed);
                    buf.reserve(size_hint - buf.len());
                }
                buf
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(SIZE_CLASSES[class].max(size_hint))
            }
        };
        self.outstanding.fetch_add(1, Ordering::Relaxed);
        PooledBuf {
            buf,
            pool: self.clone(),
        }
    }

    /// Copies `data` into pool-backed [`Bytes`]: inline below the
    /// threshold (the slab is recycled immediately), a recycler-backed
    /// slab otherwise. This is the ingress body hook for
    /// [`mobigate_mime::MimeMessage::from_wire_with`].
    pub fn checkout_bytes(self: &Arc<Self>, data: &[u8]) -> Bytes {
        if data.len() <= INLINE_CAP {
            return Bytes::copy_from_slice(data);
        }
        let mut buf = self.checkout(data.len());
        buf.extend_from_slice(data);
        buf.freeze()
    }

    /// Current counters.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            resizes: self.resizes.load(Ordering::Relaxed),
            recycled: self.recycled.load(Ordering::Relaxed),
            discarded: self.discarded.load(Ordering::Relaxed),
            population: self.population.load(Ordering::Relaxed),
            outstanding: self.outstanding.load(Ordering::Relaxed),
        }
    }
}

impl SlabRecycler for BufferPool {
    /// Takes a spent slab back. Classification is by returned capacity
    /// (size-class promotion); out-of-range or over-cap returns are
    /// freed.
    fn recycle(&self, buf: Vec<u8>) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        let cap = buf.capacity();
        let class = match class_down(cap) {
            Some(c) if cap <= MAX_POOLED_CAPACITY => c,
            _ => {
                self.discarded.fetch_add(1, Ordering::Relaxed);
                return;
            }
        };
        let shard =
            &self.shards[self.next.fetch_add(1, Ordering::Relaxed) as usize & self.shard_mask];
        let mut stack = shard.classes[class].lock();
        if stack.len() >= self.max_per_class {
            self.discarded.fetch_add(1, Ordering::Relaxed);
            return;
        }
        stack.push(buf);
        self.recycled.fetch_add(1, Ordering::Relaxed);
        self.population.fetch_add(1, Ordering::Relaxed);
    }
}

/// A slab checked out of the pool: exclusively owned, mutable, and
/// returned automatically — via [`PooledBuf::freeze`]'s last-drop hook
/// once shared, or straight back to the pool if dropped unfrozen.
pub struct PooledBuf {
    buf: Vec<u8>,
    pool: Arc<BufferPool>,
}

impl PooledBuf {
    /// Appends bytes to the slab.
    pub fn extend_from_slice(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Freezes into immutable, shareable [`Bytes`]. Sub-threshold
    /// contents collapse to the inline form and the slab returns to the
    /// pool right away; larger contents keep the slab and return it when
    /// the last clone drops.
    pub fn freeze(mut self) -> Bytes {
        let buf = std::mem::take(&mut self.buf);
        let pool = self.pool.clone();
        std::mem::forget(self);
        if buf.len() <= INLINE_CAP {
            let bytes = Bytes::copy_from_slice(&buf);
            pool.recycle(buf);
            bytes
        } else {
            Bytes::from_vec_with_recycler(buf, pool)
        }
    }
}

impl std::ops::Deref for PooledBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        self.pool.recycle(std::mem::take(&mut self.buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_miss_then_hit() {
        let pool = BufferPool::new(1, 8);
        let b = pool.checkout(1000);
        assert_eq!(pool.stats().misses, 1);
        assert_eq!(pool.stats().outstanding, 1);
        drop(b);
        let s = pool.stats();
        assert_eq!(s.recycled, 1);
        assert_eq!(s.population, 1);
        assert_eq!(s.outstanding, 0);
        let _b2 = pool.checkout(900);
        assert_eq!(pool.stats().hits, 1);
        assert_eq!(pool.stats().population, 0);
    }

    #[test]
    fn freeze_recycles_on_last_clone_drop() {
        let pool = BufferPool::new(1, 8);
        let mut b = pool.checkout(200);
        b.extend_from_slice(&[7u8; 200]);
        let bytes = b.freeze();
        let clone = bytes.clone();
        assert_eq!(pool.stats().outstanding, 1, "slab pinned by live clones");
        drop(bytes);
        assert_eq!(pool.stats().outstanding, 1);
        drop(clone);
        let s = pool.stats();
        assert_eq!(s.outstanding, 0);
        assert_eq!(s.recycled, 1);
    }

    #[test]
    fn small_freeze_goes_inline_and_recycles_immediately() {
        let pool = BufferPool::new(1, 8);
        let mut b = pool.checkout(16);
        b.extend_from_slice(&[1u8; 16]);
        let bytes = b.freeze();
        assert_eq!(pool.stats().outstanding, 0, "inline freeze returns slab");
        assert_eq!(pool.stats().recycled, 1);
        assert_eq!(bytes.len(), 16);
    }

    #[test]
    fn returns_classify_by_grown_capacity() {
        let pool = BufferPool::new(1, 8);
        let mut b = pool.checkout(256);
        // Grow well past the checkout class.
        b.extend_from_slice(&vec![0u8; 70 << 10]);
        drop(b.freeze());
        // The promoted slab now serves 64K checkouts from the hit path.
        let _big = pool.checkout(60 << 10);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn oversized_returns_are_discarded() {
        let pool = BufferPool::new(1, 8);
        let mut b = pool.checkout(3 << 20);
        b.extend_from_slice(&vec![0u8; 3 << 20]);
        drop(b.freeze());
        let s = pool.stats();
        assert_eq!(s.discarded, 1);
        assert_eq!(s.population, 0);
    }

    #[test]
    fn class_cap_bounds_population() {
        let pool = BufferPool::new(1, 2);
        let bufs: Vec<_> = (0..4).map(|_| pool.checkout(1024)).collect();
        drop(bufs);
        let s = pool.stats();
        assert_eq!(s.population, 2);
        assert_eq!(s.discarded, 2);
    }

    #[test]
    fn checkout_bytes_round_trips_content() {
        let pool = BufferPool::new(2, 8);
        let data: Vec<u8> = (0..=255u8).cycle().take(5000).collect();
        let bytes = pool.checkout_bytes(&data);
        assert_eq!(bytes, data);
        assert_eq!(pool.stats().outstanding, 1);
        drop(bytes);
        assert_eq!(pool.stats().outstanding, 0);
    }
}
