//! Lock-free bounded ring used as the SPSC fast path of
//! [`crate::queue::MessageQueue`].
//!
//! When a channel has at most one producer and one consumer (the common
//! case in a streamlet chain — every inter-hop channel is 1:1), posts can
//! skip the queue's monitor mutex entirely. The ring is a Vyukov-style
//! bounded queue: each slot carries its own sequence number and the
//! producer/consumer cursors advance by compare-and-swap, so even if the
//! queue's SPSC activation heuristic is momentarily stale (a second
//! producer attaching while an old one still holds a fast-path ticket) the
//! structure stays memory-safe — the specialization is a performance
//! contract, never a safety one.
//!
//! Byte accounting rides along: each slot stores the payload's buffered
//! length, and a shared counter tracks the total so the queue's
//! byte-budget admission (Figure 6-9) works identically on both paths.

use crate::pool::Payload;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

struct Slot {
    /// Vyukov sequence: `pos` when free for the producer at ticket `pos`,
    /// `pos + 1` when filled, `pos + capacity` after the consumer drains it.
    seq: AtomicUsize,
    value: UnsafeCell<Option<(Payload, usize)>>,
}

/// Bounded lock-free ring of `(Payload, buffered_len)` pairs.
pub(crate) struct SpscRing {
    mask: usize,
    slots: Box<[Slot]>,
    /// Consumer cursor.
    head: AtomicUsize,
    /// Producer cursor.
    tail: AtomicUsize,
    /// Total buffered bytes currently in the ring.
    bytes: AtomicUsize,
}

// The UnsafeCell contents are only touched by whoever won the slot's
// sequence-number protocol, which serializes access per slot.
unsafe impl Send for SpscRing {}
unsafe impl Sync for SpscRing {}

impl std::fmt::Debug for SpscRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpscRing")
            .field("len", &self.len())
            .field("bytes", &self.bytes())
            .field("capacity", &(self.mask + 1))
            .finish()
    }
}

impl SpscRing {
    /// Creates a ring with `capacity` slots (rounded up to a power of two).
    pub(crate) fn new(capacity: usize) -> Self {
        let n = capacity.max(2).next_power_of_two();
        SpscRing {
            mask: n - 1,
            slots: (0..n)
                .map(|i| Slot {
                    seq: AtomicUsize::new(i),
                    value: UnsafeCell::new(None),
                })
                .collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
        }
    }

    /// Pushes a payload; returns it back when every slot is occupied.
    pub(crate) fn push(&self, payload: Payload, len: usize) -> Result<(), Payload> {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        unsafe { *slot.value.get() = Some((payload, len)) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        self.bytes.fetch_add(len, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return Err(payload);
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Pops the oldest payload, if any.
    pub(crate) fn pop(&self) -> Option<(Payload, usize)> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos.wrapping_add(1) as isize;
            if dif == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let taken = unsafe { (*slot.value.get()).take() };
                        slot.seq
                            .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                        debug_assert!(taken.is_some(), "won slot holds no value");
                        if let Some((_, len)) = &taken {
                            self.bytes.fetch_sub(*len, Ordering::Release);
                        }
                        return taken;
                    }
                    Err(actual) => pos = actual,
                }
            } else if dif < 0 {
                return None;
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Buffered length of the oldest payload without removing it.
    ///
    /// Only meaningful for the (single) consumer — callers hold the owning
    /// queue's state mutex, which serializes all poppers, so the head slot
    /// cannot be concurrently drained while we read it.
    pub(crate) fn peek_len(&self) -> Option<usize> {
        let pos = self.head.load(Ordering::Acquire);
        let slot = &self.slots[pos & self.mask];
        if slot.seq.load(Ordering::Acquire) != pos.wrapping_add(1) {
            return None;
        }
        unsafe { (*slot.value.get()).as_ref().map(|(_, len)| *len) }
    }

    /// Number of buffered payloads (racy snapshot).
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.wrapping_sub(head)
    }

    /// True when no payload is buffered (racy snapshot).
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total buffered bytes (racy snapshot).
    pub(crate) fn bytes(&self) -> usize {
        self.bytes.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::MessageId;

    fn p(i: u64) -> Payload {
        Payload::Ref(MessageId(i))
    }

    fn id(payload: &Payload) -> u64 {
        match payload {
            Payload::Ref(MessageId(i)) => *i,
            Payload::Value(_) => unreachable!("tests use Ref payloads"),
        }
    }

    #[test]
    fn fifo_and_byte_accounting() {
        let ring = SpscRing::new(8);
        for i in 0..5 {
            ring.push(p(i), 10).unwrap();
        }
        assert_eq!(ring.len(), 5);
        assert_eq!(ring.bytes(), 50);
        assert_eq!(ring.peek_len(), Some(10));
        for i in 0..5 {
            let (payload, len) = ring.pop().unwrap();
            assert_eq!(id(&payload), i);
            assert_eq!(len, 10);
        }
        assert!(ring.is_empty());
        assert_eq!(ring.bytes(), 0);
        assert!(ring.pop().is_none());
        assert_eq!(ring.peek_len(), None);
    }

    #[test]
    fn rejects_when_full_then_accepts_after_pop() {
        let ring = SpscRing::new(4);
        for i in 0..4 {
            ring.push(p(i), 1).unwrap();
        }
        assert!(ring.push(p(99), 1).is_err());
        assert_eq!(id(&ring.pop().unwrap().0), 0);
        ring.push(p(4), 1).unwrap();
        let drained: Vec<u64> = std::iter::from_fn(|| ring.pop().map(|(pl, _)| id(&pl))).collect();
        assert_eq!(drained, vec![1, 2, 3, 4]);
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpscRing::new(4);
        for round in 0..100u64 {
            ring.push(p(round), 3).unwrap();
            let (payload, len) = ring.pop().unwrap();
            assert_eq!(id(&payload), round);
            assert_eq!(len, 3);
        }
        assert_eq!(ring.bytes(), 0);
    }

    #[test]
    fn concurrent_producer_consumer() {
        let ring = std::sync::Arc::new(SpscRing::new(64));
        let total = 10_000u64;
        let prod = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut i = 0;
                while i < total {
                    if ring.push(p(i), 1).is_ok() {
                        i += 1;
                    } else {
                        std::thread::yield_now();
                    }
                }
            })
        };
        let mut seen = 0;
        let mut expect = 0u64;
        while seen < total {
            if let Some((payload, _)) = ring.pop() {
                assert_eq!(id(&payload), expect, "FIFO per producer");
                expect += 1;
                seen += 1;
            } else {
                std::thread::yield_now();
            }
        }
        prod.join().unwrap();
        assert!(ring.is_empty());
        assert_eq!(ring.bytes(), 0);
    }
}
