//! The overload-protection plane: admission control, priority-aware
//! shedding policy, and per-instance circuit breakers.
//!
//! Fig 6-9's block-then-drop is the gateway's only native defense; under a
//! stampede it degenerates into timeout storms (every producer parks for
//! `full_wait`) and supervisor restart churn. This module adds the three
//! graceful-degradation mechanisms `ServerConfig { overload }` gates:
//!
//! * **Admission control** — token buckets at stream ingress, one per
//!   session plus one global gateway bucket. A post that finds either
//!   bucket empty is rejected *immediately* and charged to the
//!   reason-coded `dropped_admission` counter, instead of blocking the
//!   producer and timing out later as `dropped_full`.
//! * **Priority classes** — messages classify by MIME top-level type:
//!   interactive `text/*`/`application/*` control traffic above bulk
//!   `image/*`/`video/*`/`audio/*` prefetch. `MessageQueue::shed_oldest`
//!   sheds lowest class first (oldest within a class) when the
//!   `MetricsBridge` publishes `CHANNEL_CONGESTED`.
//! * **Circuit breakers** — one per supervised streamlet instance. A
//!   breaker trips open after `fault_threshold` faults inside `window`,
//!   which stops the supervisor scheduling restarts (the `when
//!   (STREAMLET_FAULT)` bypass machinery routes around the instance
//!   instead) and so stops the restart budget burning toward quarantine.
//!   After `cooldown` the breaker half-opens, the supervisor probes with
//!   one restart, and `probe_successes` quiet cooldown windows close it.
//!
//! Everything here is deliberately free of wall-clock side effects beyond
//! `Instant::now()` reads, so the state machines unit-test directly.

// Overload decisions sit on the ingress hot path; surface failures as
// values, never abort.
#![deny(clippy::unwrap_used, clippy::expect_used)]

use mobigate_mime::MimeType;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Master switches of the overload plane, carried on
/// `ServerConfig { overload }`. Everything defaults off: the unconfigured
/// gateway behaves exactly as before this plane existed.
#[derive(Clone, Debug, Default)]
pub struct OverloadConfig {
    /// Master switch. When false the admission controller is never built,
    /// shedding never subscribes, and breakers are never attached.
    pub enabled: bool,
    /// Token-bucket admission control at stream ingress.
    pub admission: AdmissionConfig,
    /// Priority-aware shedding under `CHANNEL_CONGESTED`.
    pub shed: ShedConfig,
    /// Per-streamlet-instance circuit breakers.
    pub breaker: BreakerConfig,
}

impl OverloadConfig {
    /// An enabled config with default knobs — the common opt-in.
    pub fn enabled() -> Self {
        OverloadConfig {
            enabled: true,
            ..Default::default()
        }
    }

    /// True when admission control should run.
    pub fn admission_on(&self) -> bool {
        self.enabled && self.admission.enabled
    }

    /// True when congestion-triggered shedding should run.
    pub fn shed_on(&self) -> bool {
        self.enabled && self.shed.enabled
    }

    /// True when supervised instances should carry breakers.
    pub fn breaker_on(&self) -> bool {
        self.enabled && self.breaker.enabled
    }
}

/// Token-bucket admission knobs.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// Sub-switch (meaningful only with `OverloadConfig::enabled`).
    pub enabled: bool,
    /// Steady-state tokens per second refilled into each session bucket.
    pub session_rate: f64,
    /// Burst capacity of each session bucket, in messages.
    pub session_burst: f64,
    /// Steady-state tokens per second refilled into the global bucket.
    pub global_rate: f64,
    /// Burst capacity of the global bucket, in messages.
    pub global_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            enabled: true,
            session_rate: 1_000.0,
            session_burst: 200.0,
            global_rate: 50_000.0,
            global_burst: 10_000.0,
        }
    }
}

/// Congestion-shedding knobs.
#[derive(Clone, Debug)]
pub struct ShedConfig {
    /// Sub-switch (meaningful only with `OverloadConfig::enabled`).
    pub enabled: bool,
    /// Most messages shed per `CHANNEL_CONGESTED` event per stream.
    pub shed_max: usize,
}

impl Default for ShedConfig {
    fn default() -> Self {
        ShedConfig {
            enabled: true,
            shed_max: 64,
        }
    }
}

/// Circuit-breaker knobs.
#[derive(Clone, Debug)]
pub struct BreakerConfig {
    /// Sub-switch (meaningful only with `OverloadConfig::enabled`).
    pub enabled: bool,
    /// Faults inside `window` that trip the breaker open. Keep this below
    /// the supervisor's `max_restarts` so the breaker trips *before* the
    /// restart budget exhausts into quarantine.
    pub fault_threshold: u32,
    /// Sliding window over which faults count toward the threshold.
    pub window: Duration,
    /// How long an open breaker waits before half-opening for a probe.
    pub cooldown: Duration,
    /// Quiet cooldown windows a half-open breaker must observe to close.
    pub probe_successes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            fault_threshold: 3,
            window: Duration::from_secs(10),
            cooldown: Duration::from_millis(250),
            probe_successes: 1,
        }
    }
}

/// Message priority derived from the MIME top-level type. Ordered so that
/// `Bulk < Normal < Interactive` — shedding walks ascending.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PriorityClass {
    /// Prefetch media: `image/*`, `video/*`, `audio/*`.
    Bulk,
    /// Everything else (`multipart/*`, `message/*`, unknown tops).
    Normal,
    /// Control/interactive traffic: `text/*`, `application/*`.
    Interactive,
}

impl PriorityClass {
    /// Classifies a content type by its top-level component.
    pub fn of(ty: &MimeType) -> PriorityClass {
        match ty.top.as_str() {
            "text" | "application" => PriorityClass::Interactive,
            "image" | "video" | "audio" => PriorityClass::Bulk,
            _ => PriorityClass::Normal,
        }
    }
}

/// A thread-safe token bucket: `burst` capacity, `rate` tokens/second
/// continuous refill. Empty buckets reject instead of blocking.
#[derive(Debug)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    state: Mutex<BucketState>,
}

#[derive(Debug)]
struct BucketState {
    tokens: f64,
    last: Instant,
}

impl TokenBucket {
    /// A full bucket. `rate` and `burst` are clamped to be non-negative;
    /// a zero-burst bucket rejects everything.
    pub fn new(rate: f64, burst: f64) -> Self {
        let burst = burst.max(0.0);
        TokenBucket {
            rate: rate.max(0.0),
            burst,
            state: Mutex::new(BucketState {
                tokens: burst,
                last: Instant::now(),
            }),
        }
    }

    /// Takes one token if available. Non-blocking.
    pub fn try_take(&self) -> bool {
        self.try_take_at(Instant::now())
    }

    /// [`TokenBucket::try_take`] with an injected clock (tests).
    pub fn try_take_at(&self, now: Instant) -> bool {
        let mut st = self.state.lock();
        let elapsed = now.saturating_duration_since(st.last).as_secs_f64();
        st.tokens = (st.tokens + elapsed * self.rate).min(self.burst);
        st.last = now;
        if st.tokens >= 1.0 {
            st.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Returns one token (a downstream bucket rejected after this one
    /// admitted). Never exceeds the burst capacity.
    pub fn refund(&self) {
        let mut st = self.state.lock();
        st.tokens = (st.tokens + 1.0).min(self.burst);
    }

    /// Tokens currently available (tests/introspection; racy by nature).
    pub fn available(&self) -> f64 {
        self.state.lock().tokens
    }
}

/// Running totals of admission decisions, readable without locks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Posts admitted through both buckets.
    pub admitted: u64,
    /// Posts rejected by a session bucket.
    pub rejected_session: u64,
    /// Posts rejected by the global bucket.
    pub rejected_global: u64,
}

impl AdmissionStats {
    /// Total rejections, either bucket.
    pub fn rejected(&self) -> u64 {
        self.rejected_session + self.rejected_global
    }
}

/// Gateway-wide admission control: one global token bucket plus one bucket
/// per live session, created lazily on first post and dropped on
/// [`AdmissionController::forget`] at session teardown.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    global: TokenBucket,
    sessions: Mutex<HashMap<String, Arc<TokenBucket>>>,
    admitted: AtomicU64,
    rejected_session: AtomicU64,
    rejected_global: AtomicU64,
}

impl AdmissionController {
    pub fn new(cfg: AdmissionConfig) -> Arc<Self> {
        let global = TokenBucket::new(cfg.global_rate, cfg.global_burst);
        Arc::new(AdmissionController {
            cfg,
            global,
            sessions: Mutex::new(HashMap::new()),
            admitted: AtomicU64::new(0),
            rejected_session: AtomicU64::new(0),
            rejected_global: AtomicU64::new(0),
        })
    }

    fn session_bucket(&self, session: &str) -> Arc<TokenBucket> {
        let mut map = self.sessions.lock();
        map.entry(session.to_string())
            .or_insert_with(|| {
                Arc::new(TokenBucket::new(
                    self.cfg.session_rate,
                    self.cfg.session_burst,
                ))
            })
            .clone()
    }

    /// Decides one ingress post for `session`. Charges the global bucket
    /// first and refunds it when the session bucket rejects, so one
    /// stampeding session cannot starve the global budget for others.
    pub fn admit(&self, session: &str) -> bool {
        if !self.global.try_take() {
            self.rejected_global.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let bucket = self.session_bucket(session);
        if bucket.try_take() {
            self.admitted.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.global.refund();
            self.rejected_session.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Pre-creates `session`'s bucket so its first burst sees the full
    /// configured burst capacity (called from session spawn).
    pub fn register(&self, session: &str) {
        let _ = self.session_bucket(session);
    }

    /// Drops `session`'s bucket (session teardown). Idempotent.
    pub fn forget(&self, session: &str) {
        self.sessions.lock().remove(session);
    }

    /// Tokens currently available in the global bucket (introspection).
    pub fn global_available(&self) -> f64 {
        self.global.available()
    }

    /// Live per-session buckets.
    pub fn session_count(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Decision totals so far.
    pub fn stats(&self) -> AdmissionStats {
        AdmissionStats {
            admitted: self.admitted.load(Ordering::Relaxed),
            rejected_session: self.rejected_session.load(Ordering::Relaxed),
            rejected_global: self.rejected_global.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("sessions", &self.session_count())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Observable breaker state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: faults count toward the threshold, restarts proceed.
    Closed,
    /// Tripped: no restarts are scheduled until the cooldown elapses.
    Open,
    /// Probing: one restart attempted; quiet windows close the breaker.
    HalfOpen,
}

/// What the supervisor should do with the fault that was just reported.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultVerdict {
    /// Below threshold: charge the restart budget and schedule a restart.
    Restart,
    /// This fault crossed the threshold: the breaker is now open. Publish
    /// `BREAKER_OPEN`, skip the restart, schedule a probe after cooldown.
    Tripped,
    /// The breaker was already open: swallow the fault entirely.
    AlreadyOpen,
    /// A probe faulted while half-open: back to open, schedule another
    /// probe after cooldown.
    Reopened,
}

/// Outcome of a quiet-window check while half-open.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProbeOutcome {
    /// Enough quiet windows: the breaker closed. Publish `BREAKER_CLOSE`.
    Closed,
    /// Quiet, but more windows are required: check again after cooldown.
    StillHalfOpen,
    /// The breaker is no longer half-open (a fault reopened it); the
    /// pending check is stale and should be dropped.
    NotHalfOpen,
}

#[derive(Debug)]
enum BreakerInner {
    Closed { fault_times: Vec<Instant> },
    Open { since: Instant },
    HalfOpen { quiet: u32 },
}

/// Per-streamlet-instance circuit breaker. All transitions are driven by
/// explicit calls from the supervisor (fault reports, probe starts, quiet
/// checks), so the machine is deterministic and directly testable.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            inner: Mutex::new(BreakerInner::Closed {
                fault_times: Vec::new(),
            }),
        }
    }

    /// Current state (for traces and tests).
    pub fn state(&self) -> BreakerState {
        match &*self.inner.lock() {
            BreakerInner::Closed { .. } => BreakerState::Closed,
            BreakerInner::Open { .. } => BreakerState::Open,
            BreakerInner::HalfOpen { .. } => BreakerState::HalfOpen,
        }
    }

    /// Reports one fault of the protected instance.
    pub fn on_fault(&self) -> FaultVerdict {
        self.on_fault_at(Instant::now())
    }

    /// [`CircuitBreaker::on_fault`] with an injected clock (tests).
    pub fn on_fault_at(&self, now: Instant) -> FaultVerdict {
        let mut inner = self.inner.lock();
        match &mut *inner {
            BreakerInner::Closed { fault_times } => {
                fault_times.retain(|t| now.saturating_duration_since(*t) < self.cfg.window);
                fault_times.push(now);
                if fault_times.len() as u32 >= self.cfg.fault_threshold {
                    *inner = BreakerInner::Open { since: now };
                    FaultVerdict::Tripped
                } else {
                    FaultVerdict::Restart
                }
            }
            BreakerInner::Open { .. } => FaultVerdict::AlreadyOpen,
            BreakerInner::HalfOpen { .. } => {
                *inner = BreakerInner::Open { since: now };
                FaultVerdict::Reopened
            }
        }
    }

    /// Attempts the open→half-open transition. Returns true exactly once
    /// per cooldown expiry: the caller that sees true owns the probe
    /// restart; concurrent callers see false.
    pub fn begin_probe(&self) -> bool {
        self.begin_probe_at(Instant::now())
    }

    /// [`CircuitBreaker::begin_probe`] with an injected clock (tests).
    pub fn begin_probe_at(&self, now: Instant) -> bool {
        let mut inner = self.inner.lock();
        match &*inner {
            BreakerInner::Open { since }
                if now.saturating_duration_since(*since) >= self.cfg.cooldown =>
            {
                *inner = BreakerInner::HalfOpen { quiet: 0 };
                true
            }
            _ => false,
        }
    }

    /// Records that one cooldown window elapsed while half-open with no
    /// fault, and closes the breaker when enough have.
    pub fn probe_quiet(&self) -> ProbeOutcome {
        let mut inner = self.inner.lock();
        match &mut *inner {
            BreakerInner::HalfOpen { quiet } => {
                *quiet += 1;
                if *quiet >= self.cfg.probe_successes.max(1) {
                    *inner = BreakerInner::Closed {
                        fault_times: Vec::new(),
                    };
                    ProbeOutcome::Closed
                } else {
                    ProbeOutcome::StillHalfOpen
                }
            }
            _ => ProbeOutcome::NotHalfOpen,
        }
    }

    /// The configured cooldown (the supervisor schedules probe jobs by it).
    pub fn cooldown(&self) -> Duration {
        self.cfg.cooldown
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn ty(top: &str) -> MimeType {
        MimeType::new(top, "x")
    }

    #[test]
    fn priority_classes_order_interactive_above_bulk() {
        assert_eq!(PriorityClass::of(&ty("text")), PriorityClass::Interactive);
        assert_eq!(
            PriorityClass::of(&ty("application")),
            PriorityClass::Interactive
        );
        assert_eq!(PriorityClass::of(&ty("image")), PriorityClass::Bulk);
        assert_eq!(PriorityClass::of(&ty("video")), PriorityClass::Bulk);
        assert_eq!(PriorityClass::of(&ty("audio")), PriorityClass::Bulk);
        assert_eq!(PriorityClass::of(&ty("multipart")), PriorityClass::Normal);
        assert!(PriorityClass::Bulk < PriorityClass::Normal);
        assert!(PriorityClass::Normal < PriorityClass::Interactive);
    }

    #[test]
    fn bucket_burst_then_refill() {
        let b = TokenBucket::new(10.0, 3.0);
        let t0 = Instant::now();
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(b.try_take_at(t0));
        assert!(!b.try_take_at(t0), "burst exhausted");
        // 100ms at 10/s refills one token.
        assert!(b.try_take_at(t0 + Duration::from_millis(100)));
        assert!(!b.try_take_at(t0 + Duration::from_millis(100)));
    }

    #[test]
    fn bucket_refill_caps_at_burst() {
        let b = TokenBucket::new(1_000.0, 2.0);
        let t0 = Instant::now();
        assert!(b.try_take_at(t0));
        // A long idle period must not bank more than `burst` tokens.
        let later = t0 + Duration::from_secs(60);
        assert!(b.try_take_at(later));
        assert!(b.try_take_at(later));
        assert!(!b.try_take_at(later));
    }

    #[test]
    fn bucket_refund_restores_a_token() {
        let b = TokenBucket::new(0.0, 1.0);
        let t0 = Instant::now();
        assert!(b.try_take_at(t0));
        assert!(!b.try_take_at(t0));
        b.refund();
        assert!(b.try_take_at(t0));
    }

    #[test]
    fn admission_rejects_per_session_without_starving_global() {
        let ctl = AdmissionController::new(AdmissionConfig {
            enabled: true,
            session_rate: 0.0,
            session_burst: 2.0,
            global_rate: 0.0,
            global_burst: 100.0,
        });
        // Session `a` exhausts its own bucket…
        assert!(ctl.admit("a"));
        assert!(ctl.admit("a"));
        for _ in 0..10 {
            assert!(!ctl.admit("a"));
        }
        // …but the refund keeps the global budget intact for `b`.
        assert!(ctl.admit("b"));
        assert!(ctl.admit("b"));
        let s = ctl.stats();
        assert_eq!(s.admitted, 4);
        assert_eq!(s.rejected_session, 10);
        assert_eq!(s.rejected_global, 0);
        assert!((ctl.global_available() - 96.0).abs() < 1e-6);
    }

    #[test]
    fn admission_global_bucket_caps_everyone() {
        let ctl = AdmissionController::new(AdmissionConfig {
            enabled: true,
            session_rate: 0.0,
            session_burst: 100.0,
            global_rate: 0.0,
            global_burst: 3.0,
        });
        assert!(ctl.admit("a"));
        assert!(ctl.admit("b"));
        assert!(ctl.admit("c"));
        assert!(!ctl.admit("d"));
        assert_eq!(ctl.stats().rejected_global, 1);
    }

    #[test]
    fn admission_forget_drops_bucket_state() {
        let ctl = AdmissionController::new(AdmissionConfig {
            enabled: true,
            session_rate: 0.0,
            session_burst: 1.0,
            global_rate: 0.0,
            global_burst: 100.0,
        });
        assert!(ctl.admit("a"));
        assert!(!ctl.admit("a"));
        ctl.forget("a");
        assert_eq!(ctl.session_count(), 0);
        // A reborn session starts with a fresh burst.
        assert!(ctl.admit("a"));
        ctl.forget("zzz"); // idempotent / unknown ok
    }

    #[test]
    fn breaker_trips_exactly_at_threshold() {
        let br = CircuitBreaker::new(BreakerConfig {
            fault_threshold: 3,
            ..Default::default()
        });
        let t0 = Instant::now();
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Restart);
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Restart);
        assert_eq!(br.state(), BreakerState::Closed);
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Tripped);
        assert_eq!(br.state(), BreakerState::Open);
        assert_eq!(br.on_fault_at(t0), FaultVerdict::AlreadyOpen);
    }

    #[test]
    fn breaker_window_expires_old_faults() {
        let br = CircuitBreaker::new(BreakerConfig {
            fault_threshold: 2,
            window: Duration::from_secs(1),
            ..Default::default()
        });
        let t0 = Instant::now();
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Restart);
        // The first fault ages out of the window, so this is again #1.
        assert_eq!(
            br.on_fault_at(t0 + Duration::from_secs(2)),
            FaultVerdict::Restart
        );
        assert_eq!(br.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_probe_success_closes() {
        let br = CircuitBreaker::new(BreakerConfig {
            fault_threshold: 1,
            cooldown: Duration::from_millis(100),
            probe_successes: 2,
            ..Default::default()
        });
        let t0 = Instant::now();
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Tripped);
        // Before cooldown the probe is refused.
        assert!(!br.begin_probe_at(t0 + Duration::from_millis(50)));
        assert!(br.begin_probe_at(t0 + Duration::from_millis(100)));
        assert_eq!(br.state(), BreakerState::HalfOpen);
        // A concurrent prober loses the race.
        assert!(!br.begin_probe_at(t0 + Duration::from_millis(100)));
        assert_eq!(br.probe_quiet(), ProbeOutcome::StillHalfOpen);
        assert_eq!(br.probe_quiet(), ProbeOutcome::Closed);
        assert_eq!(br.state(), BreakerState::Closed);
    }

    #[test]
    fn breaker_half_open_fault_reopens() {
        let br = CircuitBreaker::new(BreakerConfig {
            fault_threshold: 1,
            cooldown: Duration::from_millis(10),
            ..Default::default()
        });
        let t0 = Instant::now();
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Tripped);
        assert!(br.begin_probe_at(t0 + Duration::from_millis(10)));
        assert_eq!(
            br.on_fault_at(t0 + Duration::from_millis(11)),
            FaultVerdict::Reopened
        );
        assert_eq!(br.state(), BreakerState::Open);
        // The stale quiet check from the reopened probe is dropped.
        assert_eq!(br.probe_quiet(), ProbeOutcome::NotHalfOpen);
        // Concurrent faults while re-opened are swallowed.
        assert_eq!(
            br.on_fault_at(t0 + Duration::from_millis(12)),
            FaultVerdict::AlreadyOpen
        );
        // The reopen restarted the cooldown clock.
        assert!(!br.begin_probe_at(t0 + Duration::from_millis(15)));
        assert!(br.begin_probe_at(t0 + Duration::from_millis(21)));
    }

    #[test]
    fn breaker_close_resets_fault_window() {
        let br = CircuitBreaker::new(BreakerConfig {
            fault_threshold: 2,
            cooldown: Duration::from_millis(10),
            probe_successes: 1,
            ..Default::default()
        });
        let t0 = Instant::now();
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Restart);
        assert_eq!(br.on_fault_at(t0), FaultVerdict::Tripped);
        assert!(br.begin_probe_at(t0 + Duration::from_millis(10)));
        assert_eq!(br.probe_quiet(), ProbeOutcome::Closed);
        // A fresh fault after close is fault #1, not #3.
        assert_eq!(
            br.on_fault_at(t0 + Duration::from_millis(20)),
            FaultVerdict::Restart
        );
    }
}
