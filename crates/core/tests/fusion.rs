//! Chain fusion / fission integration tests:
//!
//! * a fused deployment collapses a maximal fusable run into one execution
//!   unit while producing byte-identical output to the discrete topology;
//! * a property test feeding the same random message sequence through a
//!   fused and an unfused deployment of the same MCL script and requiring
//!   observational equivalence (same bodies, same order);
//! * fission under load — a reconfiguration addressed at fused members
//!   splits the unit mid-burst with zero message loss;
//! * member-granular quarantine — a poisoned member inside a fused unit is
//!   quarantined *alone*; surviving contiguous segments re-fuse.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use mobigate_core::stream::{RunningStream, StreamDeps};
use mobigate_core::{
    default_executor, CoreError, Emitter, Executor, LifecycleState, MessagePool, MobiGate,
    PayloadMode, Reactor, RouteOpts, ServerConfig, StreamletCtx, StreamletDirectory,
    StreamletLogic, StreamletPool, WorkerPool,
};
use mobigate_mcl::compile::compile;
use mobigate_mime::{MimeMessage, SessionId};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Appends a marker character to text bodies and opts into fusion.
struct FTag(char);
impl StreamletLogic for FTag {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        let mut s = String::from_utf8_lossy(&msg.body).into_owned();
        s.push(self.0);
        let mut out = msg.clone();
        out.set_body(s.into_bytes());
        ctx.emit("po", out);
        Ok(())
    }
    fn fusable(&self) -> bool {
        true
    }
}

/// Fusable, but panics on any body starting with `boom`.
struct Boom;
impl StreamletLogic for Boom {
    fn process(&mut self, msg: MimeMessage, ctx: &mut StreamletCtx) -> Result<(), CoreError> {
        if msg.body.starts_with(b"boom") {
            panic!("boom poison");
        }
        let mut s = String::from_utf8_lossy(&msg.body).into_owned();
        s.push('b');
        let mut out = msg.clone();
        out.set_body(s.into_bytes());
        ctx.emit("po", out);
        Ok(())
    }
    fn fusable(&self) -> bool {
        true
    }
}

fn deps_on(fusion: bool, executor: Arc<dyn Executor>) -> StreamDeps {
    let directory = Arc::new(StreamletDirectory::new());
    directory.register("fuse/tag_a", "", || Box::new(FTag('a')));
    directory.register("fuse/tag_b", "", || Box::new(FTag('b')));
    directory.register("fuse/tag_c", "", || Box::new(FTag('c')));
    StreamDeps {
        msg_pool: Arc::new(MessagePool::new()),
        directory,
        streamlet_pool: Arc::new(StreamletPool::new(16)),
        mode: PayloadMode::Reference,
        route_opts: RouteOpts::default(),
        executor,
        supervisor: None,
        batching: Default::default(),
        fusion,
        telemetry: None,
        overload: Default::default(),
        admission: None,
        buf_pool: None,
    }
}

/// Three fusable streamlets in a chain, no `when` rules: the whole run is
/// eligible, so a fused deployment collapses f1→f2→f3 into one unit.
const CHAIN: &str = r#"
    streamlet ftag_a {
        port { in pi : text/plain; out po : text/plain; }
        attribute { type = STATELESS; library = "fuse/tag_a"; }
    }
    streamlet ftag_b {
        port { in pi : text/plain; out po : text/plain; }
        attribute { type = STATELESS; library = "fuse/tag_b"; }
    }
    streamlet ftag_c {
        port { in pi : text/plain; out po : text/plain; }
        attribute { type = STATELESS; library = "fuse/tag_c"; }
    }
    main stream app {
        streamlet f1 = new-streamlet (ftag_a);
        streamlet f2 = new-streamlet (ftag_b);
        streamlet f3 = new-streamlet (ftag_c);
        connect (f1.po, f2.pi);
        connect (f2.po, f3.pi);
    }
"#;

fn deploy_chain(fusion: bool) -> (Arc<RunningStream>, StreamDeps) {
    deploy_chain_on(fusion, default_executor())
}

fn deploy_chain_on(fusion: bool, executor: Arc<dyn Executor>) -> (Arc<RunningStream>, StreamDeps) {
    let program = compile(CHAIN).unwrap();
    let d = deps_on(fusion, executor);
    let stream = RunningStream::deploy(
        program.main().unwrap(),
        &program.streamlet_defs,
        d.clone(),
        SessionId::new(if fusion { "fused" } else { "unfused" }),
    )
    .unwrap();
    (stream, d)
}

fn roundtrip(stream: &RunningStream, text: &str) -> String {
    stream.post_input(MimeMessage::text(text)).unwrap();
    let out = stream.take_output(Duration::from_secs(5)).expect("output");
    String::from_utf8_lossy(&out.body).into_owned()
}

#[test]
fn fused_deploy_collapses_chain_and_processes() {
    let (stream, _) = deploy_chain(true);
    assert_eq!(
        stream.instance_names(),
        vec!["fused:f1..f3".to_string()],
        "the whole run collapses into one execution unit"
    );
    assert_eq!(roundtrip(&stream, "x"), "xabc");
    let stats = stream.stats();
    assert_eq!(stats.injected, 1);
    assert_eq!(stats.delivered, 1);
    stream.shutdown();
}

#[test]
fn unfused_control_keeps_discrete_instances() {
    let (stream, _) = deploy_chain(false);
    assert_eq!(stream.instance_names(), vec!["f1", "f2", "f3"]);
    assert_eq!(roundtrip(&stream, "x"), "xabc");
    stream.shutdown();
}

#[test]
fn fused_members_return_to_pool_on_shutdown() {
    let (stream, d) = deploy_chain(true);
    assert_eq!(roundtrip(&stream, "x"), "xabc");
    stream.shutdown();
    // The FusedLogic wrapper is stateful and never pooled, but each member
    // logic is an ordinary pooling-eligible object.
    for key in ["fuse/tag_a", "fuse/tag_b", "fuse/tag_c"] {
        assert_eq!(d.streamlet_pool.idle_count(key), 1, "{key}");
    }
}

#[test]
fn insert_addressed_at_members_triggers_fission() {
    let (stream, _) = deploy_chain(true);
    assert_eq!(roundtrip(&stream, "x"), "xabc");
    // `mid` splices between f1 and f2 — both currently run fused, so the
    // pre-pass must split the unit back into discrete instances first.
    stream
        .insert_streamlet(("f1", "po"), ("f2", "pi"), "mid", "ftag_c")
        .unwrap();
    let names = stream.instance_names();
    for want in ["f1", "f2", "f3", "mid"] {
        assert!(
            names.contains(&want.to_string()),
            "{want} missing: {names:?}"
        );
    }
    assert!(
        !names.iter().any(|n| n.starts_with("fused:")),
        "fission must fully re-materialize the run: {names:?}"
    );
    assert_eq!(roundtrip(&stream, "y"), "yacbc");
    stream.shutdown();
}

#[test]
fn fission_under_load_loses_nothing() {
    let (stream, _) = deploy_chain(true);
    let n = 200;
    let stream2 = stream.clone();
    let producer = std::thread::spawn(move || {
        for i in 0..n {
            stream2
                .post_input(MimeMessage::text(format!("m{i}")))
                .unwrap();
            if i == n / 2 {
                stream2
                    .insert_streamlet(("f1", "po"), ("f2", "pi"), "mid", "ftag_c")
                    .unwrap();
            }
        }
    });
    let mut got = 0;
    while got < n {
        match stream.take_output(Duration::from_secs(5)) {
            Some(_) => got += 1,
            None => break,
        }
    }
    producer.join().unwrap();
    assert_eq!(got, n, "all {n} messages must survive the fission");
    assert!(stream.instance_names().contains(&"mid".to_string()));
    stream.shutdown();
}

#[test]
fn member_panic_quarantines_only_that_member() {
    let mut cfg = ServerConfig {
        fusion: true,
        ..Default::default()
    };
    // No restart budget: the first fault quarantines immediately.
    cfg.supervision.policy.max_restarts = 0;
    let gate = MobiGate::with_config(
        cfg,
        Arc::new(StreamletDirectory::new()),
        Arc::new(StreamletPool::new(16)),
    );
    gate.directory()
        .register("fuse/tag_a", "", || Box::new(FTag('a')));
    gate.directory()
        .register("fuse/boom", "", || Box::new(Boom));
    gate.directory()
        .register("fuse/tag_c", "", || Box::new(FTag('c')));
    gate.directory()
        .register("fuse/tag_d", "", || Box::new(FTag('d')));
    let stream = gate
        .deploy_mcl(
            r#"
            streamlet ftag_a {
                port { in pi : text/plain; out po : text/plain; }
                attribute { type = STATELESS; library = "fuse/tag_a"; }
            }
            streamlet fboom {
                port { in pi : text/plain; out po : text/plain; }
                attribute { type = STATELESS; library = "fuse/boom"; }
            }
            streamlet ftag_c {
                port { in pi : text/plain; out po : text/plain; }
                attribute { type = STATELESS; library = "fuse/tag_c"; }
            }
            streamlet ftag_d {
                port { in pi : text/plain; out po : text/plain; }
                attribute { type = STATELESS; library = "fuse/tag_d"; }
            }
            main stream app {
                streamlet f1 = new-streamlet (ftag_a);
                streamlet f2 = new-streamlet (fboom);
                streamlet f3 = new-streamlet (ftag_c);
                streamlet f4 = new-streamlet (ftag_d);
                connect (f1.po, f2.pi);
                connect (f2.po, f3.pi);
                connect (f3.po, f4.pi);
            }
        "#,
        )
        .unwrap();
    assert_eq!(stream.instance_names(), vec!["fused:f1..f4".to_string()]);
    assert_eq!(roundtrip(&stream, "ok"), "okabcd");

    // Poison member f2. The supervisor quarantines the unit, raises
    // STREAMLET_FAULT, and fault-driven fission splits the run around the
    // poisoned member.
    stream.post_input(MimeMessage::text("boom")).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if stream.instance_names().iter().any(|n| n == "f2") {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    let names = stream.instance_names();
    assert!(names.contains(&"f1".to_string()), "{names:?}");
    assert!(names.contains(&"f2".to_string()), "{names:?}");
    assert!(
        names.contains(&"fused:f3..f4".to_string()),
        "the surviving downstream segment must re-fuse: {names:?}"
    );
    assert!(!names.contains(&"fused:f1..f4".to_string()), "{names:?}");
    // Only the poisoned member is quarantined; its neighbours keep running.
    let state = |n: &str| stream.instance(n).unwrap().state();
    assert_eq!(state("f2"), LifecycleState::Quarantined);
    assert_eq!(state("f1"), LifecycleState::Running);
    assert_eq!(state("fused:f3..f4"), LifecycleState::Running);
    stream.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, .. ProptestConfig::default() })]

    /// Fusion is a pure scheduling optimization: under a non-saturating
    /// load (no interior queue ever overflows) a fused deployment is
    /// observationally equivalent to the discrete one — identical bodies
    /// in identical order — under every executor back end.
    #[test]
    fn fused_stream_matches_unfused_stream(tags in prop::collection::vec(any::<u8>(), 1..24)) {
        let executors: [Arc<dyn Executor>; 3] = [
            default_executor(),
            WorkerPool::new(2),
            Reactor::new(2),
        ];
        for executor in executors {
            let (fused, _) = deploy_chain_on(true, executor.clone());
            let (unfused, _) = deploy_chain_on(false, executor.clone());
            for (i, t) in tags.iter().enumerate() {
                let text = format!("m{i}-{t}");
                fused.post_input(MimeMessage::text(text.clone())).unwrap();
                unfused.post_input(MimeMessage::text(text)).unwrap();
            }
            let drain = |s: &RunningStream| -> Vec<String> {
                (0..tags.len())
                    .map(|_| {
                        let out = s.take_output(Duration::from_secs(5)).expect("output");
                        String::from_utf8_lossy(&out.body).into_owned()
                    })
                    .collect()
            };
            let out_fused = drain(&fused);
            let out_unfused = drain(&unfused);
            prop_assert_eq!(out_fused, out_unfused, "executor {}", executor.name());
            fused.shutdown();
            unfused.shutdown();
            if executor.name() != "thread-per-streamlet" {
                executor.shutdown();
            }
        }
    }
}
