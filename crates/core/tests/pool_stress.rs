//! Concurrency and equivalence tests for the sharded [`MessagePool`].
//!
//! * an 8 producer × 8 consumer stress run, with a concurrent auditor
//!   asserting the lifetime invariant `resident + evicted == inserted`
//!   from the lock-free [`MessagePool::stats`] while the race is live;
//! * a property test driving an identical random op sequence through a
//!   single-shard pool and an 8-shard pool and requiring observational
//!   equivalence (every return value and the final stats match).

use bytes::Bytes;
use mobigate_core::pool::{MessageId, MessagePool};
use mobigate_mime::{MimeMessage, MimeType};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

const PRODUCERS: usize = 8;
const CONSUMERS: usize = 8;
const OPS_PER_PRODUCER: usize = 2_000;

#[test]
fn stress_8_producers_8_consumers_accounting_stays_consistent() {
    let pool = Arc::new(MessagePool::with_shards(8));
    let (tx, rx) = mpsc::channel::<MessageId>();
    let rx = Arc::new(Mutex::new(rx));
    let done = Arc::new(AtomicBool::new(false));

    // Auditor: sample the lock-free stats mid-race; the invariant must hold
    // at every instant, not just at quiescence.
    let audit_pool = pool.clone();
    let audit_done = done.clone();
    let auditor = thread::spawn(move || {
        let mut samples = 0u64;
        while !audit_done.load(Ordering::Acquire) {
            let s = audit_pool.stats();
            assert_eq!(
                s.resident as u64 + s.evicted,
                s.inserted,
                "mid-race stats violated resident + evicted == inserted: {s:?}"
            );
            samples += 1;
        }
        assert!(samples > 0);
    });

    let producers: Vec<_> = (0..PRODUCERS)
        .map(|p| {
            let pool = pool.clone();
            let tx = tx.clone();
            thread::spawn(move || {
                for i in 0..OPS_PER_PRODUCER {
                    let msg = MimeMessage::new(
                        &MimeType::new("text", "plain"),
                        Bytes::from(format!("p{p}-m{i}")),
                    );
                    // Two references: the consumer takes one and drops one.
                    let id = pool.insert(msg, 2);
                    tx.send(id).expect("consumer alive");
                }
            })
        })
        .collect();
    drop(tx);

    let consumers: Vec<_> = (0..CONSUMERS)
        .map(|_| {
            let pool = pool.clone();
            let rx = rx.clone();
            thread::spawn(move || {
                let mut taken = 0usize;
                loop {
                    let id = match rx.lock().expect("not poisoned").recv() {
                        Ok(id) => id,
                        Err(_) => return taken,
                    };
                    assert!(pool.peek_len(id).is_some(), "id live until both refs go");
                    assert!(pool.take_ref(id).is_some(), "first ref yields the message");
                    pool.drop_ref(id); // second ref evicts
                    taken += 1;
                }
            })
        })
        .collect();

    for p in producers {
        p.join().expect("producer ok");
    }
    let total_taken: usize = consumers
        .into_iter()
        .map(|c| c.join().expect("consumer ok"))
        .sum();
    done.store(true, Ordering::Release);
    auditor.join().expect("auditor ok");

    assert_eq!(total_taken, PRODUCERS * OPS_PER_PRODUCER);
    let s = pool.stats();
    assert_eq!(s.inserted, (PRODUCERS * OPS_PER_PRODUCER) as u64);
    assert_eq!(s.evicted, s.inserted, "every message evicted");
    assert_eq!(s.resident, 0);
    assert_eq!(s.resident_bytes, 0);
}

/// One decoded step of the random op program.
#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { body_len: usize, refs: u32 },
    AddRefs { idx: usize, n: u32 },
    Peek { idx: usize },
    PeekLen { idx: usize },
    TakeRef { idx: usize },
    DropRef { idx: usize },
}

/// Packs a raw `u32` into an op: low bits select the kind, the rest select
/// the target index / parameters, so `vec(any::<u32>(), ..)` is a program.
fn decode(raw: u32) -> Op {
    let idx = (raw >> 8) as usize;
    match raw % 6 {
        0 => Op::Insert {
            body_len: (raw >> 8) as usize % 512,
            refs: (raw >> 4) % 4,
        },
        1 => Op::AddRefs {
            idx,
            n: (raw >> 4) % 3 + 1,
        },
        2 => Op::Peek { idx },
        3 => Op::PeekLen { idx },
        4 => Op::TakeRef { idx },
        _ => Op::DropRef { idx },
    }
}

/// Applies one op to a pool, returning an observation string that must be
/// identical across equivalent pools.
fn apply(pool: &MessagePool, ids: &[MessageId], op: Op) -> (String, Option<MessageId>) {
    let pick = |idx: usize| -> Option<MessageId> {
        if ids.is_empty() {
            None
        } else {
            Some(ids[idx % ids.len()])
        }
    };
    match op {
        Op::Insert { body_len, refs } => {
            let msg = MimeMessage::new(
                &MimeType::new("application", "octet-stream"),
                vec![0xA5u8; body_len],
            );
            let id = pool.insert(msg, refs);
            (format!("insert -> {}", id.0), Some(id))
        }
        Op::AddRefs { idx, n } => match pick(idx) {
            Some(id) => (
                format!("add_refs({}) -> {}", id.0, pool.add_refs(id, n)),
                None,
            ),
            None => ("add_refs(none)".into(), None),
        },
        Op::Peek { idx } => match pick(idx) {
            Some(id) => (
                format!(
                    "peek({}) -> {:?}",
                    id.0,
                    pool.peek(id).map(|m| m.body.len())
                ),
                None,
            ),
            None => ("peek(none)".into(), None),
        },
        Op::PeekLen { idx } => match pick(idx) {
            Some(id) => (
                format!("peek_len({}) -> {:?}", id.0, pool.peek_len(id)),
                None,
            ),
            None => ("peek_len(none)".into(), None),
        },
        Op::TakeRef { idx } => match pick(idx) {
            Some(id) => (
                format!(
                    "take_ref({}) -> {:?}",
                    id.0,
                    pool.take_ref(id).map(|m| m.body.len())
                ),
                None,
            ),
            None => ("take_ref(none)".into(), None),
        },
        Op::DropRef { idx } => match pick(idx) {
            Some(id) => {
                pool.drop_ref(id);
                (format!("drop_ref({})", id.0), None)
            }
            None => ("drop_ref(none)".into(), None),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, .. ProptestConfig::default() })]

    /// A single-shard pool (the paper's single-lock design) and an 8-shard
    /// pool are observationally equivalent under any op sequence.
    #[test]
    fn sharded_pool_matches_single_shard(raw_ops in prop::collection::vec(any::<u32>(), 0..200)) {
        let single = MessagePool::with_shards(1);
        let sharded = MessagePool::with_shards(8);
        prop_assert_eq!(single.shard_count(), 1);
        prop_assert_eq!(sharded.shard_count(), 8);

        let mut ids_single = Vec::new();
        let mut ids_sharded = Vec::new();
        for (&raw, step) in raw_ops.iter().zip(0..) {
            let op = decode(raw);
            let (obs_s, new_s) = apply(&single, &ids_single, op);
            let (obs_n, new_n) = apply(&sharded, &ids_sharded, op);
            prop_assert_eq!(&obs_s, &obs_n, "step {} diverged on {:?}", step, op);
            if let Some(id) = new_s {
                ids_single.push(id);
            }
            if let Some(id) = new_n {
                ids_sharded.push(id);
            }
            let (ss, sn) = (single.stats(), sharded.stats());
            prop_assert_eq!(ss, sn, "stats diverged at step {} on {:?}", step, op);
            prop_assert_eq!(ss.resident as u64 + ss.evicted, ss.inserted);
        }
    }
}
